"""Figure 7 / Section 3.2 — the COVID-19 case-study walkthrough (V1, V2, V3).

The analyst's session: V1 is generated from the overview + detail queries,
V2 adds the per-state breakdown, V3 adds the region-focused query with its
correlated subquery (plus the Northeast variant).  The bench replays the whole
notebook workflow through the PI2 extension, prints the per-version component
summary, and checks the behaviours the walkthrough calls out: linked date
brushing, a structure-changing toggle, and the South/Northeast button pair.
"""

from __future__ import annotations

from conftest import print_table

from repro.interface import InteractionType, LARGE_SCREEN
from repro.notebook import NotebookSession, Pi2Extension
from repro.pipeline import PipelineConfig


def run_walkthrough(covid_catalog, covid_v3_log):
    session = NotebookSession(catalog=covid_catalog)
    session.add_cells(covid_v3_log)
    extension = Pi2Extension(
        session=session,
        config=PipelineConfig(
            method="mcts", mcts_iterations=120, seed=1, screen=LARGE_SCREEN, name="covid"
        ),
    )
    ids = [cell.cell_id for cell in session.cells]
    v1 = extension.generate_interface(cell_ids=ids[:3])   # Step 1: overview + detail ranges
    v2 = extension.generate_interface(cell_ids=ids[:4])   # Step 2: + per-state breakdown
    v3 = extension.generate_interface(cell_ids=ids)       # Step 3: + region focus (South/Northeast)
    return extension, (v1, v2, v3)


def test_figure7_covid_walkthrough(benchmark, covid_catalog, covid_v3_log):
    extension, versions = benchmark.pedantic(
        lambda: run_walkthrough(covid_catalog, covid_v3_log), rounds=1, iterations=1
    )
    v1, v2, v3 = versions

    rows = []
    for version in versions:
        interface = version.result.interface
        rows.append(
            [
                version.label,
                len(version.query_snapshot),
                interface.visualization_count,
                interface.widget_count,
                interface.interaction_count,
                round(version.result.total_cost, 2),
            ]
        )
    print_table(
        "Figure 7: generated interface versions of the COVID case study",
        ["Version", "Queries", "Charts", "Widgets", "Vis. interactions", "Cost"],
        rows,
    )
    component_rows = []
    for vis in v3.result.interface.visualizations:
        component_rows.append(["chart", vis.describe()])
    for widget in v3.result.interface.widgets:
        component_rows.append(["widget", widget.describe()])
    for interaction in v3.result.interface.interactions:
        component_rows.append(["interaction", interaction.describe()])
    print_table("Figure 7: V3 components", ["kind", "component"], component_rows)

    # V1 (Step 1): overview + detail linked by a date interaction (brush) or,
    # at minimum, an interactive date-range control.
    v1_interface = v1.result.interface
    assert v1_interface.visualization_count >= 1
    assert v1_interface.interaction_count + v1_interface.widget_count >= 1

    # V2 (Step 2): the per-state breakdown appears (a chart encodes state).
    v2_interface = v2.result.interface
    assert any("state" in vis.encoded_fields() for vis in v2_interface.visualizations)

    # V3 (Step 3): region button pair, structure-changing widget (the subquery
    # toggle), and the date interaction survives from earlier versions.
    v3_interface = v3.result.interface
    region_widgets = [
        w for w in v3_interface.widgets if set(w.options or []) == {"South", "Northeast"}
    ]
    assert region_widgets, "V3 must offer the South/Northeast switch"
    assert v3_interface.has_structural_widgets()
    assert v3_interface.interaction_count >= 1
    assert any(
        i.interaction_type in (InteractionType.BRUSH_X, InteractionType.BRUSH_2D)
        for i in v3_interface.interactions
    )

    # Versioning: three tabs, each with its archived query log snapshot.
    assert [v.label for v in extension.history.versions] == ["V1", "V2", "V3"]
    assert len(v3.query_snapshot) == len(covid_v3_log)
    # Every version can still express the queries it was generated from.
    for version in versions:
        assert version.result.forest.covers_all()
