"""CI perf-regression gate: compare a benchmark JSON against its baseline.

Usage::

    python benchmarks/check_perf_regression.py BASELINE CANDIDATE [--label NAME]

Reads two benchmark JSON files (either the engine shape written by
``bench_perf_executor.py`` — ``{"metrics": {...}, "calibration_ops_per_sec"}``
— or the search shape written by ``bench_perf_search.py`` —
``{"measurements": [...], "calibration_ops_per_sec"}``) and fails (exit 1)
when any **gated metric** regressed by more than the tolerance.

Gated metrics come in two polarities:

* **higher-is-better** — keys ending in ``_per_sec`` (throughput,
  machine-normalized by *dividing* by the calibration score when both files
  carry one), ``_speedup`` (ratios, compared raw) and ``_hit_rate``
  (cache-effectiveness fractions in [0, 1], compared raw — hit rates are a
  property of the workload, not the machine);
* **lower-is-better** — keys ending in ``_p95_ms`` (latency SLOs,
  machine-normalized by *multiplying* by the calibration score: latency
  scales inversely with machine speed, so ``ms x ops/sec`` is the
  machine-independent quantity).

Everything else — memory footprints, row counts, p50s — is reported but
never gated.  A gated-suffix key present only in the candidate is reported
as **new, ungated** (refresh the baseline to start gating it) instead of
being silently ignored; a null value means "no measurement" and is skipped.

Environment overrides:

* ``PERF_GATE_SKIP=1`` — skip the gate entirely (exit 0).  Use this to land a
  change with a **known and accepted** perf regression; the override is
  visible in the CI invocation, and the follow-up commit should refresh the
  baselines under ``benchmarks/baselines/``.
* ``PERF_GATE_TOLERANCE`` — maximum allowed fractional drop (default 0.25,
  i.e. a gated metric may lose up to 25% before the gate trips).
* ``PERF_GATE_LATENCY_TOLERANCE`` — separate tolerance for the
  lower-is-better latency metrics (default 1.0, i.e. a normalized p95 may
  double).  Percentiles of short benchmark runs are far noisier than mean
  throughput, and the calibration normalization *multiplies* latencies, so
  machine-speed noise compounds; the latency gate exists to catch the
  serving layer catastrophically serializing (several-fold regressions),
  not 30% jitter.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any

DEFAULT_TOLERANCE = 0.25
DEFAULT_LATENCY_TOLERANCE = 1.0

#: Suffixes of gated higher-is-better metric names.
GATED_HIGHER_SUFFIXES = ("_per_sec", "_speedup", "_hit_rate")

#: Suffixes of gated lower-is-better metric names (latency SLOs).
GATED_LOWER_SUFFIXES = ("_p95_ms",)

GATED_SUFFIXES = GATED_HIGHER_SUFFIXES + GATED_LOWER_SUFFIXES

#: Throughput metrics (``_per_sec``) are divided by the file's calibration
#: score before comparison; latency metrics (``_p95_ms``) are multiplied by
#: it; ratio metrics (``_speedup``) are compared raw.
NORMALIZED_SUFFIX = "_per_sec"


def extract_metrics(payload: dict[str, Any]) -> dict[str, float]:
    """Flatten a benchmark JSON payload into a name -> value metric map."""
    metrics: dict[str, float] = {}
    for name, value in payload.get("metrics", {}).items():
        if isinstance(value, (int, float)):
            metrics[name] = float(value)
    for measurement in payload.get("measurements", []):
        strategy = measurement.get("strategy", "run")
        queries = measurement.get("queries", "")
        prefix = f"search_{strategy}_{queries}"
        for name, value in measurement.items():
            if name.endswith(GATED_SUFFIXES) and isinstance(value, (int, float)):
                metrics[f"{prefix}_{name}"] = float(value)
    return metrics


def compare(
    baseline: dict[str, Any],
    candidate: dict[str, Any],
    tolerance: float,
    label: str,
    latency_tolerance: float = DEFAULT_LATENCY_TOLERANCE,
) -> list[str]:
    """Return a list of failure descriptions (empty when the gate passes)."""
    base_metrics = extract_metrics(baseline)
    cand_metrics = extract_metrics(candidate)
    base_cal = float(baseline.get("calibration_ops_per_sec") or 0.0)
    cand_cal = float(candidate.get("calibration_ops_per_sec") or 0.0)
    normalize = base_cal > 0.0 and cand_cal > 0.0

    failures: list[str] = []
    rows: list[tuple[str, float, float, float, str]] = []
    for name in sorted(base_metrics):
        if not name.endswith(GATED_SUFFIXES):
            continue
        if name not in cand_metrics:
            failures.append(f"{label}: gated metric {name!r} missing from candidate")
            continue
        base_value = base_metrics[name]
        cand_value = cand_metrics[name]
        lower_is_better = name.endswith(GATED_LOWER_SUFFIXES)
        if normalize and name.endswith(NORMALIZED_SUFFIX):
            base_score = base_value / base_cal
            cand_score = cand_value / cand_cal
        elif normalize and lower_is_better:
            base_score = base_value * base_cal
            cand_score = cand_value * cand_cal
        else:
            base_score = base_value
            cand_score = cand_value
        if base_score <= 0.0:
            continue
        change = cand_score / base_score - 1.0
        status = "ok"
        limit = latency_tolerance if lower_is_better else tolerance
        regressed = change > limit if lower_is_better else change < -limit
        if regressed:
            status = "FAIL"
            failures.append(
                f"{label}: {name} regressed {abs(change) * 100:.1f}% "
                f"(baseline {base_value:,.1f}, candidate {cand_value:,.1f}, "
                f"tolerance {limit * 100:.0f}%)"
            )
        rows.append((name, base_value, cand_value, change, status))

    new_keys = [
        name
        for name in sorted(cand_metrics)
        if name.endswith(GATED_SUFFIXES) and name not in base_metrics
    ]

    print(
        f"== perf gate: {label} (tolerance {tolerance * 100:.0f}%, "
        f"latency {latency_tolerance * 100:.0f}%) =="
    )
    if normalize:
        print(f"   machine-normalized (calibration {base_cal:,.0f} -> {cand_cal:,.0f} ops/sec)")
    for name, base_value, cand_value, change, status in rows:
        print(
            f"   {status:>4}  {name:<45} {base_value:>15,.1f} -> {cand_value:>15,.1f} "
            f"({change * +100:+.1f}%)"
        )
    if not rows:
        print("   (no gated metrics in baseline)")
    for name in new_keys:
        print(
            f"    new  {name:<45} {cand_metrics[name]:>15,.1f}  "
            f"(candidate-only: new, ungated — refresh the baseline to gate it)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("candidate", type=Path)
    parser.add_argument("--label", default=None, help="name used in the report")
    parser.add_argument("--tolerance", type=float, default=None)
    parser.add_argument("--latency-tolerance", type=float, default=None)
    args = parser.parse_args(argv)

    if os.environ.get("PERF_GATE_SKIP") == "1":
        print("PERF_GATE_SKIP=1 set; skipping the perf-regression gate.")
        return 0

    tolerance = args.tolerance
    if tolerance is None:
        tolerance = float(os.environ.get("PERF_GATE_TOLERANCE", DEFAULT_TOLERANCE))
    latency_tolerance = args.latency_tolerance
    if latency_tolerance is None:
        latency_tolerance = float(
            os.environ.get("PERF_GATE_LATENCY_TOLERANCE", DEFAULT_LATENCY_TOLERANCE)
        )
    label = args.label or args.candidate.name

    if not args.baseline.exists():
        print(f"Baseline {args.baseline} does not exist; nothing to gate against.")
        return 0
    if not args.candidate.exists():
        print(f"Candidate {args.candidate} does not exist — did the benchmark run?")
        return 1

    baseline = json.loads(args.baseline.read_text())
    candidate = json.loads(args.candidate.read_text())
    failures = compare(baseline, candidate, tolerance, label, latency_tolerance)
    if failures:
        print("\nPerf-regression gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        print(
            "\nIf this regression is understood and accepted, re-run with "
            "PERF_GATE_SKIP=1 and refresh benchmarks/baselines/ in a follow-up."
        )
        return 1
    print("\nPerf-regression gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
