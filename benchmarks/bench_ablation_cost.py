"""Ablation A2 — cost-model components switched off one at a time.

The cost model has four terms (visualization, interaction, layout,
expressiveness).  This ablation re-runs the COVID generation with each term's
weight zeroed and reports how the winning interface changes — showing what
each term contributes: dropping the interaction term stops penalizing widget
sprawl, dropping the visualization term stops penalizing redundant charts, and
dropping expressiveness allows interfaces that can no longer express the log.
"""

from __future__ import annotations

from conftest import print_table

from repro.cost import CostModel, CostWeights, coverage_ratio
from repro.interface import LARGE_SCREEN
from repro.pipeline import PipelineConfig, generate_interface

VARIANTS: dict[str, CostWeights] = {
    "full cost model": CostWeights(),
    "no visualization term": CostWeights(visualization=0.0),
    "no interaction term": CostWeights(interaction=0.0),
    "no layout term": CostWeights(layout=0.0),
    "no expressiveness term": CostWeights(expressiveness=0.0),
}


def run_variants(covid_catalog, covid_log):
    results = {}
    for name, weights in VARIANTS.items():
        result = generate_interface(
            covid_log,
            covid_catalog,
            PipelineConfig(
                method="mcts",
                mcts_iterations=60,
                seed=1,
                screen=LARGE_SCREEN,
                cost_weights=weights,
                name=name,
            ),
        )
        results[name] = result
    return results


def test_ablation_cost_components(benchmark, covid_catalog, covid_log):
    results = benchmark.pedantic(
        lambda: run_variants(covid_catalog, covid_log[:4]), rounds=1, iterations=1
    )

    reference_model = CostModel()
    rows = []
    for name, result in results.items():
        full_cost = reference_model.evaluate(result.interface).total
        rows.append(
            [
                name,
                result.interface.visualization_count,
                result.interface.widget_count,
                result.interface.interaction_count,
                round(result.total_cost, 2),
                round(full_cost, 2),
                round(coverage_ratio(result.forest), 2),
            ]
        )
    print_table(
        "Ablation A2: cost-model components (COVID log, 4 queries)",
        [
            "Variant",
            "Charts",
            "Widgets",
            "Vis. interactions",
            "Optimized cost",
            "Cost under full model",
            "Coverage",
        ],
        rows,
    )

    full = results["full cost model"]
    # The full model's winner must be at least as good *under the full model*
    # as every ablated variant's winner.
    full_reference = reference_model.evaluate(full.interface).total
    for name, result in results.items():
        variant_reference = reference_model.evaluate(result.interface).total
        assert full_reference <= variant_reference + 1e-6, name
    # The full model never sacrifices coverage.
    assert coverage_ratio(full.forest) == 1.0
