"""Figure 5 — multi-view interface: clicking a bar binds the literal choice.

The Figure 5 variant of the example queries differs from Figure 3 in that Q1
and Q2 only differ in the literal compared to attribute ``a``, and Q3 charts
exactly that attribute.  PI2 can therefore map the literal choice to a click
interaction on Q3's bar chart instead of a widget: clicking a bar binds the
clicked ``a`` value into Q1/Q2's predicate and updates the other chart.
"""

from __future__ import annotations

from conftest import print_table

from repro.engine.catalog import Catalog
from repro.interface import ChartType, InteractionType
from repro.pipeline import PipelineConfig, generate_interface

FIG5_QUERIES = [
    "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
    "SELECT p, count(*) FROM t WHERE a = 2 GROUP BY p",
    "SELECT a, count(*) FROM t GROUP BY a",
]


def toy_catalog() -> Catalog:
    catalog = Catalog()
    catalog.create_table(
        "t",
        ["p", "a", "b"],
        [[1, 1, 2], [1, 1, 3], [2, 2, 2], [2, 3, 1], [3, 1, 2], [3, 2, 2], [4, 3, 3]],
    )
    return catalog


def build_multiview():
    catalog = toy_catalog()
    result = generate_interface(
        FIG5_QUERIES,
        catalog,
        PipelineConfig(method="exhaustive", exhaustive_depth=2, name="figure5"),
    )
    state = result.start_session(catalog)
    return catalog, result, state


def test_figure5_multi_view_click(benchmark):
    catalog, result, state = benchmark.pedantic(build_multiview, rounds=1, iterations=1)
    interface = result.interface

    clicks = [
        i for i in interface.interactions if i.interaction_type is InteractionType.CLICK_SELECT
    ]
    assert clicks, "Figure 5 requires a click-to-select interaction"
    click = clicks[0]
    source_vis = interface.visualization(click.source_vis_id)
    target_tree = click.bindings[0].tree_index

    # Simulate clicking the bar for a = 3 (a value not present in the inputs):
    before_sql = state.current_sql(target_tree)
    state.apply_click(click.interaction_id, 3)
    after_sql = state.current_sql(target_tree)
    after_rows = state.data_for_tree(target_tree)

    rows = [
        ["charts", interface.visualization_count],
        ["click interaction source", f"{click.source_vis_id} ({source_vis.chart_type.value} over '{click.attribute}')"],
        ["query before click", before_sql],
        ["query after clicking a=3", after_sql],
        ["rows after click", after_rows.row_count],
    ]
    print_table("Figure 5: multi-view interface with cross-chart click", ["item", "value"], rows)

    # The click happens on the *other* tree's bar chart over attribute a.
    assert source_vis.chart_type is ChartType.BAR
    assert click.attribute == "a"
    assert source_vis.tree_index != target_tree
    # Clicking rebinds the literal inside the other chart's query.
    assert "a = 3" in after_sql and "a = 3" not in before_sql
    assert result.forest.covers_all()
