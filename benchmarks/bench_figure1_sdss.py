"""Figure 1 — the SDSS region-query example rendered by Lux, Hex and PI2.

(a) Lux: one static scatter per query; (b) Hex: one chart plus four manually
configured sliders; (c) PI2: a single scatter with pan/zoom over ra/dec.
The bench regenerates all three artifacts and checks their shapes.
"""

from __future__ import annotations

from conftest import print_table

from repro.baselines import HexBaseline, LuxBaseline
from repro.interface import ChartType, InteractionType
from repro.pipeline import PipelineConfig, generate_interface


def generate_all_three(sdss_catalog, sdss_log):
    lux = LuxBaseline(catalog=sdss_catalog, execute_queries=False)
    lux_recommendations = lux.recommend(sdss_log)
    hex_interface = HexBaseline(sdss_catalog).parameterize(sdss_log[0])
    pi2 = generate_interface(
        sdss_log,
        sdss_catalog,
        PipelineConfig(method="mcts", mcts_iterations=60, seed=1, name="sdss"),
    )
    return lux_recommendations, hex_interface, pi2


def test_figure1_sdss_interfaces(benchmark, sdss_catalog, sdss_log):
    lux_recommendations, hex_interface, pi2 = benchmark.pedantic(
        lambda: generate_all_three(sdss_catalog, sdss_log), rounds=1, iterations=1
    )

    rows = [
        [
            "(a) Lux",
            len(lux_recommendations),
            0,
            0,
            "static scatter per query",
        ],
        [
            "(b) Hex",
            1,
            hex_interface.widget_count(),
            0,
            "4 sliders manipulate ra/dec bounds",
        ],
        [
            "(c) PI2",
            pi2.interface.visualization_count,
            pi2.interface.widget_count,
            pi2.interface.interaction_count,
            "; ".join(i.describe() for i in pi2.interface.interactions),
        ],
    ]
    print_table(
        "Figure 1: interfaces for the SDSS ra/dec region analysis",
        ["System", "Charts", "Widgets", "Vis. interactions", "Notes"],
        rows,
    )

    # (a) one chart per query, all static scatters.
    assert len(lux_recommendations) == len(sdss_log)
    assert all(r.visualization.chart_type is ChartType.SCATTER for r in lux_recommendations)
    # (b) four parameter sliders (ra low/high, dec low/high), no interactions.
    assert hex_interface.widget_count() == 4
    assert hex_interface.interaction_count() == 0
    # (c) a single scatter with a pan/zoom interaction over ra and dec.
    assert pi2.interface.visualization_count == 1
    assert pi2.interface.visualizations[0].chart_type is ChartType.SCATTER
    assert pi2.interface.interaction_count == 1
    interaction = pi2.interface.interactions[0]
    assert interaction.interaction_type is InteractionType.PAN_ZOOM
    assert {interaction.attribute, interaction.secondary_attribute} == {"ra", "dec"}
    assert pi2.forest.covers_all()
