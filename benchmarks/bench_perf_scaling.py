"""Perf P1 — end-to-end generation latency vs number of input queries.

The demo must generate interfaces at interactive speed while the analyst
works.  This bench sweeps the query-log length on the COVID scenario (1 to 6
queries) and on a synthetic widening sweep, reporting generation latency and
candidates evaluated per log size.
"""

from __future__ import annotations

import time

from conftest import print_table

from repro.interface import LARGE_SCREEN
from repro.pipeline import PipelineConfig, generate_interface


def sweep_log_sizes(covid_catalog, covid_v3_log):
    measurements = []
    for size in range(1, len(covid_v3_log) + 1):
        queries = covid_v3_log[:size]
        started = time.perf_counter()
        result = generate_interface(
            queries,
            covid_catalog,
            PipelineConfig(
                method="mcts", mcts_iterations=60, seed=1, screen=LARGE_SCREEN, name=f"n={size}"
            ),
        )
        elapsed = time.perf_counter() - started
        measurements.append((size, elapsed, result))
    return measurements


def test_perf_scaling_with_log_size(benchmark, covid_catalog, covid_v3_log):
    measurements = benchmark.pedantic(
        lambda: sweep_log_sizes(covid_catalog, covid_v3_log), rounds=1, iterations=1
    )

    rows = [
        [
            size,
            f"{elapsed * 1000:.0f} ms",
            result.stats.evaluations,
            result.interface.visualization_count,
            result.interface.widget_count + result.interface.interaction_count,
            round(result.total_cost, 2),
            result.stats.queries_executed,
            result.stats.query_cache_hits + result.stats.profile_cache_hits,
            result.stats.tree_evals_reused,
        ]
        for size, elapsed, result in measurements
    ]
    print_table(
        "Perf P1: generation latency vs query-log size (COVID scenario)",
        [
            "Queries",
            "Latency",
            "Candidates",
            "Charts",
            "Interactive components",
            "Cost",
            "Executed",
            "Profile hits",
            "Trees reused",
        ],
        rows,
    )

    # Latency stays interactive (well under a minute even for the full log)...
    assert all(elapsed < 30.0 for _size, elapsed, _result in measurements)
    # ...and the interface grows monotonically richer as queries are added.
    components = [
        result.interface.component_count() for _size, _elapsed, result in measurements
    ]
    assert components == sorted(components)
    # Larger logs require exploring more candidates.
    assert measurements[-1][2].stats.evaluations >= measurements[0][2].stats.evaluations


def test_perf_single_generation(benchmark, covid_catalog, covid_log):
    """The number pytest-benchmark tracks over time: one V2-sized generation."""
    result = benchmark(
        lambda: generate_interface(
            covid_log[:4],
            covid_catalog,
            PipelineConfig(method="greedy", screen=LARGE_SCREEN, name="covid V2"),
        )
    )
    assert result.interface.visualization_count >= 1
