"""Shared fixtures and reporting helpers for the benchmark harness.

Every file in this directory regenerates one table or figure of the paper (or
one ablation).  Benchmarks print the rows/series they reproduce so that the
console output can be compared side by side with the paper; the timing numbers
come from pytest-benchmark.
"""

from __future__ import annotations

import pytest

from repro.datasets import (
    covid_query_log,
    covid_region_variant_queries,
    load_covid_catalog,
    load_sdss_catalog,
    load_sp500_catalog,
    sdss_query_log,
    sp500_query_log,
)


def print_table(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Print an aligned text table (the benchmark harness's 'figure output')."""
    widths = [len(str(header)) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    line = " | ".join(str(header).ljust(widths[i]) for i, header in enumerate(headers))
    separator = "-+-".join("-" * width for width in widths)
    print(f"\n=== {title} ===")
    print(line)
    print(separator)
    for row in rows:
        print(" | ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))


@pytest.fixture(scope="session")
def covid_catalog():
    return load_covid_catalog()


@pytest.fixture(scope="session")
def sdss_catalog():
    return load_sdss_catalog()


@pytest.fixture(scope="session")
def sp500_catalog():
    return load_sp500_catalog()


@pytest.fixture(scope="session")
def covid_log():
    return covid_query_log()


@pytest.fixture(scope="session")
def covid_v3_log():
    return covid_query_log() + [covid_region_variant_queries()[1]]


@pytest.fixture(scope="session")
def sdss_log():
    return sdss_query_log()


@pytest.fixture(scope="session")
def sp500_log():
    return sp500_query_log()
