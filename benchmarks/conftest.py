"""Shared fixtures and reporting helpers for the benchmark harness.

Every file in this directory regenerates one table or figure of the paper (or
one ablation).  Benchmarks print the rows/series they reproduce so that the
console output can be compared side by side with the paper; the timing numbers
come from pytest-benchmark.
"""

from __future__ import annotations

import time

import pytest

from repro.datasets import (
    covid_query_log,
    covid_region_variant_queries,
    load_covid_catalog,
    load_sdss_catalog,
    load_sp500_catalog,
    sdss_query_log,
    sp500_query_log,
)


def print_table(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Print an aligned text table (the benchmark harness's 'figure output')."""
    widths = [len(str(header)) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    line = " | ".join(str(header).ljust(widths[i]) for i, header in enumerate(headers))
    separator = "-+-".join("-" * width for width in widths)
    print(f"\n=== {title} ===")
    print(line)
    print(separator)
    for row in rows:
        print(" | ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))


def calibration_ops_per_sec() -> float:
    """Machine-speed calibration score for the perf-regression gate.

    Times a fixed pure-Python workload approximating the engine's per-row op
    mix (comparisons, arithmetic, list building) and reports the **best of
    five** attempts — the best-of discards scheduler hiccups, which matters
    because the regression checker divides throughput metrics by this score
    before comparing against the committed baseline (so a slower/faster CI
    runner does not read as an engine regression/improvement).
    """
    data = list(range(10_000))
    rounds = 10
    best = float("inf")
    for _attempt in range(5):
        started = time.perf_counter()
        total = 0
        for _ in range(rounds):
            total += sum(1 for value in data if value % 7 and value > 100)
            scratch = [value + 1 for value in data]
        elapsed = time.perf_counter() - started
        assert total and scratch
        best = min(best, elapsed)
    return (rounds * 2 * len(data)) / best


@pytest.fixture(scope="session")
def covid_catalog():
    return load_covid_catalog()


@pytest.fixture(scope="session")
def sdss_catalog():
    return load_sdss_catalog()


@pytest.fixture(scope="session")
def sp500_catalog():
    return load_sp500_catalog()


@pytest.fixture(scope="session")
def covid_log():
    return covid_query_log()


@pytest.fixture(scope="session")
def covid_v3_log():
    return covid_query_log() + [covid_region_variant_queries()[1]]


@pytest.fixture(scope="session")
def sdss_log():
    return sdss_query_log()


@pytest.fixture(scope="session")
def sp500_log():
    return sp500_query_log()
