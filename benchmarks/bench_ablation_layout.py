"""Ablation A3 — screen-size-aware layout.

"On a large screen, the interface may show multiple visualizations side by
side, whereas a small screen may show a single visualization that can be
changed via interactions" (Section 1).  This ablation generates interfaces for
the same COVID log on three screen sizes and reports the layout decisions.
"""

from __future__ import annotations

from conftest import print_table

from repro.interface import LARGE_SCREEN, NOTEBOOK_PANEL, SMALL_SCREEN
from repro.pipeline import PipelineConfig, generate_interface

SCREENS = {
    "large desktop (1600x1000)": LARGE_SCREEN,
    "notebook side panel (820x900)": NOTEBOOK_PANEL,
    "small / narrow (600x900)": SMALL_SCREEN,
}


def run_screens(covid_catalog, covid_log):
    results = {}
    for name, screen in SCREENS.items():
        results[name] = generate_interface(
            covid_log,
            covid_catalog,
            PipelineConfig(method="mcts", mcts_iterations=60, seed=1, screen=screen, name=name),
        )
    return results


def test_ablation_screen_size_layout(benchmark, covid_catalog, covid_log):
    results = benchmark.pedantic(
        lambda: run_screens(covid_catalog, covid_log[:4]), rounds=1, iterations=1
    )

    rows = []
    for name, result in results.items():
        layout = result.interface.layout
        rows.append(
            [
                name,
                result.interface.visualization_count,
                layout.charts_per_row(),
                "tabs" if layout.uses_tabs else "grid",
                result.interface.widget_count + result.interface.interaction_count,
                round(result.total_cost, 2),
            ]
        )
    print_table(
        "Ablation A3: layouts chosen per screen size (COVID log, 4 queries)",
        ["Screen", "Charts", "Charts per row", "Layout", "Interactive components", "Cost"],
        rows,
    )

    large = results["large desktop (1600x1000)"]
    small = results["small / narrow (600x900)"]
    # Large screens lay charts out side by side; they never resort to tabs.
    assert not large.interface.layout.uses_tabs
    # Small screens either collapse to a tabbed single-view layout or reduce
    # the number of simultaneously shown charts.
    assert (
        small.interface.layout.uses_tabs
        or small.interface.visualization_count <= large.interface.visualization_count
    )
    # Every variant still expresses the full query log.
    for result in results.values():
        assert result.forest.covers_all()
