"""Table 1 — capability comparison: Lux vs Hex vs PI2 (and a plain notebook).

The paper's Table 1 compares the tools along four axes: visualizations,
widgets, visualization interactions and zero-effort generation.  This bench
regenerates the table mechanically by running each (re-implemented) system on
the SDSS example log and reporting what each one actually produced.
"""

from __future__ import annotations

from conftest import print_table

from repro.baselines import HexBaseline, LuxBaseline
from repro.pipeline import PipelineConfig, generate_interface


def build_capability_rows(sdss_catalog, sdss_log):
    lux = LuxBaseline(catalog=sdss_catalog, execute_queries=False)
    lux.recommend(sdss_log)

    hex_baseline = HexBaseline(sdss_catalog)
    hex_interface = hex_baseline.parameterize(sdss_log[0])

    pi2 = generate_interface(
        sdss_log, sdss_catalog, PipelineConfig(method="mcts", mcts_iterations=60, seed=1)
    )

    rows = [
        [
            "Lux",
            "yes" if lux.visualization_count() else "no",
            "none",
            "yes" if lux.interaction_count() else "no",
            "yes",
        ],
        [
            "Hex",
            "yes" if hex_interface.visualization else "no",
            "parameter",
            "yes" if hex_interface.interaction_count() else "no",
            f"no ({hex_interface.manual_steps} manual steps)",
        ],
        [
            "PI2",
            "yes" if pi2.interface.visualization_count else "no",
            "arbitrary" if pi2.interface.has_structural_widgets() or pi2.interface.interaction_count else "parameter",
            "yes" if pi2.interface.interaction_count else "no",
            "yes",
        ],
    ]
    return rows, pi2


def test_table1_capability_matrix(benchmark, sdss_catalog, sdss_log):
    rows, pi2 = benchmark.pedantic(
        lambda: build_capability_rows(sdss_catalog, sdss_log), rounds=1, iterations=1
    )
    print_table(
        "Table 1: capability comparison",
        ["System", "Visualizations", "Widgets", "Vis. interactions", "Zero effort"],
        rows,
    )

    by_system = {row[0]: row for row in rows}
    # The paper's claims: only PI2 offers visualization interactions and
    # arbitrary (structure-changing) widgets with zero effort.
    assert by_system["Lux"][3] == "no"
    assert by_system["Hex"][3] == "no"
    assert by_system["PI2"][3] == "yes"
    assert by_system["Hex"][2] == "parameter"
    assert by_system["PI2"][4] == "yes"
    assert by_system["Hex"][4].startswith("no")
    assert pi2.interface.interaction_count >= 1
