"""Ablation A1 — search strategy: MCTS vs greedy vs bounded exhaustive.

The paper motivates MCTS with the size of the interface space.  This ablation
compares the three strategies on the SDSS and COVID logs: final cost, number
of distinct candidates evaluated, and wall time.  Expected shape: exhaustive
finds the cheapest interface but evaluates the most candidates; MCTS matches
(or nearly matches) it with far fewer evaluations; greedy is fastest but gets
stuck in local minima (notably on SDSS, where the winning interface requires a
temporarily-worse merge before factoring pays off).
"""

from __future__ import annotations

import time

from conftest import print_table

from repro.cost import CostModel
from repro.mapping import MappingConfig
from repro.search import SearchSpace, beam_search, exhaustive_search, greedy_search, mcts_search


def make_space(catalog, queries):
    # The catalog wires candidate evaluation through the engine's canonical-
    # query result cache: sibling candidates instantiate to mostly-identical
    # queries, so the repeated executions are cache hits.
    return SearchSpace(
        queries=queries,
        table_schemas=catalog.schemas(),
        mapping_config=MappingConfig(),
        cost_model=CostModel(),
        catalog=catalog,
    )


def run_strategies(catalog, queries, mcts_iterations=80, exhaustive_states=150):
    results = {}
    for name in ("greedy", "beam", "mcts", "exhaustive"):
        space = make_space(catalog, queries)
        started = time.perf_counter()
        if name == "greedy":
            result = greedy_search(space)
        elif name == "beam":
            result = beam_search(space, width=3, max_depth=6)
        elif name == "mcts":
            result = mcts_search(space, iterations=mcts_iterations, seed=1)
        else:
            result = exhaustive_search(space, max_depth=4, max_states=exhaustive_states)
        elapsed = time.perf_counter() - started
        results[name] = (result, space.stats.evaluations, elapsed)
    return results


def _rows(results):
    return [
        [
            name,
            round(result.total_cost, 2),
            evaluations,
            f"{elapsed * 1000:.0f} ms",
            " -> ".join(result.action_trace) or "(none)",
        ]
        for name, (result, evaluations, elapsed) in results.items()
    ]


def test_ablation_search_sdss(benchmark, sdss_catalog, sdss_log):
    results = benchmark.pedantic(
        lambda: run_strategies(sdss_catalog, sdss_log), rounds=1, iterations=1
    )
    print_table(
        "Ablation A1 (SDSS): search strategy comparison",
        ["Strategy", "Final cost", "Candidates evaluated", "Wall time", "Actions"],
        _rows(results),
    )
    greedy_cost = results["greedy"][0].total_cost
    mcts_cost = results["mcts"][0].total_cost
    exhaustive_cost = results["exhaustive"][0].total_cost
    # Exhaustive is the reference optimum within its depth bound; MCTS matches
    # it; greedy is stuck at the static two-chart interface.
    assert mcts_cost <= exhaustive_cost + 1e-9
    assert mcts_cost < greedy_cost
    _report_cache(sdss_catalog, "SDSS")


def _report_cache(catalog, label):
    stats = catalog.cache_stats()
    print_table(
        f"Ablation A1 ({label}): query-cache reuse across sibling candidates",
        ["Executions", "Cache hits", "Hit rate", "Distinct results"],
        [[stats["hits"] + stats["misses"], stats["hits"], stats["hit_rate"], stats["entries"]]],
    )
    # Sibling candidates share most of their concrete queries: the search
    # workload must be served mostly from the canonical-query cache.
    assert stats["hits"] > 0
    assert stats["hit_rate"] > 0.5


def test_ablation_search_covid(benchmark, covid_catalog, covid_v3_log):
    # The full walkthrough log (6 queries, including the join/subquery-heavy
    # region variants) is where exhaustive enumeration visibly blows up.
    results = benchmark.pedantic(
        lambda: run_strategies(
            covid_catalog, covid_v3_log, mcts_iterations=40, exhaustive_states=150
        ),
        rounds=1,
        iterations=1,
    )
    print_table(
        "Ablation A1 (COVID, 6 queries): search strategy comparison",
        ["Strategy", "Final cost", "Candidates evaluated", "Wall time", "Actions"],
        _rows(results),
    )
    mcts_result, mcts_evaluations, _ = results["mcts"]
    _, exhaustive_evaluations, _ = results["exhaustive"]
    greedy_result, _, _ = results["greedy"]
    assert mcts_result.total_cost <= greedy_result.total_cost
    assert mcts_evaluations < exhaustive_evaluations
    assert mcts_result.forest.covers_all()
    _report_cache(covid_catalog, "COVID")
