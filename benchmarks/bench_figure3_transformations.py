"""Figure 3 — Difftrees for Q1/Q2 and the tree-transformation alternatives.

(a) an ANY node over the two whole predicates → two radio buttons,
(b) the factored form with independent attribute / literal choices → two radio
    lists, generalizing beyond the inputs,
(c) the same choices mapped to a button group + slider (cheaper widgets).

The bench builds all three candidates, maps and costs them, and reports the
comparison — the factored candidates must cover the originals *and* express
queries the unfactored one cannot.
"""

from __future__ import annotations

from conftest import print_table

from repro.cost import CostModel
from repro.difftree import (
    build_forest,
    choice_contexts,
    collect_choice_nodes,
    covers,
    factor_common_root,
    find_binding_for,
)
from repro.engine.catalog import Catalog
from repro.mapping import MappingConfig, MappingPolicy, map_forest_to_interface
from repro.sql import parse_select

Q1 = "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p"
Q2 = "SELECT p, count(*) FROM t WHERE b = 2 GROUP BY p"
GENERALIZED = "SELECT p, count(*) FROM t WHERE b = 1 GROUP BY p"


def toy_catalog() -> Catalog:
    catalog = Catalog()
    catalog.create_table(
        "t",
        ["p", "a", "b"],
        [[1, 1, 2], [1, 1, 3], [2, 2, 2], [2, 3, 1], [3, 1, 2], [3, 2, 2], [4, 3, 3]],
    )
    return catalog


def build_candidates():
    catalog = toy_catalog()
    model = CostModel()

    forest_a = build_forest([Q1, Q2], strategy="merged")
    tree_a = forest_a.trees[0]
    any_node = collect_choice_nodes(tree_a)[0]

    tree_b = factor_common_root(tree_a, any_node.choice_id)
    forest_b = forest_a.replace_tree(0, tree_b)

    interface_a = map_forest_to_interface(forest_a, catalog.schemas(), MappingConfig(name="fig3a"))
    interface_b = map_forest_to_interface(forest_b, catalog.schemas(), MappingConfig(name="fig3b"))
    # (c): same Difftree as (b) but a policy that keeps everything as widgets,
    # matching the button-group + slider rendering of the figure.
    interface_c = map_forest_to_interface(
        forest_b,
        catalog.schemas(),
        MappingConfig(
            name="fig3c",
            policy=MappingPolicy(prefer_vis_interactions=False, allow_click_select=False, slider_min_options=2),
        ),
    )

    costs = {
        "a": model.evaluate(interface_a),
        "b": model.evaluate(interface_b),
        "c": model.evaluate(interface_c),
    }
    return forest_a, forest_b, interface_a, interface_b, interface_c, costs


def test_figure3_tree_transformations(benchmark):
    forest_a, forest_b, interface_a, interface_b, interface_c, costs = benchmark.pedantic(
        build_candidates, rounds=1, iterations=1
    )
    q1, q2 = forest_a.queries
    generalized = parse_select(GENERALIZED)

    rows = []
    for label, forest, interface in (
        ("(a) ANY over predicates", forest_a, interface_a),
        ("(b) factored operand choices", forest_b, interface_b),
        ("(c) factored, widget-only mapping", forest_b, interface_c),
    ):
        tree = forest.trees[0]
        rows.append(
            [
                label,
                len(collect_choice_nodes(tree)),
                ", ".join(w.widget_type.value for w in interface.widgets) or "-",
                "yes" if covers(tree, [q1, q2]) else "no",
                "yes" if find_binding_for(tree, generalized) is not None else "no",
                round(costs[label[1]].total, 2),
            ]
        )
    print_table(
        "Figure 3: Difftree alternatives for Q1/Q2",
        ["Candidate", "Choice nodes", "Widgets", "Covers Q1,Q2", "Expresses b=1", "Cost"],
        rows,
    )

    # All candidates must express the input queries.
    assert covers(forest_a.trees[0], [q1, q2])
    assert covers(forest_b.trees[0], [q1, q2])
    # Only the factored Difftree generalizes to the unseen query (b = 1).
    assert find_binding_for(forest_a.trees[0], generalized) is None
    assert find_binding_for(forest_b.trees[0], generalized) is not None
    # The factored candidates have two independent choices; (a) has one.
    assert len(collect_choice_nodes(forest_a.trees[0])) == 1
    assert len(collect_choice_nodes(forest_b.trees[0])) == 2
    kinds = sorted(c.alternative_kind for c in choice_contexts(forest_b.trees[0]))
    assert kinds == ["column", "numeric_literal"]
