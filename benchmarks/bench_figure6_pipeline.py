"""Figure 6 — the four-step generation pipeline, timed stage by stage.

Figure 6 is the pipeline diagram: (1) parse queries into Difftrees, (2) map
Difftrees to an interface, (3) cost it, (4) search with MCTS.  The bench runs
each stage separately on the COVID log and reports per-stage timings plus the
end-to-end figure, which is also the number pytest-benchmark records.
"""

from __future__ import annotations

import time

from conftest import print_table

from repro.cost import CostModel
from repro.difftree import build_forest
from repro.mapping import MappingConfig, map_forest_to_interface
from repro.pipeline import PipelineConfig, generate_interface


def run_stages(covid_catalog, covid_log):
    timings: dict[str, float] = {}
    schemas = covid_catalog.schemas()

    started = time.perf_counter()
    forest = build_forest(covid_log, strategy="per_query")
    timings["1. parse queries into Difftrees"] = time.perf_counter() - started

    started = time.perf_counter()
    interface = map_forest_to_interface(forest, schemas, MappingConfig(name="initial"))
    timings["2. map Difftrees to an interface"] = time.perf_counter() - started

    started = time.perf_counter()
    cost = CostModel().evaluate(interface)
    timings["3. evaluate the cost model"] = time.perf_counter() - started

    started = time.perf_counter()
    result = generate_interface(
        covid_log,
        covid_catalog,
        PipelineConfig(method="mcts", mcts_iterations=80, seed=1, name="covid"),
    )
    timings["4. MCTS search (end to end)"] = time.perf_counter() - started
    return timings, cost, result


def test_figure6_pipeline_stages(benchmark, covid_catalog, covid_log):
    timings, initial_cost, result = benchmark.pedantic(
        lambda: run_stages(covid_catalog, covid_log), rounds=1, iterations=1
    )

    rows = [[stage, f"{seconds * 1000:.1f} ms"] for stage, seconds in timings.items()]
    rows.append(["initial (static) interface cost", round(initial_cost.total, 2)])
    rows.append(["final interface cost", round(result.total_cost, 2)])
    rows.append(["candidates evaluated", result.stats.evaluations])
    rows.append(["actions applied", " -> ".join(result.action_trace) or "(none)"])
    print_table("Figure 6: PI2 generation pipeline stages on the COVID log", ["stage", "value"], rows)

    # The search must improve on the naive static interface.
    assert result.total_cost <= initial_cost.total
    # And the whole pipeline runs in interactive time on this workload.
    assert timings["4. MCTS search (end to end)"] < 30.0
    assert result.forest.covers_all()
