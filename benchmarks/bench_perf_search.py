"""Perf P4 — incremental search throughput across strategies.

PR 3 made candidate evaluation O(changed trees): per-tree signatures, cached
profiles / chart templates / widget pieces, signature-keyed coverage checks
and data profiling.  This bench measures what that buys on synthetic query
logs of 10–20 structurally-related queries (the size where the forest is large
enough for incrementality to matter):

* candidates evaluated per second, per strategy (greedy / mcts / beam /
  exhaustive-small),
* per-tree cache hit rates (profile pieces and data-profile rows),
* the evaluation-cache hit rate and the engine-level query split
  (executed vs result-cache hits).

Set ``BENCH_SEARCH_JSON=/path/to/BENCH_search.json`` to also write the
measurements as JSON — CI uploads that artifact so the perf trajectory stays
machine-readable.
"""

from __future__ import annotations

import json
import os
import time

from conftest import calibration_ops_per_sec, print_table

from repro.cost import CostModel
from repro.mapping import MappingConfig
from repro.search import (
    SearchSpace,
    beam_search,
    exhaustive_search,
    greedy_search,
    mcts_search,
)

#: Strategy name -> runner; sizes chosen so a full sweep stays CI-friendly.
STRATEGIES = {
    "greedy": lambda space: greedy_search(space, max_steps=12),
    "mcts": lambda space: mcts_search(space, iterations=40, seed=1),
    "beam": lambda space: beam_search(space, width=3, max_depth=6),
    "exhaustive-small": lambda space: exhaustive_search(space, max_depth=2, max_states=120),
}


def synthetic_covid_log(size: int) -> list[str]:
    """A log of ``size`` structurally-related analysis queries.

    Mimics how an analyst widens one investigation: the same aggregate shape
    re-filtered over sliding date windows, per-state drill-downs over varying
    thresholds, and a couple of dissimilar probes that must stay separate
    trees.  Sliding windows merge into range choices, thresholds into sliders
    — a realistic forest for the search to compress.
    """
    queries: list[str] = [
        "SELECT date, sum(cases) AS total_cases FROM covid_cases GROUP BY date ORDER BY date",
    ]
    windows = [
        ("2021-11-01", "2021-11-14"),
        ("2021-11-15", "2021-11-28"),
        ("2021-12-01", "2021-12-14"),
        ("2021-12-15", "2021-12-28"),
        ("2021-12-08", "2021-12-21"),
        ("2021-11-08", "2021-11-21"),
    ]
    for low, high in windows:
        queries.append(
            "SELECT date, sum(cases) AS total_cases FROM covid_cases "
            f"WHERE date BETWEEN '{low}' AND '{high}' GROUP BY date ORDER BY date"
        )
    for threshold in (100, 250, 500, 1000, 2000, 4000):
        queries.append(
            "SELECT date, state, sum(cases) AS cases FROM covid_cases "
            f"WHERE cases > {threshold} GROUP BY date, state ORDER BY date"
        )
    for state in ("'NY'", "'CA'", "'TX'", "'FL'", "'WA'", "'GA'"):
        queries.append(
            "SELECT date, cases FROM covid_cases "
            f"WHERE state = {state} ORDER BY date"
        )
    queries.append("SELECT state, region FROM state_regions ORDER BY state")
    return queries[:size]


def run_strategy(catalog, queries, name):
    catalog.clear_caches()
    space = SearchSpace(
        queries=queries,
        table_schemas=catalog.schemas(),
        mapping_config=MappingConfig(name=f"p4-{name}"),
        cost_model=CostModel(),
        catalog=catalog,
    )
    started = time.perf_counter()
    result = STRATEGIES[name](space)
    elapsed = time.perf_counter() - started
    stats = space.stats
    cache_info = space.cache_info()
    distinct = stats.evaluations
    probes = stats.evaluations + stats.cache_hits
    tree_total = stats.tree_evals_reused + stats.tree_evals_computed
    piece_info = cache_info["pieces"]
    piece_lookups = piece_info["hits"] + piece_info["misses"]
    profiled = stats.queries_executed + stats.query_cache_hits + stats.profile_cache_hits
    return {
        "strategy": name,
        "queries": len(queries),
        "cost": round(result.total_cost, 3),
        "trees": result.forest.tree_count,
        "elapsed_seconds": elapsed,
        "candidates": distinct,
        "candidates_per_sec": distinct / elapsed if elapsed else 0.0,
        "eval_cache_hit_rate": stats.cache_hits / probes if probes else 0.0,
        "tree_reuse_rate": stats.tree_evals_reused / tree_total if tree_total else 0.0,
        "piece_cache_hit_rate": (
            piece_info["hits"] / piece_lookups if piece_lookups else 0.0
        ),
        "data_profile_hit_rate": (
            (stats.query_cache_hits + stats.profile_cache_hits) / profiled if profiled else 0.0
        ),
        "queries_executed": stats.queries_executed,
        "query_cache_hits": stats.query_cache_hits,
        "profile_cache_hits": stats.profile_cache_hits,
    }


def sweep(catalog, sizes=(10, 15, 20)):
    measurements = []
    for size in sizes:
        queries = synthetic_covid_log(size)
        for name in STRATEGIES:
            measurements.append(run_strategy(catalog, queries, name))
    return measurements


def _print_tables(measurements):
    print_table(
        "Perf P4: incremental search throughput (synthetic COVID logs)",
        ["Queries", "Strategy", "Latency", "Candidates", "Cand/s", "Cost", "Trees"],
        [
            [
                m["queries"],
                m["strategy"],
                f"{m['elapsed_seconds'] * 1000:.0f} ms",
                m["candidates"],
                f"{m['candidates_per_sec']:.0f}",
                m["cost"],
                m["trees"],
            ]
            for m in measurements
        ],
    )
    print_table(
        "Perf P4: cache effectiveness",
        [
            "Queries",
            "Strategy",
            "Eval-cache",
            "Tree reuse",
            "Widget pieces",
            "Data-profile",
            "Executed",
            "Result hits",
        ],
        [
            [
                m["queries"],
                m["strategy"],
                f"{m['eval_cache_hit_rate'] * 100:.0f}%",
                f"{m['tree_reuse_rate'] * 100:.0f}%",
                f"{m['piece_cache_hit_rate'] * 100:.0f}%",
                f"{m['data_profile_hit_rate'] * 100:.0f}%",
                m["queries_executed"],
                m["query_cache_hits"],
            ]
            for m in measurements
        ],
    )


def _maybe_write_json(measurements):
    path = os.environ.get("BENCH_SEARCH_JSON")
    if not path:
        return
    payload = {
        "measurements": measurements,
        # Machine-speed score consumed by check_perf_regression.py so the
        # candidates/sec gate compares machine-normalized numbers.
        "calibration_ops_per_sec": calibration_ops_per_sec(),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
    print(f"\nwrote {len(measurements)} measurements to {path}")


def test_perf_search_strategies(benchmark, covid_catalog):
    sizes = (10, 15, 20)
    if os.environ.get("BENCH_SEARCH_SMALL"):
        sizes = (10,)
    measurements = benchmark.pedantic(
        lambda: sweep(covid_catalog, sizes=sizes), rounds=1, iterations=1
    )
    _print_tables(measurements)
    _maybe_write_json(measurements)

    # Interactive-speed gate: every strategy finishes a 20-query log quickly.
    assert all(m["elapsed_seconds"] < 30.0 for m in measurements)
    # Incrementality gate: on the largest log, most per-tree work is reuse.
    largest = [m for m in measurements if m["queries"] == max(s for s in sizes)]
    assert all(m["tree_reuse_rate"] > 0.5 for m in largest if m["strategy"] != "greedy")
    # The data-profile path must be dominated by cache hits, not executions.
    assert all(m["data_profile_hit_rate"] > 0.5 for m in largest)


def test_perf_search_single(benchmark, covid_catalog):
    """The number pytest-benchmark tracks over time: one beam run at n=10."""
    queries = synthetic_covid_log(10)
    result = benchmark(lambda: run_strategy(covid_catalog, queries, "beam"))
    assert result["cost"] > 0
