"""Perf P3 — physical executor throughput and the canonical-query cache.

Measures the compile-then-run pipeline on the demo workloads: cold execution
(plan + vectorized operators), plan-cache-warm execution, and fully cached
execution through the canonical-query result cache.  Emits a JSON summary
(rows/sec, speedups, hit rate) alongside the usual table so dashboards can
track the numbers over time.
"""

from __future__ import annotations

import json
import random
import time

from conftest import print_table

from repro.datasets import load_covid_catalog, load_sdss_catalog
from repro.engine.catalog import Catalog


def _measure(catalog_loader, queries, repeats=5):
    """Cold vs plan-warm vs result-cached timings for a query workload."""
    catalog = catalog_loader()

    started = time.perf_counter()
    cold_rows = 0
    for sql in queries:
        cold_rows += catalog.execute(sql, use_cache=False).row_count
    cold = time.perf_counter() - started

    # Plans are now compiled and hot; results still recomputed every time.
    started = time.perf_counter()
    for _ in range(repeats):
        for sql in queries:
            catalog.execute(sql, use_cache=False).row_count
    plan_warm = (time.perf_counter() - started) / repeats

    # Result cache: first pass stores, subsequent passes hit.
    for sql in queries:
        catalog.execute(sql)
    started = time.perf_counter()
    for _ in range(repeats):
        for sql in queries:
            catalog.execute(sql).row_count
    cached = (time.perf_counter() - started) / repeats

    stats = catalog.cache_stats()
    return {
        "queries": len(queries),
        "result_rows": cold_rows,
        "cold_seconds": cold,
        "plan_warm_seconds": plan_warm,
        "cached_seconds": cached,
        "cold_rows_per_sec": cold_rows / cold if cold else 0.0,
        "cached_rows_per_sec": cold_rows / cached if cached else 0.0,
        "cached_speedup": cold / cached if cached else 0.0,
        "cache_hit_rate": stats["hit_rate"],
        "cache_hits": stats["hits"],
    }


def _report(label, measurement):
    print_table(
        f"Perf P3 ({label}): executor cold vs cached",
        ["Queries", "Cold", "Plan-warm", "Cached", "Speedup", "Hit rate"],
        [
            [
                measurement["queries"],
                f"{measurement['cold_seconds'] * 1000:.1f} ms",
                f"{measurement['plan_warm_seconds'] * 1000:.1f} ms",
                f"{measurement['cached_seconds'] * 1000:.2f} ms",
                f"{measurement['cached_speedup']:.1f}x",
                measurement["cache_hit_rate"],
            ]
        ],
    )
    print(json.dumps({"benchmark": "perf_executor", "workload": label, **measurement}))


def _optimizer_catalog() -> Catalog:
    """A synthetic star-ish schema sized so rewrite wins dominate."""
    rng = random.Random(7)
    catalog = Catalog()
    catalog.create_table(
        "lineitem",
        ["id", "part_id", "supp_id", "qty", "price"],
        [
            [i, rng.randrange(0, 60), rng.randrange(0, 10), rng.randrange(0, 50), rng.randrange(1, 500)]
            for i in range(800)
        ],
    )
    catalog.create_table(
        "part",
        ["id", "name", "cat"],
        [[i, f"part{i}", f"c{i % 5}"] for i in range(60)],
    )
    catalog.create_table(
        "supp",
        ["id", "region"],
        [[i, "east" if i % 3 == 0 else "west"] for i in range(10)],
    )
    return catalog


#: Join/filter workloads where the optimizer should demonstrably win: comma
#: joins it converts to hash joins, filters it pushes below joins, and a
#: three-way region it reorders from table statistics.
OPTIMIZER_WORKLOAD = [
    (
        "comma_join_group_by",
        "SELECT p.cat, count(*) AS n FROM lineitem l, part p "
        "WHERE l.part_id = p.id AND l.qty > 40 GROUP BY p.cat",
    ),
    (
        "filter_pushdown_join",
        "SELECT l.id, l.qty FROM lineitem l JOIN part p ON l.part_id = p.id "
        "WHERE p.cat = 'c1' AND l.qty > 45",
    ),
    (
        "three_way_reorder",
        "SELECT p.cat, sum(l.qty) AS q FROM lineitem l, part p, supp s "
        "WHERE l.part_id = p.id AND l.supp_id = s.id AND s.region = 'east' "
        "GROUP BY p.cat",
    ),
]


def _measure_optimizer(repeats: int = 3):
    catalog = _optimizer_catalog()
    results = []
    for label, sql in OPTIMIZER_WORKLOAD:
        # Warm both compiled-plan cache entries so only execution is timed.
        rows_on = catalog.execute(sql, use_cache=False).row_count
        rows_off = catalog.execute(sql, use_cache=False, optimize=False).row_count
        assert rows_on == rows_off

        started = time.perf_counter()
        for _ in range(repeats):
            catalog.execute(sql, use_cache=False, optimize=False)
        unoptimized = (time.perf_counter() - started) / repeats

        started = time.perf_counter()
        for _ in range(repeats):
            catalog.execute(sql, use_cache=False)
        optimized = (time.perf_counter() - started) / repeats

        results.append(
            {
                "workload": label,
                "rows": rows_on,
                "unoptimized_seconds": unoptimized,
                "optimized_seconds": optimized,
                "speedup": unoptimized / optimized if optimized else 0.0,
            }
        )
    return results


def test_perf_executor_optimizer_on_vs_off(benchmark):
    """The rewrite rules must win >=2x on at least one join/filter workload."""
    results = benchmark.pedantic(_measure_optimizer, rounds=1, iterations=1)
    print_table(
        "Perf P4: logical optimizer on vs off",
        ["Workload", "Rows", "Optimizer off", "Optimizer on", "Speedup"],
        [
            [
                result["workload"],
                result["rows"],
                f"{result['unoptimized_seconds'] * 1000:.1f} ms",
                f"{result['optimized_seconds'] * 1000:.2f} ms",
                f"{result['speedup']:.1f}x",
            ]
            for result in results
        ],
    )
    for result in results:
        print(json.dumps({"benchmark": "perf_optimizer", **result}))
    best = max(result["speedup"] for result in results)
    assert best >= 2.0, f"expected >=2x on some workload, best was {best:.2f}x"


def test_perf_executor_covid_workload(benchmark, covid_log):
    measurement = benchmark.pedantic(
        lambda: _measure(load_covid_catalog, covid_log), rounds=1, iterations=1
    )
    _report("covid", measurement)
    assert measurement["cache_hit_rate"] > 0
    assert measurement["cached_seconds"] < measurement["cold_seconds"]


def test_perf_executor_sdss_workload(benchmark, sdss_log):
    measurement = benchmark.pedantic(
        lambda: _measure(load_sdss_catalog, sdss_log), rounds=1, iterations=1
    )
    _report("sdss", measurement)
    assert measurement["cache_hit_rate"] > 0
    assert measurement["cached_seconds"] < measurement["cold_seconds"]
