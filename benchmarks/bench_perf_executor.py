"""Perf P3 — physical executor throughput and the canonical-query cache.

Measures the compile-then-run pipeline on the demo workloads: cold execution
(plan + vectorized operators), plan-cache-warm execution, and fully cached
execution through the canonical-query result cache.  Emits a JSON summary
(rows/sec, speedups, hit rate) alongside the usual table so dashboards can
track the numbers over time.
"""

from __future__ import annotations

import json
import time

from conftest import print_table

from repro.datasets import load_covid_catalog, load_sdss_catalog


def _measure(catalog_loader, queries, repeats=5):
    """Cold vs plan-warm vs result-cached timings for a query workload."""
    catalog = catalog_loader()

    started = time.perf_counter()
    cold_rows = 0
    for sql in queries:
        cold_rows += catalog.execute(sql, use_cache=False).row_count
    cold = time.perf_counter() - started

    # Plans are now compiled and hot; results still recomputed every time.
    started = time.perf_counter()
    for _ in range(repeats):
        for sql in queries:
            catalog.execute(sql, use_cache=False).row_count
    plan_warm = (time.perf_counter() - started) / repeats

    # Result cache: first pass stores, subsequent passes hit.
    for sql in queries:
        catalog.execute(sql)
    started = time.perf_counter()
    for _ in range(repeats):
        for sql in queries:
            catalog.execute(sql).row_count
    cached = (time.perf_counter() - started) / repeats

    stats = catalog.cache_stats()
    return {
        "queries": len(queries),
        "result_rows": cold_rows,
        "cold_seconds": cold,
        "plan_warm_seconds": plan_warm,
        "cached_seconds": cached,
        "cold_rows_per_sec": cold_rows / cold if cold else 0.0,
        "cached_rows_per_sec": cold_rows / cached if cached else 0.0,
        "cached_speedup": cold / cached if cached else 0.0,
        "cache_hit_rate": stats["hit_rate"],
        "cache_hits": stats["hits"],
    }


def _report(label, measurement):
    print_table(
        f"Perf P3 ({label}): executor cold vs cached",
        ["Queries", "Cold", "Plan-warm", "Cached", "Speedup", "Hit rate"],
        [
            [
                measurement["queries"],
                f"{measurement['cold_seconds'] * 1000:.1f} ms",
                f"{measurement['plan_warm_seconds'] * 1000:.1f} ms",
                f"{measurement['cached_seconds'] * 1000:.2f} ms",
                f"{measurement['cached_speedup']:.1f}x",
                measurement["cache_hit_rate"],
            ]
        ],
    )
    print(json.dumps({"benchmark": "perf_executor", "workload": label, **measurement}))


def test_perf_executor_covid_workload(benchmark, covid_log):
    measurement = benchmark.pedantic(
        lambda: _measure(load_covid_catalog, covid_log), rounds=1, iterations=1
    )
    _report("covid", measurement)
    assert measurement["cache_hit_rate"] > 0
    assert measurement["cached_seconds"] < measurement["cold_seconds"]


def test_perf_executor_sdss_workload(benchmark, sdss_log):
    measurement = benchmark.pedantic(
        lambda: _measure(load_sdss_catalog, sdss_log), rounds=1, iterations=1
    )
    _report("sdss", measurement)
    assert measurement["cache_hit_rate"] > 0
    assert measurement["cached_seconds"] < measurement["cold_seconds"]
