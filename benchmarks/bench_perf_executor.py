"""Perf P3 — physical executor throughput and the canonical-query cache.

Measures the compile-then-run pipeline on the demo workloads: cold execution
(plan + vectorized operators), plan-cache-warm execution, and fully cached
execution through the canonical-query result cache, plus a scan-dominated
workload over a large synthetic SDSS sample that exercises the columnar
storage layer directly (zero-copy scans, fused filters, hash aggregation).

Emits a JSON summary (rows/sec, speedups, hit rate) alongside the usual
tables.  Set ``BENCH_ENGINE_JSON=/path/to/BENCH_engine.json`` to also write
the gateable metrics as JSON — CI compares that file against
``benchmarks/baselines/BENCH_engine.json`` and fails on >25% throughput
regressions (see ``benchmarks/check_perf_regression.py``).
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import Any

from conftest import calibration_ops_per_sec, print_table

from repro.datasets import load_covid_catalog, load_sdss_catalog
from repro.datasets.sdss import SdssConfig, generate_photo_obj
from repro.engine.catalog import Catalog
from repro.engine.options import ExecOptions

#: Shared execution-knob bundles for timed passes: benchmarks always bypass
#: the result cache, and the optimizer comparison additionally disables
#: rewrites.
NO_CACHE = ExecOptions(use_cache=False)
NO_CACHE_NO_OPT = ExecOptions(use_cache=False, optimize=False)

#: Gateable metrics accumulated across this module's tests; every update
#: rewrites the JSON file (when requested) so a partial run still uploads a
#: well-formed artifact.
_ENGINE_JSON: dict[str, Any] = {"benchmark": "engine", "metrics": {}}


def _record_metrics(**metrics: float) -> None:
    _ENGINE_JSON["metrics"].update(metrics)
    path = os.environ.get("BENCH_ENGINE_JSON")
    if not path:
        return
    if "calibration_ops_per_sec" not in _ENGINE_JSON:
        _ENGINE_JSON["calibration_ops_per_sec"] = calibration_ops_per_sec()
    with open(path, "w") as handle:
        json.dump(_ENGINE_JSON, handle, indent=1, sort_keys=True)


def _measure(catalog_loader, queries, repeats=5):
    """Cold vs plan-warm vs result-cached timings for a query workload."""
    catalog = catalog_loader()

    started = time.perf_counter()
    cold_rows = 0
    for sql in queries:
        cold_rows += catalog.execute(sql, NO_CACHE).row_count
    cold = time.perf_counter() - started

    # Plans are now compiled and hot; results still recomputed every time.
    started = time.perf_counter()
    for _ in range(repeats):
        for sql in queries:
            catalog.execute(sql, NO_CACHE).row_count
    plan_warm = (time.perf_counter() - started) / repeats

    # Result cache: first pass stores, subsequent passes hit.
    for sql in queries:
        catalog.execute(sql)
    started = time.perf_counter()
    for _ in range(repeats):
        for sql in queries:
            catalog.execute(sql).row_count
    cached = (time.perf_counter() - started) / repeats

    stats = catalog.cache_stats()
    return {
        "queries": len(queries),
        "result_rows": cold_rows,
        "cold_seconds": cold,
        "plan_warm_seconds": plan_warm,
        "cached_seconds": cached,
        "cold_rows_per_sec": cold_rows / cold if cold else 0.0,
        "cached_rows_per_sec": cold_rows / cached if cached else 0.0,
        "cached_speedup": cold / cached if cached else 0.0,
        "cache_hit_rate": stats["hit_rate"],
        "cache_hits": stats["hits"],
    }


def _report(label, measurement):
    print_table(
        f"Perf P3 ({label}): executor cold vs cached",
        ["Queries", "Cold", "Plan-warm", "Cached", "Speedup", "Hit rate"],
        [
            [
                measurement["queries"],
                f"{measurement['cold_seconds'] * 1000:.1f} ms",
                f"{measurement['plan_warm_seconds'] * 1000:.1f} ms",
                f"{measurement['cached_seconds'] * 1000:.2f} ms",
                f"{measurement['cached_speedup']:.1f}x",
                measurement["cache_hit_rate"],
            ]
        ],
    )
    print(json.dumps({"benchmark": "perf_executor", "workload": label, **measurement}))


def _optimizer_catalog() -> Catalog:
    """A synthetic star-ish schema sized so rewrite wins dominate."""
    rng = random.Random(7)
    catalog = Catalog()
    catalog.create_table(
        "lineitem",
        ["id", "part_id", "supp_id", "qty", "price"],
        [
            [i, rng.randrange(0, 60), rng.randrange(0, 10), rng.randrange(0, 50), rng.randrange(1, 500)]
            for i in range(800)
        ],
    )
    catalog.create_table(
        "part",
        ["id", "name", "cat"],
        [[i, f"part{i}", f"c{i % 5}"] for i in range(60)],
    )
    catalog.create_table(
        "supp",
        ["id", "region"],
        [[i, "east" if i % 3 == 0 else "west"] for i in range(10)],
    )
    return catalog


#: Join/filter workloads where the optimizer should demonstrably win: comma
#: joins it converts to hash joins, filters it pushes below joins, and a
#: three-way region it reorders from table statistics.
OPTIMIZER_WORKLOAD = [
    (
        "comma_join_group_by",
        "SELECT p.cat, count(*) AS n FROM lineitem l, part p "
        "WHERE l.part_id = p.id AND l.qty > 40 GROUP BY p.cat",
    ),
    (
        "filter_pushdown_join",
        "SELECT l.id, l.qty FROM lineitem l JOIN part p ON l.part_id = p.id "
        "WHERE p.cat = 'c1' AND l.qty > 45",
    ),
    (
        "three_way_reorder",
        "SELECT p.cat, sum(l.qty) AS q FROM lineitem l, part p, supp s "
        "WHERE l.part_id = p.id AND l.supp_id = s.id AND s.region = 'east' "
        "GROUP BY p.cat",
    ),
]


def _measure_optimizer(repeats: int = 3):
    catalog = _optimizer_catalog()
    results = []
    for label, sql in OPTIMIZER_WORKLOAD:
        # Warm both compiled-plan cache entries so only execution is timed.
        rows_on = catalog.execute(sql, NO_CACHE).row_count
        rows_off = catalog.execute(sql, NO_CACHE_NO_OPT).row_count
        assert rows_on == rows_off

        started = time.perf_counter()
        for _ in range(repeats):
            catalog.execute(sql, NO_CACHE_NO_OPT)
        unoptimized = (time.perf_counter() - started) / repeats

        started = time.perf_counter()
        for _ in range(repeats):
            catalog.execute(sql, NO_CACHE)
        optimized = (time.perf_counter() - started) / repeats

        results.append(
            {
                "workload": label,
                "rows": rows_on,
                "unoptimized_seconds": unoptimized,
                "optimized_seconds": optimized,
                "speedup": unoptimized / optimized if optimized else 0.0,
            }
        )
    return results


def test_perf_executor_optimizer_on_vs_off(benchmark):
    """The rewrite rules must win >=2x on at least one join/filter workload."""
    results = benchmark.pedantic(_measure_optimizer, rounds=1, iterations=1)
    print_table(
        "Perf P4: logical optimizer on vs off",
        ["Workload", "Rows", "Optimizer off", "Optimizer on", "Speedup"],
        [
            [
                result["workload"],
                result["rows"],
                f"{result['unoptimized_seconds'] * 1000:.1f} ms",
                f"{result['optimized_seconds'] * 1000:.2f} ms",
                f"{result['speedup']:.1f}x",
            ]
            for result in results
        ],
    )
    for result in results:
        print(json.dumps({"benchmark": "perf_optimizer", **result}))
    best = max(result["speedup"] for result in results)
    _record_metrics(optimizer_best_speedup=best)
    assert best >= 2.0, f"expected >=2x on some workload, best was {best:.2f}x"


def test_perf_executor_covid_workload(benchmark, covid_log):
    measurement = benchmark.pedantic(
        lambda: _measure(load_covid_catalog, covid_log), rounds=1, iterations=1
    )
    _report("covid", measurement)
    # Cold throughput is a single unrepeated pass — too noisy to gate, so its
    # key avoids the gated ``_per_sec`` suffix; plan-warm is repeat-averaged.
    _record_metrics(
        covid_cold_rows_per_sec_single_shot=measurement["cold_rows_per_sec"],
        covid_plan_warm_rows_per_sec=(
            measurement["result_rows"] / measurement["plan_warm_seconds"]
            if measurement["plan_warm_seconds"]
            else 0.0
        ),
    )
    assert measurement["cache_hit_rate"] > 0
    assert measurement["cached_seconds"] < measurement["cold_seconds"]


def test_perf_executor_sdss_workload(benchmark, sdss_log):
    measurement = benchmark.pedantic(
        lambda: _measure(load_sdss_catalog, sdss_log), rounds=1, iterations=1
    )
    _report("sdss", measurement)
    _record_metrics(
        sdss_cold_rows_per_sec_single_shot=measurement["cold_rows_per_sec"],
        sdss_plan_warm_rows_per_sec=(
            measurement["result_rows"] / measurement["plan_warm_seconds"]
            if measurement["plan_warm_seconds"]
            else 0.0
        ),
    )
    assert measurement["cache_hit_rate"] > 0
    assert measurement["cached_seconds"] < measurement["cold_seconds"]


# --------------------------------------------------------------------------- #
# Scan-dominated workload (columnar storage layer)
# --------------------------------------------------------------------------- #

#: Row count of the synthetic SDSS sample the scan workload runs against.
SCAN_TABLE_ROWS = 20_000

#: Filter/aggregate-heavy queries whose cost is dominated by scanning the
#: photoobj columns: range filters, categorical filters, hash aggregation.
SCAN_WORKLOAD = [
    "SELECT ra, dec, r FROM photoobj "
    "WHERE ra BETWEEN 140.0 AND 160.0 AND dec BETWEEN -2.0 AND 6.0",
    "SELECT objid, ra, dec FROM photoobj WHERE r < 18.0",
    "SELECT class, count(*) AS n, avg(r) AS mean_r FROM photoobj GROUP BY class",
    "SELECT ra, dec FROM photoobj WHERE class = 'GALAXY' AND redshift > 0.2",
    "SELECT count(*) AS n FROM photoobj WHERE g < 20.0 AND u > 15.0",
]


def _measure_scan(repeats: int = 5, attempts: int = 3):
    catalog = Catalog()
    table = generate_photo_obj(SdssConfig(object_count=SCAN_TABLE_ROWS))
    catalog.register(table)
    for sql in SCAN_WORKLOAD:
        catalog.execute(sql, NO_CACHE)  # warm the compiled-plan cache
    # Best of several repeat-averaged attempts: this number is gated in CI,
    # so it must not wobble with scheduler noise.
    elapsed = float("inf")
    for _attempt in range(attempts):
        started = time.perf_counter()
        for _ in range(repeats):
            for sql in SCAN_WORKLOAD:
                catalog.execute(sql, NO_CACHE)
        elapsed = min(elapsed, (time.perf_counter() - started) / repeats)
    rows_scanned = SCAN_TABLE_ROWS * len(SCAN_WORKLOAD)
    return {
        "queries": len(SCAN_WORKLOAD),
        "table_rows": SCAN_TABLE_ROWS,
        "seconds_per_pass": elapsed,
        "rows_scanned_per_sec": rows_scanned / elapsed if elapsed else 0.0,
        "table_memory_bytes": table.memory_footprint(),
    }


def test_perf_executor_scan_dominated(benchmark):
    """Plan-warm throughput of the scan/filter/aggregate workload."""
    measurement = benchmark.pedantic(_measure_scan, rounds=1, iterations=1)
    print_table(
        "Perf P3: scan-dominated workload (columnar storage)",
        ["Queries", "Table rows", "Per pass", "Rows scanned/sec", "Table memory"],
        [
            [
                measurement["queries"],
                measurement["table_rows"],
                f"{measurement['seconds_per_pass'] * 1000:.1f} ms",
                f"{measurement['rows_scanned_per_sec']:,.0f}",
                f"{measurement['table_memory_bytes'] / 1024:.0f} KiB",
            ]
        ],
    )
    print(json.dumps({"benchmark": "perf_executor", "workload": "scan_dominated", **measurement}))
    _record_metrics(
        scan_rows_per_sec=measurement["rows_scanned_per_sec"],
        sdss_table_memory_bytes=float(measurement["table_memory_bytes"]),
    )
    assert measurement["rows_scanned_per_sec"] > 0


# --------------------------------------------------------------------------- #
# Index access-path workloads (point lookups and range scans)
# --------------------------------------------------------------------------- #

#: Row count of the synthetic table the index workloads probe.  Large enough
#: that a full scan visibly loses to an index probe (the acceptance bar is a
#: >=10x point-lookup win at >=100k rows).
INDEX_TABLE_ROWS = 100_000

#: Point lookups per timed pass (distinct keys, so the result cache is moot).
POINT_LOOKUP_QUERIES = 20

#: Range scans per timed pass (narrow windows over the ordered column).
RANGE_SCAN_QUERIES = 10


def _index_bench_catalog(indexed: bool) -> Catalog:
    rng = random.Random(20260807)
    catalog = Catalog()
    catalog.create_table(
        "events",
        ["id", "ts", "kind"],
        [[i, rng.randrange(1_000_000), rng.randrange(8)] for i in range(INDEX_TABLE_ROWS)],
    )
    if indexed:
        catalog.create_index("events", "id", "hash")
        catalog.create_index("events", "ts", "ordered")
    return catalog


def _time_workload(catalog: Catalog, queries: list[str], attempts: int = 3) -> float:
    """Best-of-attempts seconds for one pass over ``queries`` (plans warm)."""
    for sql in queries:
        catalog.execute(sql, NO_CACHE)
    elapsed = float("inf")
    for _attempt in range(attempts):
        started = time.perf_counter()
        for sql in queries:
            catalog.execute(sql, NO_CACHE)
        elapsed = min(elapsed, time.perf_counter() - started)
    return elapsed


def _measure_index_access():
    rng = random.Random(0xACCE55)
    point_queries = [
        f"SELECT ts FROM events WHERE id = {rng.randrange(INDEX_TABLE_ROWS)}"
        for _ in range(POINT_LOOKUP_QUERIES)
    ]
    range_queries = []
    for _ in range(RANGE_SCAN_QUERIES):
        low = rng.randrange(990_000)
        range_queries.append(
            f"SELECT id FROM events WHERE ts BETWEEN {low} AND {low + 2_000}"
        )

    indexed = _index_bench_catalog(indexed=True)
    full_scan = _index_bench_catalog(indexed=False)

    # Sanity: both access paths agree before anything is timed.
    for sql in point_queries[:3] + range_queries[:2]:
        assert (
            indexed.execute(sql, NO_CACHE).rows
            == full_scan.execute(sql, NO_CACHE).rows
        ), f"index/scan divergence on {sql}"

    point_indexed = _time_workload(indexed, point_queries)
    point_scan = _time_workload(full_scan, point_queries)
    range_indexed = _time_workload(indexed, range_queries)
    range_scan = _time_workload(full_scan, range_queries)
    return {
        "table_rows": INDEX_TABLE_ROWS,
        "point_queries": len(point_queries),
        "point_indexed_seconds": point_indexed,
        "point_scan_seconds": point_scan,
        "point_speedup": point_scan / point_indexed if point_indexed else 0.0,
        "point_queries_per_sec": (
            len(point_queries) / point_indexed if point_indexed else 0.0
        ),
        "range_queries": len(range_queries),
        "range_indexed_seconds": range_indexed,
        "range_scan_seconds": range_scan,
        "range_speedup": range_scan / range_indexed if range_indexed else 0.0,
        "range_queries_per_sec": (
            len(range_queries) / range_indexed if range_indexed else 0.0
        ),
    }


def test_perf_executor_index_access_paths(benchmark):
    """Index probes must beat full scans: >=10x on point lookups at 100k rows."""
    measurement = benchmark.pedantic(_measure_index_access, rounds=1, iterations=1)
    print_table(
        "Perf P7: index access paths vs full scans",
        ["Workload", "Queries", "Full scan", "Indexed", "Speedup", "Queries/sec"],
        [
            [
                "point lookup (hash)",
                measurement["point_queries"],
                f"{measurement['point_scan_seconds'] * 1000:.1f} ms",
                f"{measurement['point_indexed_seconds'] * 1000:.2f} ms",
                f"{measurement['point_speedup']:.1f}x",
                f"{measurement['point_queries_per_sec']:,.0f}",
            ],
            [
                "range scan (ordered)",
                measurement["range_queries"],
                f"{measurement['range_scan_seconds'] * 1000:.1f} ms",
                f"{measurement['range_indexed_seconds'] * 1000:.2f} ms",
                f"{measurement['range_speedup']:.1f}x",
                f"{measurement['range_queries_per_sec']:,.0f}",
            ],
        ],
    )
    print(json.dumps({"benchmark": "perf_index", **measurement}))
    _record_metrics(
        point_lookup_queries_per_sec=measurement["point_queries_per_sec"],
        point_lookup_speedup=measurement["point_speedup"],
        range_scan_queries_per_sec=measurement["range_queries_per_sec"],
        range_scan_speedup=measurement["range_speedup"],
    )
    assert measurement["point_speedup"] >= 10.0, (
        f"point lookups via hash index must win >=10x over a full scan at "
        f"{INDEX_TABLE_ROWS} rows; got {measurement['point_speedup']:.1f}x"
    )
    assert measurement["range_speedup"] > 1.0

# --------------------------------------------------------------------------- #
# Window-function workloads (partitioned analytics, running frames)
# --------------------------------------------------------------------------- #

#: Row count of the synthetic trades table the window workloads run over.
WINDOW_TABLE_ROWS = 20_000

#: Distinct partition keys (symbols) — enough partitions that the per-spec
#: sort and the per-partition accumulator loops both matter.
WINDOW_SYMBOLS = 40

#: Partitioned window queries: ranking, running aggregates, lag deltas, and a
#: bounded physical frame.  The two ``ORDER BY ts, id`` running-sum/row_number
#: queries share one window spec, so the executor sorts once for both.
WINDOW_WORKLOAD = [
    "SELECT id, row_number() OVER (PARTITION BY sym ORDER BY ts, id) AS rn, "
    "sum(qty) OVER (PARTITION BY sym ORDER BY ts, id) AS running FROM trades",
    "SELECT id, rank() OVER (PARTITION BY sym ORDER BY px DESC, id) AS pos FROM trades",
    "SELECT id, px - lag(px, 1, px) OVER (PARTITION BY sym ORDER BY ts, id) AS dpx "
    "FROM trades",
    "SELECT id, avg(px) OVER (PARTITION BY sym ORDER BY ts, id "
    "ROWS BETWEEN 5 PRECEDING AND CURRENT ROW) AS sma FROM trades",
    "SELECT sym, count(*) AS n, max(qty) AS peak FROM trades GROUP BY sym",
]

#: Single-column ascending window order — the shape the optimizer can serve
#: from an ordered secondary index instead of sorting.
WINDOW_ELISION_QUERY = "SELECT id, sum(qty) OVER (ORDER BY ts) AS running FROM trades"


def _window_catalog(indexed: bool = False) -> Catalog:
    rng = random.Random(0x5EED)
    catalog = Catalog()
    catalog.create_table(
        "trades",
        ["id", "sym", "ts", "px", "qty"],
        [
            [
                i,
                f"s{rng.randrange(WINDOW_SYMBOLS)}",
                rng.randrange(1_000_000),
                round(rng.uniform(1.0, 500.0), 2),
                rng.randrange(1, 1_000),
            ]
            for i in range(WINDOW_TABLE_ROWS)
        ],
    )
    if indexed:
        catalog.create_index("trades", "ts", "ordered")
    return catalog


def _measure_windows():
    catalog = _window_catalog()
    elapsed = _time_workload(catalog, WINDOW_WORKLOAD)
    rows_windowed = WINDOW_TABLE_ROWS * (len(WINDOW_WORKLOAD) - 1)  # GROUP BY query aside

    # Sort-elision lever: the same single-column ascending window order, with
    # and without an ordered secondary index to serve it.
    plain = _window_catalog(indexed=False)
    indexed = _window_catalog(indexed=True)
    assert (
        plain.execute(WINDOW_ELISION_QUERY, NO_CACHE).rows
        == indexed.execute(WINDOW_ELISION_QUERY, NO_CACHE).rows
    ), "window sort elision changed results"
    sorted_seconds = _time_workload(plain, [WINDOW_ELISION_QUERY])
    elided_seconds = _time_workload(indexed, [WINDOW_ELISION_QUERY])
    return {
        "queries": len(WINDOW_WORKLOAD),
        "table_rows": WINDOW_TABLE_ROWS,
        "seconds_per_pass": elapsed,
        "window_rows_per_sec": rows_windowed / elapsed if elapsed else 0.0,
        "elision_sorted_seconds": sorted_seconds,
        "elision_elided_seconds": elided_seconds,
        "sort_elision_speedup": (
            sorted_seconds / elided_seconds if elided_seconds else 0.0
        ),
    }


def test_perf_executor_window_functions(benchmark):
    """Plan-warm throughput of the partitioned window workload."""
    measurement = benchmark.pedantic(_measure_windows, rounds=1, iterations=1)
    print_table(
        "Perf P9: window functions (partitioned analytics)",
        ["Queries", "Table rows", "Per pass", "Windowed rows/sec", "Elision speedup"],
        [
            [
                measurement["queries"],
                measurement["table_rows"],
                f"{measurement['seconds_per_pass'] * 1000:.1f} ms",
                f"{measurement['window_rows_per_sec']:,.0f}",
                f"{measurement['sort_elision_speedup']:.2f}x",
            ]
        ],
    )
    print(json.dumps({"benchmark": "perf_window", **measurement}))
    _record_metrics(
        window_rows_per_sec=measurement["window_rows_per_sec"],
        window_sort_elision_speedup=measurement["sort_elision_speedup"],
    )
    assert measurement["window_rows_per_sec"] > 0
