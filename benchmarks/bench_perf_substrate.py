"""Perf P2 — substrate throughput: parser, engine and Difftree merge.

Sanity benchmarks for the layers PI2 sits on: SQL parsing throughput, query
execution latency on the three demo datasets, and the cost of merging the
most complex query pair of the case study (Q4 South/Northeast).  These guard
against substrate regressions that would otherwise show up as mysterious
slowdowns in the end-to-end benches.
"""

from __future__ import annotations

from conftest import print_table

from repro.difftree import build_forest, merge_nodes, parse_query_log
from repro.sql import parse, to_sql


def test_perf_parser_throughput(benchmark, covid_v3_log, sdss_log, sp500_log):
    corpus = (covid_v3_log + sdss_log + sp500_log) * 3

    def parse_corpus():
        return [parse(sql) for sql in corpus]

    asts = benchmark(parse_corpus)
    assert len(asts) == len(corpus)
    print_table(
        "Perf P2: parser corpus",
        ["queries parsed", "distinct statements"],
        [[len(corpus), len(set(corpus))]],
    )


def test_perf_printer_round_trip(benchmark, covid_v3_log):
    asts = [parse(sql) for sql in covid_v3_log]

    def round_trip():
        return [parse(to_sql(ast)) for ast in asts]

    reparsed = benchmark(round_trip)
    assert reparsed == asts


def test_perf_engine_overview_query(benchmark, covid_catalog, covid_log):
    result = benchmark(lambda: covid_catalog.execute(covid_log[0]))
    assert result.row_count > 100


def test_perf_engine_complex_query(benchmark, covid_catalog, covid_log):
    """Q4: joins plus nested correlated subqueries — the engine's worst case."""
    result = benchmark(lambda: covid_catalog.execute(covid_log[4]))
    assert result.row_count > 0


def test_perf_engine_sdss_scan(benchmark, sdss_catalog, sdss_log):
    result = benchmark(lambda: sdss_catalog.execute(sdss_log[0]))
    assert result.row_count > 0


def test_perf_difftree_merge_complex_pair(benchmark, covid_v3_log):
    south, northeast = parse_query_log(covid_v3_log[4:6])
    merged = benchmark(lambda: merge_nodes(south, northeast))
    assert merged is not None


def test_perf_forest_construction(benchmark, covid_v3_log):
    forest = benchmark(lambda: build_forest(covid_v3_log, strategy="clustered"))
    assert forest.tree_count >= 1
