"""Figure 2 — the three example queries Q1-Q3 and their static interface.

Figure 2 shows Q1-Q3 with their (simplified) ASTs and notes that a valid —
but uninteresting — interface simply renders one static chart per query.
The bench parses the queries, reports their AST sizes, and builds the static
one-chart-per-query interface.
"""

from __future__ import annotations

from conftest import print_table

from repro.datasets.loader import Catalog
from repro.interface import ChartType
from repro.pipeline import map_queries_statically
from repro.sql import count_nodes, parse_select, tree_depth

FIG2_QUERIES = [
    "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
    "SELECT p, count(*) FROM t WHERE b = 2 GROUP BY p",
    "SELECT a, count(*) FROM t GROUP BY a",
]


def toy_catalog() -> Catalog:
    catalog = Catalog()
    catalog.create_table(
        "t",
        ["p", "a", "b"],
        [[1, 1, 2], [1, 1, 3], [2, 2, 2], [2, 3, 1], [3, 1, 2], [3, 2, 2], [4, 3, 3]],
    )
    return catalog


def build_static_interface():
    catalog = toy_catalog()
    asts = [parse_select(sql) for sql in FIG2_QUERIES]
    interface = map_queries_statically(FIG2_QUERIES, catalog, name="figure2")
    return asts, interface


def test_figure2_static_interface(benchmark):
    asts, interface = benchmark.pedantic(build_static_interface, rounds=1, iterations=1)

    rows = []
    for index, (sql, ast) in enumerate(zip(FIG2_QUERIES, asts), start=1):
        vis = interface.visualizations[index - 1]
        rows.append(
            [f"Q{index}", sql, count_nodes(ast), tree_depth(ast), vis.chart_type.value]
        )
    print_table(
        "Figure 2: example queries, their ASTs, and the static one-chart-per-query interface",
        ["Query", "SQL", "AST nodes", "AST depth", "Chart"],
        rows,
    )

    # A static interface: one chart per query, no interactivity at all.
    assert interface.visualization_count == 3
    assert interface.widget_count == 0
    assert interface.interaction_count == 0
    assert all(vis.chart_type is ChartType.BAR for vis in interface.visualizations)
    # Every AST is itself a (choice-free) Difftree.
    assert interface.forest.choice_count() == 0
