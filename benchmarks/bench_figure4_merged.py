"""Figure 4 — a single Difftree covering all three queries Q1-Q3.

Merging Q1-Q3 yields one tree with an ANY in the SELECT clause (project p or
a), an OPT for the WHERE clause, and the predicate choices inside it; the
candidate interface has one chart plus widgets for each choice.  The bench
also compares this single-tree candidate against the two-cluster alternative
the paper discusses (Q1/Q2 merged, Q3 static) using the cost model.
"""

from __future__ import annotations

from conftest import print_table

from repro.cost import CostModel
from repro.difftree import build_forest, choice_contexts, covers
from repro.engine.catalog import Catalog
from repro.mapping import MappingConfig, map_forest_to_interface

FIG2_QUERIES = [
    "SELECT p, count(*) FROM t WHERE a = 1 GROUP BY p",
    "SELECT p, count(*) FROM t WHERE b = 2 GROUP BY p",
    "SELECT a, count(*) FROM t GROUP BY a",
]


def toy_catalog() -> Catalog:
    catalog = Catalog()
    catalog.create_table(
        "t",
        ["p", "a", "b"],
        [[1, 1, 2], [1, 1, 3], [2, 2, 2], [2, 3, 1], [3, 1, 2], [3, 2, 2], [4, 3, 3]],
    )
    return catalog


def build_candidates():
    catalog = toy_catalog()
    model = CostModel()

    merged_forest = build_forest(FIG2_QUERIES, strategy="merged")
    clustered_forest = build_forest(FIG2_QUERIES, strategy="clustered")

    merged_interface = map_forest_to_interface(
        merged_forest, catalog.schemas(), MappingConfig(name="fig4-merged")
    )
    clustered_interface = map_forest_to_interface(
        clustered_forest, catalog.schemas(), MappingConfig(name="fig4-clustered")
    )
    return (
        merged_forest,
        clustered_forest,
        merged_interface,
        clustered_interface,
        model.evaluate(merged_interface),
        model.evaluate(clustered_interface),
    )


def test_figure4_merged_difftree(benchmark):
    (
        merged_forest,
        clustered_forest,
        merged_interface,
        clustered_interface,
        merged_cost,
        clustered_cost,
    ) = benchmark.pedantic(build_candidates, rounds=1, iterations=1)

    contexts = choice_contexts(merged_forest.trees[0])
    rows = [
        [
            "single merged Difftree",
            merged_forest.tree_count,
            merged_interface.visualization_count,
            merged_interface.widget_count,
            round(merged_cost.total, 2),
        ],
        [
            "partitioned (Q1/Q2 merged, Q3 static)",
            clustered_forest.tree_count,
            clustered_interface.visualization_count,
            clustered_interface.widget_count,
            round(clustered_cost.total, 2),
        ],
    ]
    print_table(
        "Figure 4: one Difftree for Q1-Q3 vs the partitioned alternative",
        ["Candidate", "Trees", "Charts", "Widgets", "Cost"],
        rows,
    )
    choice_rows = [
        [c.choice_id, c.kind, c.clause, c.alternative_kind, c.target_attribute or "-"]
        for c in contexts
    ]
    print_table(
        "Figure 4: choice nodes of the merged Difftree",
        ["Choice", "Kind", "Clause", "Alternatives", "Attribute"],
        choice_rows,
    )

    # The merged tree covers all three queries with a single chart.
    assert merged_forest.tree_count == 1
    assert covers(merged_forest.trees[0], merged_forest.queries)
    assert merged_interface.visualization_count == 1
    # Figure 4's structure: an ANY in the SELECT clause and an OPT WHERE clause.
    kinds_by_clause = {(c.clause, c.kind) for c in contexts}
    assert ("select", "any") in kinds_by_clause
    assert any(clause == "where" and kind == "opt" for clause, kind in kinds_by_clause)
    # Both candidates express every input query; the cost model ranks them.
    assert clustered_forest.covers_all()
