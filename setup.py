"""Setup shim so that editable installs work without network access.

The environment has no `wheel` package and no PyPI connectivity, so the
PEP 517 build-isolation path cannot work.  Keeping a classic setup.py lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` route.
"""
from setuptools import setup

setup()
