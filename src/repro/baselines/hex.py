"""Hex-like baseline: manually parameterized queries with input widgets.

Hex (and Count) let the analyst replace literals in a query with named
parameters and attach an input widget to each parameter by hand, then pick a
chart for the result.  Re-implemented here to regenerate Table 1 and
Figure 1(b): the baseline *can* produce widgets, but

* each widget controls a single scalar parameter (it cannot change query
  structure — no toggling subqueries, no switching projection attributes),
* there are no in-visualization interactions (no brushing, no pan/zoom), and
* every parameter/widget/chart requires an explicit manual configuration step,
  which the baseline counts (the "zero effort" row of Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.engine.catalog import Catalog
from repro.engine.table import QueryResult
from repro.errors import ReproError
from repro.difftree.builder import parse_query_log
from repro.difftree.tree_schema import tree_profile
from repro.interface.visualizations import Visualization
from repro.interface.widgets import Widget, WidgetType
from repro.mapping.vis_mapping import map_tree_to_visualization
from repro.sql.ast_nodes import BetweenOp, BinaryOp, ColumnRef, Literal, Select, SqlNode
from repro.sql.printer import to_sql
from repro.sql.visitor import transform


@dataclass
class HexParameter:
    """One manually created query parameter."""

    name: str
    attribute: str
    default: Any
    widget: Widget


@dataclass
class HexInterface:
    """The artifact a Hex-style notebook produces for one parameterized query."""

    query_template: str
    parameters: list[HexParameter] = field(default_factory=list)
    visualization: Visualization | None = None
    manual_steps: int = 0

    def widget_count(self) -> int:
        return len(self.parameters)

    def interaction_count(self) -> int:
        return 0


class HexBaseline:
    """A minimal re-implementation of the Hex parameterized-query workflow.

    Capabilities (Table 1): visualizations — yes; widgets — parameter only;
    visualization interactions — none; zero effort — no (every parameter,
    widget and chart is a manual step).
    """

    capabilities = {
        "visualizations": True,
        "widgets": "parameter",
        "vis_interactions": False,
        "zero_effort": False,
    }

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    # ------------------------------------------------------------------ #
    # Manual workflow simulation
    # ------------------------------------------------------------------ #

    def parameterize(self, query: str) -> HexInterface:
        """Simulate the analyst parameterizing every comparison literal.

        Each literal compared against a column becomes a named parameter with
        a slider (numeric) or dropdown (text) — the operations the user would
        perform by hand in Hex.  The manual-step counter tallies them.
        """
        parsed = parse_query_log([query])[0]
        parameters: list[HexParameter] = []
        counter = 0

        def rewrite(node: SqlNode) -> SqlNode | None:
            nonlocal counter
            if isinstance(node, BinaryOp) and node.op in ("=", "<", "<=", ">", ">="):
                if isinstance(node.left, ColumnRef) and isinstance(node.right, Literal):
                    counter += 1
                    parameters.append(self._make_parameter(node.left.name, node.right.value, counter))
                    return None
            if isinstance(node, BetweenOp) and isinstance(node.expr, ColumnRef):
                for bound, suffix in ((node.low, "low"), (node.high, "high")):
                    if isinstance(bound, Literal):
                        counter += 1
                        parameters.append(
                            self._make_parameter(f"{node.expr.name}_{suffix}", bound.value, counter)
                        )
                return None
            return None

        transform(parsed, rewrite)

        profile = tree_profile(parsed, 0, self.catalog.schemas())
        visualization = map_tree_to_visualization(profile, vis_id="Hex1")

        # Manual steps: one per parameter created, one per widget configured,
        # plus one to pick the chart.
        manual_steps = 2 * len(parameters) + 1
        return HexInterface(
            query_template=to_sql(parsed),
            parameters=parameters,
            visualization=visualization,
            manual_steps=manual_steps,
        )

    def _make_parameter(self, attribute: str, default: Any, index: int) -> HexParameter:
        from repro.interface.widgets import ChoiceBinding

        is_numeric = isinstance(default, (int, float)) and not isinstance(default, bool)
        widget = Widget(
            widget_id=f"HexW{index}",
            widget_type=WidgetType.SLIDER if is_numeric else WidgetType.TEXT_INPUT,
            label=attribute,
            bindings=[ChoiceBinding(0, f"param_{index}")],
            domain=(default, default) if is_numeric else None,
            default=default,
        )
        return HexParameter(name=f"param_{index}", attribute=attribute, default=default, widget=widget)

    # ------------------------------------------------------------------ #
    # Execution with parameter values
    # ------------------------------------------------------------------ #

    def run(self, interface: HexInterface, values: dict[str, Any] | None = None) -> QueryResult:
        """Execute the parameterized query with explicit parameter values.

        Hex substitutes parameter values back into the SQL; we re-parse the
        template and substitute literals in the same positions.
        """
        values = values or {}
        parsed = parse_query_log([interface.query_template])[0]
        remaining = {param.name: values.get(param.name, param.default) for param in interface.parameters}
        names = list(remaining)
        counter = {"index": 0}

        def rewrite(node: SqlNode) -> SqlNode | None:
            if isinstance(node, Literal) and counter["index"] < len(names):
                # Substitution follows creation order, matching parameterize().
                name = names[counter["index"]]
                original_default = interface.parameters[counter["index"]].default
                if node.value == original_default:
                    counter["index"] += 1
                    return Literal(remaining[name])
            return None

        substituted = transform(parsed, rewrite)
        if not isinstance(substituted, Select):
            raise ReproError("Hex parameter substitution did not produce a SELECT")
        return self.catalog.execute(substituted)
