"""Re-implementations of the comparison systems of Table 1 (Lux, Hex)."""

from repro.baselines.hex import HexBaseline, HexInterface, HexParameter
from repro.baselines.lux import LuxBaseline, LuxRecommendation

__all__ = [
    "HexBaseline",
    "HexInterface",
    "HexParameter",
    "LuxBaseline",
    "LuxRecommendation",
]
