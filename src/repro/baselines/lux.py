"""Lux-like baseline: always-on static visualization recommendation.

Lux (Lee et al., VLDB) recommends a static visualization whenever a notebook
cell returns a dataframe.  Re-implemented here to regenerate Table 1 and
Figure 1(a): for each query in the log it recommends one chart over that
query's result — per query, independently, with no widgets, no interactions
and no awareness of how the queries relate to each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.difftree.builder import build_forest
from repro.difftree.tree_schema import forest_schema
from repro.engine.catalog import Catalog
from repro.engine.table import QueryResult
from repro.interface.visualizations import Visualization
from repro.mapping.vis_mapping import map_tree_to_visualization


@dataclass
class LuxRecommendation:
    """The static recommendation for one query."""

    query: str
    visualization: Visualization
    data: QueryResult | None = None


@dataclass
class LuxBaseline:
    """A minimal re-implementation of Lux's recommendation behaviour.

    Capabilities (Table 1): visualizations — yes; widgets — none;
    visualization interactions — none; zero effort — yes.
    """

    catalog: Catalog
    execute_queries: bool = True
    recommendations: list[LuxRecommendation] = field(default_factory=list)

    #: Capability flags used by the Table 1 benchmark.
    capabilities = {
        "visualizations": True,
        "widgets": "none",
        "vis_interactions": False,
        "zero_effort": True,
        "manual_steps": 0,
    }

    def recommend(self, queries: list[str]) -> list[LuxRecommendation]:
        """Produce one static chart recommendation per query."""
        forest = build_forest(queries, strategy="per_query")
        schema = forest_schema(forest, self.catalog.schemas())
        self.recommendations = []
        for index, profile in enumerate(schema.profiles):
            vis = map_tree_to_visualization(profile, vis_id=f"Lux{index + 1}")
            data = self.catalog.execute(queries[index]) if self.execute_queries else None
            self.recommendations.append(
                LuxRecommendation(query=queries[index], visualization=vis, data=data)
            )
        return self.recommendations

    # ------------------------------------------------------------------ #
    # Capability accounting (Table 1)
    # ------------------------------------------------------------------ #

    def widget_count(self) -> int:
        return 0

    def interaction_count(self) -> int:
        return 0

    def visualization_count(self) -> int:
        return len(self.recommendations)

    def supports_interactive_analysis(self) -> bool:
        """Lux renders static charts; continuing the analysis means editing SQL."""
        return False
