"""Export a notebook session (and its generated interfaces) to a .ipynb file.

The demonstration runs inside JupyterLab; this reproduction is headless, but
analyses built with :class:`~repro.notebook.session.NotebookSession` can be
exported to a standard notebook document so they can be opened in Jupyter:

* one code cell per SQL cell (as ``%%sql``-style source with the result row
  count recorded in the cell output),
* one markdown + code cell pair per generated interface version, embedding the
  Vega-Lite specification as a ``application/vnd.vegalite.v5+json`` output so
  notebook front-ends that bundle Vega render it natively.

The export is plain JSON in nbformat 4; no Jupyter installation is required.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.interface.vegalite import interface_spec
from repro.notebook.session import NotebookSession
from repro.notebook.versioning import VersionHistory

NBFORMAT_MAJOR = 4
NBFORMAT_MINOR = 5
VEGALITE_MIME = "application/vnd.vegalite.v5+json"


def _code_cell(source: str, outputs: list[dict[str, Any]] | None = None) -> dict[str, Any]:
    return {
        "cell_type": "code",
        "execution_count": None,
        "metadata": {},
        "source": source,
        "outputs": outputs or [],
    }


def _markdown_cell(source: str) -> dict[str, Any]:
    return {"cell_type": "markdown", "metadata": {}, "source": source}


def _sql_cell(cell) -> dict[str, Any]:
    outputs: list[dict[str, Any]] = []
    if cell.last_result is not None:
        preview_rows = cell.last_result.rows[:5]
        text = "\n".join(
            [
                f"{cell.last_result.row_count} rows x {len(cell.last_result.columns)} columns",
                ", ".join(cell.last_result.columns),
                *(str(row) for row in preview_rows),
            ]
        )
        outputs.append(
            {
                "output_type": "execute_result",
                "execution_count": cell.execution_count,
                "metadata": {},
                "data": {"text/plain": text},
            }
        )
    marker = "[x]" if cell.selected else "[ ]"
    source = f"%%sql  # {marker} {cell.cell_id}\n{cell.source}"
    return _code_cell(source, outputs)


def _interface_cells(version, catalog) -> list[dict[str, Any]]:
    interface = version.result.interface
    summary = version.summary()
    header = _markdown_cell(
        f"## Generated interface {version.label}\n\n"
        f"- charts: {interface.visualization_count}\n"
        f"- widgets: {interface.widget_count}\n"
        f"- visualization interactions: {interface.interaction_count}\n"
        f"- cost: {summary['cost']}\n\n"
        "Archived query log:\n\n"
        + "\n".join(f"```sql\n{sql}\n```" for sql in version.query_snapshot)
    )
    data = None
    if catalog is not None:
        state = version.result.start_session(catalog)
        data = state.refresh_all()
    spec = interface_spec(interface, data)
    vega_output = {
        "output_type": "display_data",
        "metadata": {},
        "data": {
            VEGALITE_MIME: spec,
            "text/plain": interface.describe(),
        },
    }
    code = _code_cell(
        f"# PI2-generated interface {version.label} (spec embedded as a rich output)\n"
        f"interface_{version.label.lower()}",
        [vega_output],
    )
    return [header, code]


def session_to_notebook(
    session: NotebookSession,
    history: VersionHistory | None = None,
    title: str = "PI2 analysis",
) -> dict[str, Any]:
    """Build the nbformat-4 JSON document for a session (+ optional versions)."""
    cells: list[dict[str, Any]] = [_markdown_cell(f"# {title}")]
    for cell in session.cells:
        cells.append(_sql_cell(cell))
    if history is not None:
        for version in history.versions:
            cells.extend(_interface_cells(version, session.catalog))
    return {
        "nbformat": NBFORMAT_MAJOR,
        "nbformat_minor": NBFORMAT_MINOR,
        "metadata": {
            "kernelspec": {"name": "xsql", "display_name": "SQL (xeus-sql style)", "language": "sql"},
            "pi2": {"generated_versions": len(history.versions) if history else 0},
        },
        "cells": cells,
    }


def export_notebook(
    session: NotebookSession,
    path: str | Path,
    history: VersionHistory | None = None,
    title: str = "PI2 analysis",
) -> Path:
    """Write the session (and generated interface versions) to ``path`` as .ipynb."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    document = session_to_notebook(session, history=history, title=title)
    target.write_text(json.dumps(document, indent=1, default=str), encoding="utf-8")
    return target
