"""Notebook session: cells + catalog + execution.

A :class:`NotebookSession` is the headless equivalent of a Jupyter notebook
running the xeus-sql-style kernel the paper builds on: it owns an ordered list
of SQL cells, executes them against an in-memory catalog, and exposes the
checkbox selection that feeds the PI2 extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.engine.catalog import Catalog
from repro.engine.table import QueryResult
from repro.errors import NotebookError
from repro.notebook.cell import Cell


@dataclass
class NotebookSession:
    """An ordered collection of SQL cells bound to one catalog."""

    catalog: Catalog
    cells: list[Cell] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Cell management
    # ------------------------------------------------------------------ #

    def add_cell(self, source: str, selected: bool = False) -> Cell:
        """Append a new SQL cell."""
        cell = Cell(source=source, selected=selected)
        cell.validate()
        self.cells.append(cell)
        return cell

    def add_cells(self, sources: list[str], selected: bool = False) -> list[Cell]:
        return [self.add_cell(source, selected=selected) for source in sources]

    def cell(self, cell_id: str) -> Cell:
        for cell in self.cells:
            if cell.cell_id == cell_id:
                return cell
        raise NotebookError(f"No cell {cell_id!r} in this session")

    def insert_cell(self, index: int, source: str) -> Cell:
        cell = Cell(source=source)
        cell.validate()
        self.cells.insert(index, cell)
        return cell

    def remove_cell(self, cell_id: str) -> None:
        cell = self.cell(cell_id)
        self.cells.remove(cell)

    def edit_cell(self, cell_id: str, new_source: str) -> Cell:
        cell = self.cell(cell_id)
        cell.edit(new_source)
        return cell

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run_cell(self, cell_id: str) -> QueryResult:
        """Execute one cell against the catalog (the notebook's Run button)."""
        cell = self.cell(cell_id)
        result = self.catalog.execute(cell.source)
        cell.mark_executed(result)
        return result

    def run_all(self) -> list[QueryResult]:
        return [self.run_cell(cell.cell_id) for cell in self.cells]

    # ------------------------------------------------------------------ #
    # Selection (the per-cell checkboxes)
    # ------------------------------------------------------------------ #

    def select_cells(self, cell_ids: list[str]) -> None:
        """Tick exactly the given cells' checkboxes."""
        wanted = set(cell_ids)
        unknown = wanted - {cell.cell_id for cell in self.cells}
        if unknown:
            raise NotebookError(f"Unknown cells: {sorted(unknown)}")
        for cell in self.cells:
            cell.select(cell.cell_id in wanted)

    def select_all(self) -> None:
        for cell in self.cells:
            cell.select(True)

    def selected_cells(self) -> list[Cell]:
        return [cell for cell in self.cells if cell.selected]

    def selected_queries(self) -> list[str]:
        """The query log: sources of the checked cells, in notebook order."""
        return [cell.source for cell in self.selected_cells()]

    def snapshot(self) -> list[dict]:
        """Snapshot of every cell (stored with each interface version)."""
        return [cell.snapshot() for cell in self.cells]
