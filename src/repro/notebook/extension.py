"""The PI2 notebook extension facade.

This is the headless counterpart of the JupyterLab extension in Figure 7: it
sits next to a :class:`~repro.notebook.session.NotebookSession`, watches which
cells are checked, and on :meth:`Pi2Extension.generate_interface` runs the
full pipeline, records the result as a new interface version (with a snapshot
of the query log for reproducibility), and can render the active version to a
standalone HTML document — the stand-in for the "Generated Interfaces" panel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import NotebookError
from repro.interface.html import save_interface_html
from repro.interface.state import InterfaceState
from repro.notebook.session import NotebookSession
from repro.notebook.versioning import InterfaceVersion, VersionHistory
from repro.pipeline import GenerationResult, PipelineConfig, generate_interface


@dataclass
class Pi2Extension:
    """The PI2 side panel attached to a notebook session."""

    session: NotebookSession
    config: PipelineConfig = field(default_factory=PipelineConfig)
    history: VersionHistory = field(default_factory=VersionHistory)

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #

    def generate_interface(
        self, cell_ids: list[str] | None = None, config: PipelineConfig | None = None
    ) -> InterfaceVersion:
        """The "Generate Interface" button.

        Uses the checked cells (or an explicit cell list), snapshots their SQL,
        runs the generation pipeline and appends the result as a new version.
        """
        if cell_ids is not None:
            self.session.select_cells(cell_ids)
        queries = self.session.selected_queries()
        if not queries:
            raise NotebookError(
                "No cells are selected; tick at least one cell's checkbox before generating"
            )
        effective_config = config or self.config
        result: GenerationResult = generate_interface(
            queries, self.session.catalog, effective_config
        )
        return self.history.add(
            result, query_snapshot=queries, cell_snapshot=self.session.snapshot()
        )

    # ------------------------------------------------------------------ #
    # Versions panel
    # ------------------------------------------------------------------ #

    @property
    def active_version(self) -> InterfaceVersion:
        return self.history.active

    def switch_version(self, label: str) -> InterfaceVersion:
        return self.history.switch_to(label)

    def revert_to_version(self, label: str) -> InterfaceVersion:
        return self.history.revert_to(label)

    def version_summaries(self) -> list[dict]:
        return [version.summary() for version in self.history.versions]

    def query_log(self, label: str | None = None) -> list[str]:
        """The archived query log of a version (the collapsible section)."""
        version = self.history.get(label) if label else self.history.active
        return list(version.query_snapshot)

    # ------------------------------------------------------------------ #
    # Live interaction and rendering
    # ------------------------------------------------------------------ #

    def start_session(self, label: str | None = None) -> InterfaceState:
        """Attach the active (or named) version's interface to the catalog."""
        version = self.history.get(label) if label else self.history.active
        return version.result.start_session(self.session.catalog)

    def render_html(self, path: str | Path, label: str | None = None) -> Path:
        """Render a version's interface (with live data) to a standalone HTML file."""
        version = self.history.get(label) if label else self.history.active
        state = version.result.start_session(self.session.catalog)
        data = state.refresh_all()
        return save_interface_html(
            version.result.interface,
            path,
            data=data,
            title=f"PI2 {version.label}: {version.result.interface.name}",
        )
