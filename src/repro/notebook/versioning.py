"""Interface version history.

"To adapt to edits and ensure reproducibility, our integration tracks
interface versions in the version tabs at the top of the Generated Interfaces
panel and archives the input query logs in the Query Log collapsible section
for each version" (Section 3.1).  Each :class:`InterfaceVersion` therefore
snapshots the exact query texts used for generation; the history supports
reverting to (or forking from) any previous version.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

from repro.errors import NotebookError
from repro.pipeline import GenerationResult

_VERSION_COUNTER = itertools.count(1)


@dataclass
class InterfaceVersion:
    """One generated interface plus the query-log snapshot that produced it."""

    version_id: str
    label: str
    query_snapshot: list[str]
    cell_snapshot: list[dict[str, Any]]
    result: GenerationResult
    parent_version: str | None = None

    def summary(self) -> dict[str, Any]:
        return {
            "version": self.label,
            "queries": list(self.query_snapshot),
            "visualizations": self.result.interface.visualization_count,
            "widgets": self.result.interface.widget_count,
            "interactions": self.result.interface.interaction_count,
            "cost": round(self.result.total_cost, 3),
            "parent": self.parent_version,
        }


class VersionHistory:
    """Ordered history of generated interface versions (the version tabs)."""

    def __init__(self) -> None:
        self._versions: list[InterfaceVersion] = []
        self._active_index: int | None = None

    def add(
        self,
        result: GenerationResult,
        query_snapshot: list[str],
        cell_snapshot: list[dict[str, Any]] | None = None,
    ) -> InterfaceVersion:
        """Record a newly generated interface as the next version."""
        number = next(_VERSION_COUNTER)
        parent = self.active.version_id if self._versions and self._active_index is not None else None
        version = InterfaceVersion(
            version_id=f"v{number}",
            label=f"V{len(self._versions) + 1}",
            query_snapshot=list(query_snapshot),
            cell_snapshot=list(cell_snapshot or []),
            result=result,
            parent_version=parent,
        )
        self._versions.append(version)
        self._active_index = len(self._versions) - 1
        return version

    # ------------------------------------------------------------------ #
    # Navigation
    # ------------------------------------------------------------------ #

    @property
    def versions(self) -> list[InterfaceVersion]:
        return list(self._versions)

    @property
    def active(self) -> InterfaceVersion:
        if self._active_index is None or not self._versions:
            raise NotebookError("No interface has been generated yet")
        return self._versions[self._active_index]

    def __len__(self) -> int:
        return len(self._versions)

    def get(self, label: str) -> InterfaceVersion:
        for version in self._versions:
            if version.label == label or version.version_id == label:
                return version
        raise NotebookError(f"No interface version {label!r}")

    def switch_to(self, label: str) -> InterfaceVersion:
        """Activate a previous version (the user clicks its tab)."""
        version = self.get(label)
        self._active_index = self._versions.index(version)
        return version

    def revert_to(self, label: str) -> InterfaceVersion:
        """Fully revert: drop every version generated after ``label``."""
        version = self.get(label)
        index = self._versions.index(version)
        self._versions = self._versions[: index + 1]
        self._active_index = index
        return version
