"""Notebook cell model.

The JupyterLab integration adds a checkbox next to each SQL cell; checked
cells form the query log used for interface generation.  This module models
cells headlessly: a cell holds SQL source, can be executed against the
session's catalog, and tracks whether it is selected for generation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.engine.table import QueryResult
from repro.errors import NotebookError

_CELL_COUNTER = itertools.count(1)


@dataclass
class Cell:
    """One notebook cell containing a SQL query."""

    source: str
    cell_id: str = field(default_factory=lambda: f"cell_{next(_CELL_COUNTER)}")
    selected: bool = False
    execution_count: int = 0
    last_result: QueryResult | None = None
    history: list[str] = field(default_factory=list)

    def edit(self, new_source: str) -> None:
        """Replace the cell's source, archiving the previous version."""
        if new_source.strip() == self.source.strip():
            return
        self.history.append(self.source)
        self.source = new_source

    def select(self, selected: bool = True) -> None:
        """Tick / untick the cell's generation checkbox."""
        self.selected = selected

    def toggle(self) -> bool:
        self.selected = not self.selected
        return self.selected

    def mark_executed(self, result: QueryResult) -> None:
        self.execution_count += 1
        self.last_result = result

    @property
    def has_been_executed(self) -> bool:
        return self.execution_count > 0

    def snapshot(self) -> dict[str, Any]:
        """An immutable description of the cell (used by interface versions)."""
        return {
            "cell_id": self.cell_id,
            "source": self.source,
            "selected": self.selected,
            "execution_count": self.execution_count,
        }

    def validate(self) -> None:
        if not self.source.strip():
            raise NotebookError(f"Cell {self.cell_id} is empty")
