"""Headless notebook integration: cells, sessions, versioning, the PI2 extension."""

from repro.notebook.cell import Cell
from repro.notebook.export import export_notebook, session_to_notebook
from repro.notebook.extension import Pi2Extension
from repro.notebook.session import NotebookSession
from repro.notebook.versioning import InterfaceVersion, VersionHistory

__all__ = [
    "Cell",
    "export_notebook",
    "session_to_notebook",
    "Pi2Extension",
    "NotebookSession",
    "InterfaceVersion",
    "VersionHistory",
]
