"""Exception hierarchy shared by every repro subsystem.

Each layer of the library raises a subclass of :class:`ReproError` so that
callers can catch either a precise error (``SqlParseError``) or anything the
library raises (``ReproError``) without ever needing a bare ``except``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SqlError(ReproError):
    """Base class for errors raised by the SQL front-end (``repro.sql``)."""


class SqlLexError(SqlError):
    """Raised when the lexer encounters a character sequence it cannot tokenize."""

    def __init__(self, message: str, position: int, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position
        self.line = line
        self.column = column


class SqlParseError(SqlError):
    """Raised when the parser cannot build an AST from the token stream."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None) -> None:
        location = ""
        if line is not None:
            location = f" (line {line}, column {column})"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SqlAnalysisError(SqlError):
    """Raised when semantic analysis fails (unknown column, ambiguous name, ...)."""


class EngineError(ReproError):
    """Base class for errors raised by the execution engine (``repro.engine``)."""


class CatalogError(EngineError):
    """Raised for unknown or duplicate tables/columns in the catalog."""


class ExecutionError(EngineError):
    """Raised when a query cannot be executed (type mismatch, bad aggregate, ...)."""


class QueryTimeoutError(ExecutionError):
    """A query overran its deadline and was cancelled at an executor checkpoint.

    Raised cooperatively: the physical operators check the deadline between
    operators/batches, so a runaway query gives its worker back instead of
    holding it hostage.  The query did *not* produce a result — partial work
    is discarded, never cached.
    """


class DifftreeError(ReproError):
    """Base class for errors raised while building or transforming Difftrees."""


class MergeError(DifftreeError):
    """Raised when a set of query ASTs cannot be merged into one Difftree."""


class TransformationError(DifftreeError):
    """Raised when a tree transformation rule is applied to an incompatible node."""


class BindingError(DifftreeError):
    """Raised when a choice-node binding cannot instantiate a concrete query."""


class InterfaceError(ReproError):
    """Base class for errors raised by the interface model (``repro.interface``)."""


class MappingError(ReproError):
    """Raised when Difftrees cannot be mapped onto an interface."""


class LayoutError(InterfaceError):
    """Raised when an interface cannot be laid out within the screen constraints."""


class SearchError(ReproError):
    """Raised by the search layer (MCTS / greedy / exhaustive)."""


class NotebookError(ReproError):
    """Raised by the notebook-session integration layer."""


class DatasetError(ReproError):
    """Raised when a synthetic dataset cannot be generated or loaded."""


class ServingError(ReproError):
    """Base class for errors raised by the serving layer (``repro.serving``)."""


class AdmissionError(ServingError):
    """Raised when admission control rejects a session or a submitted task."""


class OverloadError(AdmissionError):
    """Load shedding rejected heavy work before it could starve light reads.

    A subclass of :class:`AdmissionError` so existing backpressure handling
    (the load generator, callers retrying after a rejection) treats shedding
    exactly like an admission rejection.
    """


class WorkerError(ServingError):
    """A process-tier worker failed (task error, dead worker, bad handshake)."""


class DeadlineExceededError(ServingError):
    """A task's deadline elapsed before it produced a result.

    Raised caller-side (a bounded wait on a task future ran out, or a queued
    task was dropped before execution because its deadline had already
    passed).  Unlike :class:`WorkerError` this says nothing about worker
    health: the task may still complete behind the caller's back, and the
    worker must not be treated as failed.
    """


class SessionError(ServingError):
    """Raised for unknown, closed or misused serving sessions."""
