"""End-to-end interface generation: the public entry point of the library.

:func:`generate_interface` runs the four-step PI2 pipeline of Figure 6:

1. parse the query log into Difftrees (initial forest),
2. map Difftrees to a candidate interface,
3. evaluate the candidate with the cost model,
4. search over tree transformations (MCTS by default) for the lowest-cost
   interface that expresses every query,

and returns a :class:`GenerationResult` bundling the interface, its cost
breakdown, the final forest and search statistics.  The result can be made
*live* against a catalog with :meth:`GenerationResult.start_session`, which
returns an :class:`~repro.interface.state.InterfaceState` whose widget and
interaction events re-instantiate and re-execute the underlying queries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.cost.model import CostBreakdown, CostModel, CostWeights
from repro.difftree.builder import DifftreeForest
from repro.engine.catalog import Catalog
from repro.errors import ReproError
from repro.interface.interface import Interface
from repro.interface.layout import MEDIUM_SCREEN, ScreenSize
from repro.interface.state import InterfaceState
from repro.mapping.interaction_mapping import MappingPolicy
from repro.mapping.schema_matching import MappingConfig, map_forest_to_interface
from repro.search.beam import beam_search
from repro.search.exhaustive import exhaustive_search
from repro.search.greedy import greedy_search
from repro.search.mcts import mcts_search
from repro.search.space import SearchSpace, SearchStats


@dataclass
class PipelineConfig:
    """Configuration of the end-to-end generation pipeline."""

    screen: ScreenSize = MEDIUM_SCREEN
    method: str = "mcts"  # "mcts" | "greedy" | "beam" | "exhaustive" | "none"
    mcts_iterations: int = 60
    mcts_rollout_depth: int = 2
    mcts_max_depth: int = 6
    exhaustive_depth: int = 3
    exhaustive_max_states: int = 300
    greedy_max_steps: int = 12
    beam_width: int = 4
    beam_depth: int = 8
    seed: int = 0
    cost_weights: CostWeights = field(default_factory=CostWeights)
    mapping_policy: MappingPolicy = field(default_factory=MappingPolicy)
    initial_strategy: str = "per_query"
    name: str = "interface"
    #: Execute each candidate's default queries against the catalog during
    #: search (through the canonical-query result cache), yielding real data
    #: profiles for the evaluated interfaces.
    profile_data: bool = True


@dataclass
class GenerationResult:
    """Everything the pipeline produces for one invocation."""

    interface: Interface
    cost: CostBreakdown
    forest: DifftreeForest
    stats: SearchStats
    strategy: str
    elapsed_seconds: float
    action_trace: list[str] = field(default_factory=list)

    @property
    def total_cost(self) -> float:
        return self.cost.total

    def start_session(self, catalog: Catalog) -> InterfaceState:
        """Attach the generated interface to a catalog for live interaction."""
        return InterfaceState(self.interface, catalog)

    def summary(self) -> dict:
        return {
            "strategy": self.strategy,
            "total_cost": round(self.total_cost, 3),
            "cost": {key: round(value, 3) for key, value in self.cost.as_dict().items()},
            "visualizations": self.interface.visualization_count,
            "widgets": self.interface.widget_count,
            "interactions": self.interface.interaction_count,
            "trees": self.forest.tree_count,
            "candidates_evaluated": self.stats.evaluations,
            "evaluation_cache_hits": self.stats.cache_hits,
            "queries_executed": self.stats.queries_executed,
            "query_cache_hits": self.stats.query_cache_hits,
            "profile_cache_hits": self.stats.profile_cache_hits,
            "tree_evals_reused": self.stats.tree_evals_reused,
            "tree_evals_computed": self.stats.tree_evals_computed,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "actions": list(self.action_trace),
        }


def generate_interface(
    queries: Sequence[str],
    catalog: Catalog,
    config: PipelineConfig | None = None,
    profile_executor=None,
) -> GenerationResult:
    """Generate an interactive visualization interface from a SQL query log.

    Args:
        queries: The selected notebook queries (SQL strings), in log order.
        catalog: The catalog the queries run against (schemas drive the
            visualization mapping; data cardinalities inform the cost model).
            May be a pinned :class:`~repro.engine.catalog.CatalogSnapshot` —
            the serving layer passes one so a whole generation run reads a
            single consistent data version while writers keep ingesting.
        config: Pipeline configuration; defaults to MCTS search on a
            medium-sized screen.
        profile_executor: optional ``concurrent.futures`` executor the search
            fans per-tree data profiling out on (must not be the pool this
            call itself runs on — see :class:`~repro.search.space.SearchSpace`).
    """
    if not queries:
        raise ReproError("generate_interface requires at least one query")
    config = config or PipelineConfig()
    started = time.perf_counter()

    table_schemas = catalog.schemas()
    nominal_cardinalities = _nominal_cardinalities(catalog)
    cost_model = CostModel(
        weights=config.cost_weights, nominal_cardinalities=nominal_cardinalities
    )
    mapping_config = MappingConfig(
        screen=config.screen, policy=config.mapping_policy, name=config.name
    )
    space = SearchSpace(
        queries=list(queries),
        table_schemas=table_schemas,
        mapping_config=mapping_config,
        cost_model=cost_model,
        initial_strategy=config.initial_strategy,
        catalog=catalog if config.profile_data else None,
        profile_executor=profile_executor if config.profile_data else None,
    )

    if config.method == "mcts":
        result = mcts_search(
            space,
            iterations=config.mcts_iterations,
            rollout_depth=config.mcts_rollout_depth,
            max_depth=config.mcts_max_depth,
            seed=config.seed,
        )
    elif config.method == "greedy":
        result = greedy_search(space, max_steps=config.greedy_max_steps)
    elif config.method == "beam":
        result = beam_search(space, width=config.beam_width, max_depth=config.beam_depth)
    elif config.method == "exhaustive":
        result = exhaustive_search(
            space, max_depth=config.exhaustive_depth, max_states=config.exhaustive_max_states
        )
    elif config.method == "none":
        result = space.result(space.initial_state, strategy="none")
    else:
        raise ReproError(f"Unknown search method {config.method!r}")

    elapsed = time.perf_counter() - started
    return GenerationResult(
        interface=result.interface,
        cost=result.cost,
        forest=result.forest,
        stats=result.stats,
        strategy=result.strategy,
        elapsed_seconds=elapsed,
        action_trace=result.action_trace,
    )


def map_queries_statically(
    queries: Sequence[str],
    catalog: Catalog,
    screen: ScreenSize = MEDIUM_SCREEN,
    name: str = "static",
) -> Interface:
    """One static chart per query, no widgets or interactions (Figure 2).

    This is the degenerate interface a notebook without PI2 would show; the
    Figure 2 benchmark and the baseline comparisons use it.
    """
    from repro.difftree.builder import build_forest

    forest = build_forest(list(queries), strategy="per_query")
    return map_forest_to_interface(
        forest, catalog.schemas(), MappingConfig(screen=screen, name=name)
    )


def _nominal_cardinalities(catalog: Catalog) -> dict[str, int]:
    """Distinct counts of every text-like column, for the noisy-color cost term."""
    cardinalities: dict[str, int] = {}
    for table_name in catalog.table_names():
        table = catalog.table(table_name)
        schema = table.schema()
        for column in schema.columns:
            if column.data_type.value in ("text", "boolean"):
                count = len(table.distinct_values(column.name))
                existing = cardinalities.get(column.name, 0)
                cardinalities[column.name] = max(existing, count)
    return cardinalities
