"""Layout mapping L: Difftree structures + screen size → layouts.

A thin policy layer over the layout engine: it orders charts (overview charts
before detail charts, matching the walkthrough's G1/G2/G3 ordering), sizes
them according to how many need to share the screen, and delegates the actual
packing to :func:`repro.interface.layout.compute_layout`.
"""

from __future__ import annotations

from repro.difftree.tree_schema import ForestSchema
from repro.interface.layout import Layout, ScreenSize, compute_layout
from repro.interface.visualizations import Visualization
from repro.interface.widgets import Widget


def order_visualizations(
    visualizations: list[Visualization], schema: ForestSchema
) -> list[Visualization]:
    """Order charts for display: unfiltered overview charts first.

    The COVID walkthrough lays the overall timeline (G1) before the detail and
    breakdown views; we approximate "overview-ness" by the absence of filter
    columns in the chart's underlying query.
    """
    def sort_key(vis: Visualization) -> tuple:
        profile = schema.profiles[vis.tree_index]
        filter_count = len(profile.query_profile.filter_columns)
        choice_count = len(profile.choices)
        return (filter_count, choice_count, vis.tree_index)

    return sorted(visualizations, key=sort_key)


def size_visualizations(
    visualizations: list[Visualization], screen: ScreenSize
) -> list[Visualization]:
    """Shrink preferred chart sizes when many charts must share a small screen."""
    if len(visualizations) <= 2 or screen.width >= 1400:
        return visualizations
    scale = 0.8 if len(visualizations) <= 4 else 0.65
    for vis in visualizations:
        vis.width = int(vis.width * scale)
        vis.height = int(vis.height * scale)
    return visualizations


def map_layout(
    visualizations: list[Visualization],
    widgets: list[Widget],
    schema: ForestSchema,
    screen: ScreenSize,
) -> tuple[list[Visualization], Layout]:
    """Order + size the charts and compute the final layout."""
    ordered = order_visualizations(visualizations, schema)
    sized = size_visualizations(ordered, screen)
    layout = compute_layout(sized, widgets, screen)
    return sized, layout
