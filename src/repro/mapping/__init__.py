"""Interface mapping: V (visualizations), M (interactions), L (layout)."""

from repro.mapping.attributes import (
    find_own_vis,
    find_vis_displaying,
    group_linked_choices,
    humanize,
    literal_domain,
    option_labels,
    widget_label,
)
from repro.mapping.interaction_mapping import (
    InteractionMapper,
    InteractionMappingResult,
    MappingPolicy,
    compose_interaction_mapping,
)
from repro.mapping.layout_mapping import map_layout, order_visualizations, size_visualizations
from repro.mapping.schema_matching import MappingCaches, MappingConfig, map_forest_to_interface
from repro.mapping.vis_mapping import map_forest_to_visualizations, map_tree_to_visualization

__all__ = [
    "find_own_vis",
    "find_vis_displaying",
    "group_linked_choices",
    "humanize",
    "literal_domain",
    "option_labels",
    "widget_label",
    "InteractionMapper",
    "InteractionMappingResult",
    "MappingPolicy",
    "compose_interaction_mapping",
    "map_layout",
    "order_visualizations",
    "size_visualizations",
    "MappingCaches",
    "MappingConfig",
    "map_forest_to_interface",
    "map_forest_to_visualizations",
    "map_tree_to_visualization",
]
