"""Interaction mapping M: choice nodes → widgets and visualization interactions.

This is where PI2 departs from parameter-widget tools: a choice node may map
either to a widget *or* to an interaction performed directly on a chart, and
the chart need not belong to the same Difftree (linked views).  The rules, in
order of preference, mirror the behaviours described in the paper:

1.  A (low, high) range pair over an attribute shown on another chart's x axis
    maps to a **brush** on that chart that reconfigures this tree's query
    (COVID walkthrough: brushing G1 drives G2/G3's date range).
2.  Two range pairs over the attributes shown on this tree's own scatter axes
    map to **pan/zoom** on that chart (SDSS ra/dec example, Figure 1c).
3.  A single range pair otherwise maps to a **range slider** (dates get a
    date-range widget).
4.  A literal choice whose attribute is plotted on *another* chart maps to a
    **click-to-select** interaction on that chart (Figure 5's multi-view bar
    click).
5.  Remaining literal/column/select-item/predicate choices map to discrete
    widgets sized by cardinality (button group / radio / dropdown), OPT
    choices map to toggles, and choices over whole queries map to tabs.

Choices with identical attribute and alternative values are *linked*: one
widget drives all of them (the region literal repeated in three places of the
COVID Q4 query becomes a single South/Northeast button pair).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.difftree.builder import DifftreeForest
from repro.difftree.tree_schema import ChoiceContext, ForestSchema, TreeProfile
from repro.interface.interactions import InteractionType, VisInteraction
from repro.interface.visualizations import Channel, ChartType, Visualization
from repro.interface.widgets import ChoiceBinding, Widget, WidgetType, default_widget_for_cardinality
from repro.mapping.attributes import (
    find_own_vis,
    find_vis_displaying,
    group_linked_choices,
    literal_domain,
    option_labels,
    widget_label,
)


@dataclass
class MappingPolicy:
    """Tunable preferences of the interaction mapper (used by ablations)."""

    prefer_vis_interactions: bool = True
    allow_pan_zoom: bool = True
    allow_click_select: bool = True
    slider_min_options: int = 6
    dropdown_min_options: int = 6


@dataclass
class InteractionMappingResult:
    """The M mapping: widgets plus visualization interactions."""

    widgets: list[Widget] = field(default_factory=list)
    interactions: list[VisInteraction] = field(default_factory=list)


def compose_interaction_mapping(
    pieces: list[InteractionMappingResult],
) -> InteractionMappingResult:
    """Recompose per-tree mapping pieces into one forest-level mapping.

    Widget and interaction ids are renumbered globally in piece order
    (``W1..``, ``I1..``), reproducing exactly the numbering a monolithic
    mapping pass over the same trees would assign.  Components are shallow-
    copied so cached pieces are never aliased into a live interface.
    """
    from dataclasses import replace

    result = InteractionMappingResult()
    widget_count = 0
    interaction_count = 0
    for piece in pieces:
        for widget in piece.widgets:
            widget_count += 1
            result.widgets.append(replace(widget, widget_id=f"W{widget_count}"))
        for interaction in piece.interactions:
            interaction_count += 1
            result.interactions.append(
                replace(interaction, interaction_id=f"I{interaction_count}")
            )
    return result


class InteractionMapper:
    """Maps every choice node of a forest to a widget or a vis interaction."""

    def __init__(self, policy: MappingPolicy | None = None) -> None:
        self.policy = policy or MappingPolicy()
        self._widget_counter = 0
        self._interaction_counter = 0

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def map_forest(
        self,
        forest: DifftreeForest,
        schema: ForestSchema,
        visualizations: list[Visualization],
    ) -> InteractionMappingResult:
        pieces = [
            self.map_tree_piece(profile, forest, visualizations) for profile in schema.profiles
        ]
        return compose_interaction_mapping(pieces)

    def map_tree_piece(
        self,
        profile: TreeProfile,
        forest: DifftreeForest,
        visualizations: list[Visualization],
    ) -> InteractionMappingResult:
        """Map one tree's choices in isolation, with locally-numbered ids.

        The mapping decisions depend on the tree's profile and on the *shapes*
        of all charts (linked brushes and click-selects target other trees'
        charts), but never on the id counters — so per-tree pieces can be
        cached and recomposed with :func:`compose_interaction_mapping`, which
        renumbers ids exactly as a monolithic ``map_forest`` run would.
        """
        result = InteractionMappingResult()
        saved = (self._widget_counter, self._interaction_counter)
        self._widget_counter = 0
        self._interaction_counter = 0
        try:
            self._map_tree(profile, forest, visualizations, result)
        finally:
            self._widget_counter, self._interaction_counter = saved
        return result

    # ------------------------------------------------------------------ #
    # Per-tree mapping
    # ------------------------------------------------------------------ #

    def _map_tree(
        self,
        profile: TreeProfile,
        forest: DifftreeForest,
        visualizations: list[Visualization],
        result: InteractionMappingResult,
    ) -> None:
        tree_index = profile.tree_index
        tree = forest.trees[tree_index]
        handled: set[str] = set()

        # 1./2./3. range pairs first (they consume two choices each).
        range_pairs = profile.range_pairs()
        pan_zoom_pairs: list[tuple[ChoiceContext, ChoiceContext]] = []
        for low, high in range_pairs:
            if low.choice_id in handled or high.choice_id in handled:
                continue
            own_vis = find_own_vis(visualizations, tree_index)
            attribute = low.target_attribute or ""
            other_vis = (
                find_vis_displaying(visualizations, attribute, exclude_tree=tree_index)
                if self.policy.prefer_vis_interactions and attribute
                else None
            )
            if other_vis is not None:
                # Brush on the other chart, reconfiguring this tree's query.
                self._add_brush(result, other_vis, own_vis, low, high, tree_index)
                handled.update((low.choice_id, high.choice_id))
            elif (
                self.policy.allow_pan_zoom
                and own_vis is not None
                and own_vis.chart_type is ChartType.SCATTER
                and attribute in (own_vis.field_for(Channel.X), own_vis.field_for(Channel.Y))
            ):
                pan_zoom_pairs.append((low, high))
                handled.update((low.choice_id, high.choice_id))
            else:
                self._add_range_widget(result, low, high, tree_index)
                handled.update((low.choice_id, high.choice_id))

        if pan_zoom_pairs:
            self._add_pan_zoom(result, visualizations, pan_zoom_pairs, tree_index)

        # 4./5. remaining choices, linked by (attribute, values).
        remaining = [context for context in profile.choices if context.choice_id not in handled]
        for group in group_linked_choices(remaining):
            representative = group[0]
            if representative.choice_id in handled:
                continue
            bindings = [ChoiceBinding(tree_index, context.choice_id) for context in group]
            mapped = False
            if (
                self.policy.allow_click_select
                and representative.literal_values
                and representative.target_attribute
                and representative.comparison_op in ("=", "in")
            ):
                other_vis = find_vis_displaying(
                    visualizations, representative.target_attribute, exclude_tree=tree_index
                )
                if other_vis is not None:
                    own_vis = find_own_vis(visualizations, tree_index)
                    self._add_click_select(result, other_vis, own_vis, representative, bindings)
                    mapped = True
            if not mapped:
                self._add_widget_for_group(result, tree, representative, bindings)
            handled.update(context.choice_id for context in group)

    # ------------------------------------------------------------------ #
    # Component constructors
    # ------------------------------------------------------------------ #

    def _next_widget_id(self) -> str:
        self._widget_counter += 1
        return f"W{self._widget_counter}"

    def _next_interaction_id(self) -> str:
        self._interaction_counter += 1
        return f"I{self._interaction_counter}"

    def _add_brush(
        self,
        result: InteractionMappingResult,
        source_vis: Visualization,
        target_vis: Visualization | None,
        low: ChoiceContext,
        high: ChoiceContext,
        tree_index: int,
    ) -> None:
        interaction = VisInteraction(
            interaction_id=self._next_interaction_id(),
            interaction_type=InteractionType.BRUSH_X,
            source_vis_id=source_vis.vis_id,
            attribute=low.target_attribute or "",
            bindings=[
                ChoiceBinding(tree_index, low.choice_id),
                ChoiceBinding(tree_index, high.choice_id),
            ],
            target_vis_ids=[target_vis.vis_id] if target_vis else [],
        )
        result.interactions.append(interaction)

    def _add_pan_zoom(
        self,
        result: InteractionMappingResult,
        visualizations: list[Visualization],
        pairs: list[tuple[ChoiceContext, ChoiceContext]],
        tree_index: int,
    ) -> None:
        own_vis = find_own_vis(visualizations, tree_index)
        assert own_vis is not None
        # Order the pairs so x comes before y, matching the chart's axes.
        x_field = own_vis.field_for(Channel.X)
        ordered = sorted(
            pairs, key=lambda pair: 0 if pair[0].target_attribute == x_field else 1
        )
        bindings: list[ChoiceBinding] = []
        for low, high in ordered:
            bindings.append(ChoiceBinding(tree_index, low.choice_id))
            bindings.append(ChoiceBinding(tree_index, high.choice_id))
        primary = ordered[0][0].target_attribute or ""
        secondary = ordered[1][0].target_attribute if len(ordered) > 1 else None
        result.interactions.append(
            VisInteraction(
                interaction_id=self._next_interaction_id(),
                interaction_type=InteractionType.PAN_ZOOM,
                source_vis_id=own_vis.vis_id,
                attribute=primary,
                secondary_attribute=secondary,
                bindings=bindings,
                target_vis_ids=[own_vis.vis_id],
            )
        )

    def _add_click_select(
        self,
        result: InteractionMappingResult,
        source_vis: Visualization,
        target_vis: Visualization | None,
        context: ChoiceContext,
        bindings: list[ChoiceBinding],
    ) -> None:
        result.interactions.append(
            VisInteraction(
                interaction_id=self._next_interaction_id(),
                interaction_type=InteractionType.CLICK_SELECT,
                source_vis_id=source_vis.vis_id,
                attribute=context.target_attribute or "",
                bindings=bindings,
                target_vis_ids=[target_vis.vis_id] if target_vis else [],
            )
        )

    def _add_range_widget(
        self,
        result: InteractionMappingResult,
        low: ChoiceContext,
        high: ChoiceContext,
        tree_index: int,
    ) -> None:
        values = list(low.literal_values) + list(high.literal_values)
        domain = literal_domain(values) or (0, 1)
        is_date = all(isinstance(value, str) for value in values if value is not None)
        widget_type = WidgetType.DATE_RANGE if is_date else WidgetType.RANGE_SLIDER
        result.widgets.append(
            Widget(
                widget_id=self._next_widget_id(),
                widget_type=widget_type,
                label=widget_label(low),
                bindings=[
                    ChoiceBinding(tree_index, low.choice_id),
                    ChoiceBinding(tree_index, high.choice_id),
                ],
                domain=domain,
                default=domain,
            )
        )

    def _add_widget_for_group(
        self,
        result: InteractionMappingResult,
        tree,
        context: ChoiceContext,
        bindings: list[ChoiceBinding],
    ) -> None:
        label = widget_label(context)
        if context.kind == "opt":
            result.widgets.append(
                Widget(
                    widget_id=self._next_widget_id(),
                    widget_type=WidgetType.TOGGLE,
                    label=label,
                    bindings=bindings,
                    default=True,
                )
            )
            return

        options = (
            [str(value) for value in context.literal_values]
            if context.literal_values
            else option_labels(tree, context)
        )
        if context.alternative_kind == "query":
            widget_type = WidgetType.TABS
        elif (
            context.alternative_kind == "numeric_literal"
            and len(options) >= self.policy.slider_min_options
        ):
            widget_type = WidgetType.SLIDER
        else:
            widget_type = default_widget_for_cardinality(len(options))

        domain = None
        default: object = 0
        if widget_type is WidgetType.SLIDER:
            domain = literal_domain(list(context.literal_values))
            default = context.literal_values[0] if context.literal_values else None
        result.widgets.append(
            Widget(
                widget_id=self._next_widget_id(),
                widget_type=widget_type,
                label=label,
                bindings=bindings,
                options=options if widget_type is not WidgetType.SLIDER else [],
                domain=domain,
                default=default,
            )
        )
