"""The interface mapping step: Difftree forest → candidate Interface.

This orchestrates the three sub-mappings of ``I = (V, M, L)``:

* ``V`` — :mod:`repro.mapping.vis_mapping` maps each Difftree's result schema
  to a chart,
* ``M`` — :mod:`repro.mapping.interaction_mapping` maps each choice node to a
  widget or a visualization interaction,
* ``L`` — :mod:`repro.mapping.layout_mapping` lays the components out for the
  target screen,

mirroring the schema-matching formulation of Section 2: the Difftree side's
schema comes from :mod:`repro.difftree.tree_schema`, the interface side's
"schema" is the set of component types with their compatibility rules encoded
in the mappers.

The mapping is *decomposed per tree* so the search layer can evaluate
candidates incrementally: profiles, chart templates and interaction-mapping
pieces are deterministic functions of one tree (plus, for interaction pieces,
the shapes of the surrounding charts) and are cached by tree signature in a
:class:`MappingCaches` bundle.  Only the layout step — which genuinely couples
trees — always runs globally.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.difftree.builder import DifftreeForest
from repro.difftree.signatures import (
    LruDict,
    intern_signature,
    structural_signature,
    tree_signature,
)
from repro.difftree.tree_schema import (
    TreeProfileCache,
    forest_schema,
)
from repro.interface.interface import Interface
from repro.interface.layout import MEDIUM_SCREEN, ScreenSize
from repro.mapping.interaction_mapping import (
    InteractionMapper,
    MappingPolicy,
    compose_interaction_mapping,
)
from repro.mapping.layout_mapping import map_layout
from repro.mapping.vis_mapping import map_tree_to_visualization
from repro.sql.schema import TableSchema


@dataclass
class MappingConfig:
    """Configuration of the interface mapping step."""

    screen: ScreenSize = MEDIUM_SCREEN
    policy: MappingPolicy | None = None
    name: str = "interface"


@dataclass
class MappingCaches:
    """Signature-keyed per-tree caches shared across candidate evaluations.

    * ``profiles`` — tree signature → :class:`TreeProfile` (instantiation,
      analysis and choice contexts of one tree),
    * ``visualizations`` — tree signature → chart template (re-id'd per
      forest position on reuse),
    * ``pieces`` — (tree signature, position, chart-context signature) →
      interaction-mapping piece.  The chart-context part captures the shapes
      of *all* charts because linked interactions (brushes, click-selects)
      target other trees' charts; a piece is only reused when every chart the
      decision could have looked at is unchanged.
    """

    profiles: TreeProfileCache = field(default_factory=lambda: TreeProfileCache(1024))
    visualizations: LruDict = field(default_factory=lambda: LruDict(1024))
    pieces: LruDict = field(default_factory=lambda: LruDict(2048))

    def stats(self) -> dict[str, dict[str, int]]:
        return {
            "profiles": self.profiles.stats(),
            "visualizations": self.visualizations.stats(),
            "pieces": self.pieces.stats(),
        }


def _chart_context(visualizations) -> tuple:
    """Hashable shape of every chart an interaction-mapping pass can observe."""
    return intern_signature(
        tuple(
            (
                vis.chart_type.value,
                tuple(encoding.describe() for encoding in vis.encodings),
            )
            for vis in visualizations
        )
    )


def _tree_visualization(profile, index: int, tree, caches: MappingCaches | None):
    """The chart for one tree, via the template cache when available."""
    vis_id = f"G{index + 1}"
    if caches is None:
        return map_tree_to_visualization(profile, vis_id=vis_id)
    # Chart templates never reference choice ids, so the id-insensitive
    # signature shares them across replayed merges.
    signature = structural_signature(tree)
    template = caches.visualizations.get(signature)
    if template is None:
        template = map_tree_to_visualization(profile, vis_id=vis_id)
        caches.visualizations.put(signature, template)
    # Copy with positional identity: the cached template must never be aliased
    # into a live interface (layout sizing mutates width/height in place).
    return replace(template, vis_id=vis_id, tree_index=index)


def map_forest_to_interface(
    forest: DifftreeForest,
    table_schemas: dict[str, TableSchema],
    config: MappingConfig | None = None,
    profile_cache: dict | None = None,
    caches: MappingCaches | None = None,
) -> Interface:
    """Map a Difftree forest to a complete candidate interface.

    ``caches`` (optional) enables the incremental per-tree path: unchanged
    trees reuse their cached profile, chart template and interaction-mapping
    piece, so a candidate that differs from its neighbour in one tree only
    pays for that tree.  ``profile_cache`` is the legacy identity-keyed
    profile dict (still honoured when ``caches`` is not given).
    """
    config = config or MappingConfig()
    schema = forest_schema(
        forest,
        table_schemas,
        profile_cache=caches.profiles if caches is not None else profile_cache,
    )

    visualizations = [
        _tree_visualization(profile, index, forest.trees[index], caches)
        for index, profile in enumerate(schema.profiles)
    ]

    mapper = InteractionMapper(policy=config.policy)
    context = _chart_context(visualizations) if caches is not None else None
    pieces = []
    for index, profile in enumerate(schema.profiles):
        piece = None
        key = None
        if caches is not None:
            key = (tree_signature(forest.trees[index]), index, context)
            piece = caches.pieces.get(key)
        if piece is None:
            piece = mapper.map_tree_piece(profile, forest, visualizations)
            if caches is not None:
                caches.pieces.put(key, piece)
        pieces.append(piece)
    mapping = compose_interaction_mapping(pieces)

    ordered, layout = map_layout(visualizations, mapping.widgets, schema, config.screen)

    interface = Interface(
        forest=forest,
        visualizations=ordered,
        widgets=mapping.widgets,
        interactions=mapping.interactions,
        layout=layout,
        name=config.name,
    )
    interface.validate()
    return interface
