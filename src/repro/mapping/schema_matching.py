"""The interface mapping step: Difftree forest → candidate Interface.

This orchestrates the three sub-mappings of ``I = (V, M, L)``:

* ``V`` — :mod:`repro.mapping.vis_mapping` maps each Difftree's result schema
  to a chart,
* ``M`` — :mod:`repro.mapping.interaction_mapping` maps each choice node to a
  widget or a visualization interaction,
* ``L`` — :mod:`repro.mapping.layout_mapping` lays the components out for the
  target screen,

mirroring the schema-matching formulation of Section 2: the Difftree side's
schema comes from :mod:`repro.difftree.tree_schema`, the interface side's
"schema" is the set of component types with their compatibility rules encoded
in the mappers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.difftree.builder import DifftreeForest
from repro.difftree.tree_schema import ForestSchema, forest_schema
from repro.interface.interface import Interface
from repro.interface.layout import MEDIUM_SCREEN, ScreenSize
from repro.mapping.interaction_mapping import InteractionMapper, MappingPolicy
from repro.mapping.layout_mapping import map_layout
from repro.mapping.vis_mapping import map_forest_to_visualizations
from repro.sql.schema import TableSchema


@dataclass
class MappingConfig:
    """Configuration of the interface mapping step."""

    screen: ScreenSize = MEDIUM_SCREEN
    policy: MappingPolicy | None = None
    name: str = "interface"


def map_forest_to_interface(
    forest: DifftreeForest,
    table_schemas: dict[str, TableSchema],
    config: MappingConfig | None = None,
    profile_cache: dict | None = None,
) -> Interface:
    """Map a Difftree forest to a complete candidate interface."""
    config = config or MappingConfig()
    schema = forest_schema(forest, table_schemas, profile_cache=profile_cache)

    visualizations = map_forest_to_visualizations(schema.profiles)
    mapper = InteractionMapper(policy=config.policy)
    mapping = mapper.map_forest(forest, schema, visualizations)
    ordered, layout = map_layout(visualizations, mapping.widgets, schema, config.screen)

    interface = Interface(
        forest=forest,
        visualizations=ordered,
        widgets=mapping.widgets,
        interactions=mapping.interactions,
        layout=layout,
        name=config.name,
    )
    interface.validate()
    return interface
