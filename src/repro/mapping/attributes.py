"""Shared helpers for the mapping layer.

Small utilities for labelling widgets, summarizing choice alternatives and
locating which visualization displays a given data attribute — the glue that
lets the interaction mapper decide between a widget and a linked
visualization interaction.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.difftree.nodes import AnyNode, OptNode, choice_node_by_id
from repro.difftree.tree_schema import ChoiceContext
from repro.interface.visualizations import Channel, Visualization
from repro.sql.ast_nodes import SqlNode
from repro.sql.printer import to_sql


def humanize(name: str) -> str:
    """Turn an attribute/SQL-ish identifier into a readable label."""
    return name.replace("_", " ").strip().capitalize()


def widget_label(context: ChoiceContext) -> str:
    """A human-readable label for the widget controlling ``context``."""
    if context.target_attribute:
        return humanize(context.target_attribute)
    if context.kind == "opt":
        if context.alternative_kind == "subquery":
            return "Subquery filter"
        if context.alternative_kind == "predicate":
            return "Filter"
        if context.alternative_kind in ("select_item", "column"):
            return "Show attribute"
        return "Optional clause"
    if context.alternative_kind == "column":
        return "Attribute"
    if context.alternative_kind == "select_item":
        return "Measure"
    if context.alternative_kind == "query":
        return "Query"
    if context.alternative_kind == "predicate":
        return "Condition"
    return "Choice"


def option_labels(tree: SqlNode, context: ChoiceContext) -> list[str]:
    """Display labels for the alternatives of an ANY choice (SQL snippets)."""
    node = choice_node_by_id(tree, context.choice_id)
    if isinstance(node, OptNode):
        return ["on", "off"]
    assert isinstance(node, AnyNode)
    labels = []
    for alternative in node.alternatives:
        try:
            labels.append(to_sql(alternative))
        except Exception:  # noqa: BLE001 - nested choice nodes are not SQL-renderable
            labels.append(type(alternative).__name__)
    return labels


def literal_domain(values: Sequence[Any]) -> tuple[Any, Any] | None:
    """The (min, max) domain spanned by a set of literal values, when orderable."""
    cleaned = [value for value in values if value is not None]
    if not cleaned:
        return None
    try:
        return min(cleaned), max(cleaned)
    except TypeError:
        return None


def find_vis_displaying(
    visualizations: Sequence[Visualization],
    attribute: str,
    exclude_tree: int | None = None,
    channels: Sequence[Channel] = (Channel.X, Channel.Y, Channel.COLOR),
) -> Visualization | None:
    """The first visualization that shows ``attribute`` on one of ``channels``.

    ``exclude_tree`` lets the caller look for a *different* tree's chart, which
    is what linked interactions (brushing G1 to configure G2) need.
    """
    for vis in visualizations:
        if exclude_tree is not None and vis.tree_index == exclude_tree:
            continue
        for channel in channels:
            if vis.field_for(channel) == attribute:
                return vis
    return None


def find_own_vis(
    visualizations: Sequence[Visualization], tree_index: int
) -> Visualization | None:
    """The visualization fed by the given tree, if any."""
    for vis in visualizations:
        if vis.tree_index == tree_index:
            return vis
    return None


def group_linked_choices(contexts: Sequence[ChoiceContext]) -> list[list[ChoiceContext]]:
    """Group choices of one tree that should be driven by a single component.

    Choices are linked when they constrain the same attribute with the same
    alternative values (the repeated ``'South'``/``'Northeast'`` literals of
    the COVID Q4 query), so a single pair of buttons updates all of them.
    Range members are never linked this way — they pair up with their
    low/high partner instead.
    """
    groups: dict[tuple, list[ChoiceContext]] = {}
    ordered_keys: list[tuple] = []
    for context in contexts:
        if context.is_range_member:
            key = ("__range__", context.choice_id)
        elif context.literal_values and context.target_attribute:
            key = (
                context.target_attribute,
                context.alternative_kind,
                tuple(context.literal_values),
            )
        else:
            key = ("__solo__", context.choice_id)
        if key not in groups:
            groups[key] = []
            ordered_keys.append(key)
        groups[key].append(context)
    return [groups[key] for key in ordered_keys]
