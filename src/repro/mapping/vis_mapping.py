"""Visualization mapping V: Difftree results → charts.

For each Difftree, the mapper inspects the result schema of its default
instantiation (column names, data types and visualization roles from the
analyzer) and assigns encodings using standard effectiveness ordering:

* x — a temporal dimension if present, else the first dimension, else the
  first quantitative column,
* y — the first aggregate/measure column not already used,
* color — a remaining low-cardinality dimension (the per-state breakdown of
  the COVID walkthrough gets ``color -> state``).

The chart type then follows from the (x role, y role) pair; queries with no
obvious encodable pair fall back to a table view.
"""

from __future__ import annotations

from repro.difftree.tree_schema import TreeProfile
from repro.errors import MappingError
from repro.interface.visualizations import Channel, ChartType, Encoding, Visualization, mark_for_roles
from repro.mapping.attributes import humanize
from repro.sql.schema import AttributeRole, ColumnSchema


def _pick_x(columns: list[ColumnSchema], profile: TreeProfile) -> ColumnSchema | None:
    dimensions = [col for col in columns if col.resolved_role() is not AttributeRole.QUANTITATIVE]
    temporal = [col for col in dimensions if col.resolved_role() is AttributeRole.TEMPORAL]
    if temporal:
        return temporal[0]
    group_names = set(profile.query_profile.group_by_columns)
    grouped_dimensions = [col for col in dimensions if col.name in group_names]
    if grouped_dimensions:
        return grouped_dimensions[0]
    if dimensions:
        return dimensions[0]
    quantitative = [col for col in columns if col.resolved_role() is AttributeRole.QUANTITATIVE]
    if quantitative:
        return quantitative[0]
    return None


def _pick_y(columns: list[ColumnSchema], x: ColumnSchema, profile: TreeProfile) -> ColumnSchema | None:
    aggregates = set(profile.query_profile.aggregate_columns)
    candidates = [col for col in columns if col.name != x.name]
    aggregate_columns = [
        col
        for col in candidates
        if col.name in aggregates and col.resolved_role() is AttributeRole.QUANTITATIVE
    ]
    if aggregate_columns:
        return aggregate_columns[0]
    quantitative = [col for col in candidates if col.resolved_role() is AttributeRole.QUANTITATIVE]
    if quantitative:
        return quantitative[0]
    if candidates:
        return candidates[0]
    return None


def _pick_color(columns: list[ColumnSchema], used: set[str]) -> ColumnSchema | None:
    remaining = [
        col
        for col in columns
        if col.name not in used
        and col.resolved_role() in (AttributeRole.NOMINAL, AttributeRole.ORDINAL)
    ]
    if remaining:
        return remaining[0]
    return None


def map_tree_to_visualization(
    profile: TreeProfile,
    vis_id: str,
    title: str | None = None,
) -> Visualization:
    """Map one Difftree profile to a visualization."""
    columns = list(profile.query_profile.result_schema.columns)
    if not columns:
        raise MappingError(f"Tree {profile.tree_index} produces no result columns")

    x = _pick_x(columns, profile)
    if x is None:
        return Visualization(
            vis_id=vis_id,
            chart_type=ChartType.TABLE,
            encodings=[],
            tree_index=profile.tree_index,
            title=title or "Result table",
        )
    y = _pick_y(columns, x, profile)
    if y is None:
        # Single-column result: histogram of that column.
        return Visualization(
            vis_id=vis_id,
            chart_type=ChartType.HISTOGRAM,
            encodings=[Encoding(Channel.X, x.name, x.resolved_role())],
            tree_index=profile.tree_index,
            title=title or humanize(x.name),
        )

    x_role = x.resolved_role()
    y_role = y.resolved_role()
    chart_type = mark_for_roles(x_role, y_role)
    encodings = [
        Encoding(Channel.X, x.name, x_role),
        Encoding(Channel.Y, y.name, y_role),
    ]
    color = _pick_color(columns, {x.name, y.name})
    if color is not None:
        encodings.append(Encoding(Channel.COLOR, color.name, color.resolved_role()))

    if chart_type is ChartType.SCATTER and color is None and len(columns) > 2:
        size_candidates = [
            col
            for col in columns
            if col.name not in (x.name, y.name)
            and col.resolved_role() is AttributeRole.QUANTITATIVE
        ]
        if size_candidates:
            encodings.append(
                Encoding(Channel.SIZE, size_candidates[0].name, AttributeRole.QUANTITATIVE)
            )

    chart_title = title or f"{humanize(y.name)} by {humanize(x.name)}"
    return Visualization(
        vis_id=vis_id,
        chart_type=chart_type,
        encodings=encodings,
        tree_index=profile.tree_index,
        title=chart_title,
    )


def map_forest_to_visualizations(profiles: list[TreeProfile]) -> list[Visualization]:
    """Map every tree of a forest to a chart, numbering them G1, G2, ..."""
    visualizations = []
    for index, profile in enumerate(profiles, start=1):
        visualizations.append(map_tree_to_visualization(profile, vis_id=f"G{index}"))
    return visualizations
