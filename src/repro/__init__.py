"""repro — a full reproduction of PI2: interactive visualization interface
generation for SQL analysis in notebooks (SIGMOD 2022 demonstration).

The package layers, bottom to top:

* :mod:`repro.sql` — SQL lexer, parser, AST, printer, analyzer,
* :mod:`repro.engine` — in-memory columnar SQL execution engine,
* :mod:`repro.datasets` — synthetic COVID-19 / SDSS / S&P 500 demo datasets,
* :mod:`repro.difftree` — Difftrees: merged ASTs with ANY/OPT choice nodes,
* :mod:`repro.interface` — visualizations, widgets, interactions, layout,
  runtime state, Vega-Lite and HTML emitters,
* :mod:`repro.mapping` — the V/M/L interface mapping,
* :mod:`repro.cost` — the interface cost model C(I, Q),
* :mod:`repro.search` — MCTS / greedy / exhaustive search over Difftrees,
* :mod:`repro.baselines` — Lux-like and Hex-like comparison systems,
* :mod:`repro.notebook` — notebook session, query-log snapshots, versioning,
* :mod:`repro.pipeline` — the end-to-end :func:`generate_interface` facade,
* :mod:`repro.serving` — concurrent multi-session serving layer
  (snapshot-isolated sessions, bounded worker pool, admission control).

Quickstart::

    from repro import generate_interface
    from repro.datasets import load_covid_catalog, covid_query_log

    catalog = load_covid_catalog()
    result = generate_interface(covid_query_log(), catalog)
    print(result.interface.describe())
"""

from repro.cost.model import CostBreakdown, CostModel, CostWeights
from repro.difftree.builder import DifftreeForest, build_forest
from repro.engine.catalog import Catalog, CatalogSnapshot
from repro.engine.explain import ExplainReport
from repro.engine.options import ExecOptions
from repro.engine.table import QueryResult, Table
from repro.errors import ReproError
from repro.interface.interface import Interface
from repro.interface.layout import LARGE_SCREEN, MEDIUM_SCREEN, SMALL_SCREEN, ScreenSize
from repro.interface.state import InterfaceState
from repro.pipeline import (
    GenerationResult,
    PipelineConfig,
    generate_interface,
    map_queries_statically,
)
from repro.serving.service import InterfaceService, ServiceConfig
from repro.serving.session import Session

__version__ = "1.0.0"

__all__ = [
    "CostBreakdown",
    "CostModel",
    "CostWeights",
    "DifftreeForest",
    "build_forest",
    "Catalog",
    "CatalogSnapshot",
    "ExecOptions",
    "ExplainReport",
    "QueryResult",
    "Table",
    "ReproError",
    "InterfaceService",
    "ServiceConfig",
    "Session",
    "Interface",
    "LARGE_SCREEN",
    "MEDIUM_SCREEN",
    "SMALL_SCREEN",
    "ScreenSize",
    "InterfaceState",
    "GenerationResult",
    "PipelineConfig",
    "generate_interface",
    "map_queries_statically",
    "__version__",
]
