"""Generic visitor / transformer infrastructure over SQL ASTs.

The Difftree builder, the semantic analyzer and several mapping heuristics all
need to walk or rewrite ASTs.  Rather than each of them re-implementing a
recursion, they use the two small utilities here:

* :class:`NodeVisitor` — read-only traversal with per-class dispatch.
* :class:`NodeTransformer` — bottom-up rewriting; returning a new node from a
  ``visit_<Class>`` method replaces the original.
* :func:`transform` — functional bottom-up rewriting with a single callback.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sql.ast_nodes import SqlNode


class NodeVisitor:
    """Dispatching read-only visitor.

    Subclasses define ``visit_<ClassName>`` methods.  Unhandled node types fall
    back to :meth:`generic_visit`, which recurses into children.
    """

    def visit(self, node: SqlNode) -> Any:
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: SqlNode) -> None:
        for child in node.children():
            self.visit(child)


class NodeTransformer:
    """Bottom-up transformer.

    Children are rewritten first; the (possibly rebuilt) node is then passed to
    ``visit_<ClassName>`` if it exists, whose return value replaces the node.
    """

    def transform(self, node: SqlNode) -> SqlNode:
        children = node.children()
        new_children = [self.transform(child) for child in children]
        if any(new is not old for new, old in zip(new_children, children)):
            rebuilt = node.with_children(new_children)
        else:
            rebuilt = node  # nothing changed below: keep the original object
        method = getattr(self, f"visit_{type(rebuilt).__name__}", None)
        if method is not None:
            result = method(rebuilt)
            if result is not None:
                return result
        return rebuilt


def transform(node: SqlNode, fn: Callable[[SqlNode], SqlNode | None]) -> SqlNode:
    """Rewrite ``node`` bottom-up with ``fn``.

    ``fn`` receives each node after its children have been rewritten; returning
    ``None`` keeps the node, returning a node replaces it.  Subtrees with no
    rewrites anywhere below them are returned *as the original objects* (not
    equal copies), so no-op passes cost one traversal instead of a full
    rebuild — and downstream structure-sharing caches keep working.
    """
    children = node.children()
    new_children = [transform(child, fn) for child in children]
    if any(new is not old for new, old in zip(new_children, children)):
        rebuilt = node.with_children(new_children)
    else:
        rebuilt = node
    replacement = fn(rebuilt)
    return rebuilt if replacement is None else replacement


def collect(node: SqlNode, predicate: Callable[[SqlNode], bool]) -> list[SqlNode]:
    """Return all descendants of ``node`` (including itself) matching ``predicate``."""
    return [descendant for descendant in node.walk() if predicate(descendant)]


def count_nodes(node: SqlNode) -> int:
    """Return the number of nodes in the subtree rooted at ``node``."""
    return sum(1 for _ in node.walk())


def tree_depth(node: SqlNode) -> int:
    """Return the depth of the subtree rooted at ``node`` (a leaf has depth 1)."""
    children = node.children()
    if not children:
        return 1
    return 1 + max(tree_depth(child) for child in children)
