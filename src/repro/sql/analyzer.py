"""Semantic analysis of SELECT statements.

Given a query AST and the catalog of table schemas, the analyzer

* resolves column references to the tables that provide them,
* infers the result schema (column names, types, visualization roles),
* classifies the query shape (grouped aggregation, plain projection, ...),

which the Difftree/mapping layers use to choose chart encodings and to decide
which attributes a choice node controls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SqlAnalysisError
from repro.sql.ast_nodes import (
    AGGREGATE_FUNCTIONS,
    BinaryOp,
    Case,
    Cast,
    ColumnRef,
    FunctionCall,
    Join,
    Literal,
    Select,
    SelectItem,
    SqlNode,
    Star,
    SubqueryRef,
    TableRef,
    WindowCall,
    contains_aggregate,
)
from repro.sql.schema import AttributeRole, ColumnSchema, DataType, ResultSchema, TableSchema


@dataclass
class ScopeEntry:
    """One table binding visible to a query scope."""

    binding_name: str
    schema: TableSchema


@dataclass
class Scope:
    """Name resolution scope: the tables bound in a query's FROM clause."""

    entries: list[ScopeEntry] = field(default_factory=list)
    parent: "Scope | None" = None

    def add(self, binding_name: str, schema: TableSchema) -> None:
        self.entries.append(ScopeEntry(binding_name, schema))

    def resolve(self, column: ColumnRef) -> ColumnSchema:
        """Resolve a column reference, searching outer scopes for correlation."""
        matches: list[ColumnSchema] = []
        for entry in self.entries:
            if column.table and column.table != entry.binding_name:
                continue
            if entry.schema.has_column(column.name):
                matches.append(entry.schema.column(column.name))
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise SqlAnalysisError(f"Ambiguous column reference {column.qualified_name!r}")
        if self.parent is not None:
            return self.parent.resolve(column)
        raise SqlAnalysisError(f"Unknown column {column.qualified_name!r}")

    def all_columns(self) -> list[tuple[str, ColumnSchema]]:
        result: list[tuple[str, ColumnSchema]] = []
        for entry in self.entries:
            for column in entry.schema.columns:
                result.append((entry.binding_name, column))
        return result


@dataclass(frozen=True)
class QueryProfile:
    """Summary of an analyzed query used by the mapping layer.

    Attributes:
        result_schema: inferred output schema.
        group_by_columns: output names of GROUP BY expressions that also appear
            in the SELECT list.
        aggregate_columns: output names of aggregate expressions.
        measure_columns: quantitative output columns (aggregates included).
        dimension_columns: nominal/ordinal/temporal output columns.
        filter_columns: columns referenced by WHERE/HAVING predicates.
        is_aggregation: True when the query groups or aggregates.
        has_subquery: True when a subquery appears anywhere in the statement.
        has_join: True when the FROM clause contains a join.
        source_tables: base table names referenced anywhere in the statement.
    """

    result_schema: ResultSchema
    group_by_columns: tuple[str, ...]
    aggregate_columns: tuple[str, ...]
    measure_columns: tuple[str, ...]
    dimension_columns: tuple[str, ...]
    filter_columns: tuple[str, ...]
    is_aggregation: bool
    has_subquery: bool
    has_join: bool
    source_tables: tuple[str, ...]


def references_outer_names(query, table_columns) -> bool:
    """Static correlation check: does ``query`` reference names it does not bind?

    Used by the executor to decide whether a subquery's result may be memoized
    across outer rows.  The check over-approximates correlation (unknown
    unqualified names count as correlated), which only costs performance,
    never correctness.

    Args:
        query: the subquery's SELECT AST.
        table_columns: callable mapping a base-table name to its column names,
            or to None when the table is unknown.
    """
    from repro.sql.ast_nodes import CommonTableExpr, SubqueryRef as _SubqueryRef

    bound_tables: set[str] = set()
    bound_columns: set[str] = set()
    for node in query.walk():
        if isinstance(node, TableRef):
            bound_tables.add(node.binding_name)
            columns = table_columns(node.name)
            if columns is not None:
                bound_columns.update(columns)
        elif isinstance(node, _SubqueryRef):
            bound_tables.add(node.alias)
            bound_columns.update(node.query.output_names())
        elif isinstance(node, CommonTableExpr):
            bound_tables.add(node.name)
            bound_columns.update(node.columns or node.query.output_names())
        elif isinstance(node, SelectItem) and node.alias:
            bound_columns.add(node.alias)
    for ref in query.find_all(ColumnRef):
        if ref.table:
            if ref.table not in bound_tables:
                return True
        elif ref.name not in bound_columns:
            return True
    return False


def _walk_same_scope(node: SqlNode):
    """Walk ``node``'s subtree without descending into nested SELECTs."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in current.children():
            if not isinstance(child, Select):
                stack.append(child)


def check_window_placement(query: Select) -> str | None:
    """Validate where window functions appear in one query scope.

    Windows are legal in the SELECT list and in ORDER BY only, and must not
    nest.  Returns a human-readable violation message, or ``None`` when the
    query is well-formed.  Nested SELECTs are *not* descended into — each
    scope is checked when it is itself analyzed/planned.
    """
    clauses: list[tuple[SqlNode, str]] = []
    if query.where is not None:
        clauses.append((query.where, "WHERE"))
    if query.having is not None:
        clauses.append((query.having, "HAVING"))
    clauses.extend((expr, "GROUP BY") for expr in query.group_by)
    for clause, label in clauses:
        for node in _walk_same_scope(clause):
            if isinstance(node, WindowCall):
                return (
                    f"window function {node.lower_name}() is not allowed in {label} "
                    "(windows may appear in the SELECT list and ORDER BY only)"
                )
    roots = [item.expr for item in query.select_items]
    roots.extend(item.expr for item in query.order_by)
    for root in roots:
        for node in _walk_same_scope(root):
            if not isinstance(node, WindowCall):
                continue
            inner = list(node.call.args) + list(node.spec.partition_by)
            inner.extend(item.expr for item in node.spec.order_by)
            for branch in inner:
                for descendant in _walk_same_scope(branch):
                    if isinstance(descendant, WindowCall):
                        return "window functions cannot be nested"
    return None


class Analyzer:
    """Performs name resolution and result-schema inference for SELECTs."""

    def __init__(self, tables: dict[str, TableSchema]) -> None:
        self._tables = {name.lower(): schema for name, schema in tables.items()}

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def analyze(self, query: Select) -> QueryProfile:
        """Analyze a SELECT statement against the catalog."""
        violation = check_window_placement(query)
        if violation is not None:
            raise SqlAnalysisError(violation)
        scope = self._build_scope(query, parent=None)
        result_schema = self._infer_result_schema(query, scope)

        group_names: list[str] = []
        for expr in query.group_by:
            name = self._expression_name(expr)
            if name in result_schema.column_names():
                group_names.append(name)

        aggregate_names = [
            item.output_name()
            for item in query.select_items
            if contains_aggregate(item.expr)
        ]

        measures: list[str] = []
        dimensions: list[str] = []
        for column in result_schema.columns:
            if column.resolved_role() is AttributeRole.QUANTITATIVE:
                measures.append(column.name)
            else:
                dimensions.append(column.name)

        filter_columns = tuple(
            sorted(
                {
                    ref.name
                    for clause in (query.where, query.having)
                    if clause is not None
                    for ref in clause.find_all(ColumnRef)
                }
            )
        )

        has_subquery = any(
            isinstance(node, Select) and node is not query for node in query.walk()
        )
        has_join = any(isinstance(node, Join) for node in query.walk())
        source_tables = tuple(
            sorted({ref.name for ref in query.find_all(TableRef)})
        )

        return QueryProfile(
            result_schema=result_schema,
            group_by_columns=tuple(group_names),
            aggregate_columns=tuple(aggregate_names),
            measure_columns=tuple(measures),
            dimension_columns=tuple(dimensions),
            filter_columns=filter_columns,
            is_aggregation=bool(query.group_by) or bool(aggregate_names),
            has_subquery=has_subquery,
            has_join=has_join,
            source_tables=source_tables,
        )

    def result_schema(self, query: Select) -> ResultSchema:
        """Infer only the result schema of ``query``."""
        scope = self._build_scope(query, parent=None)
        return self._infer_result_schema(query, scope)

    # ------------------------------------------------------------------ #
    # Scope construction
    # ------------------------------------------------------------------ #

    def _lookup_table(self, name: str) -> TableSchema:
        schema = self._tables.get(name.lower())
        if schema is None:
            raise SqlAnalysisError(f"Unknown table {name!r}")
        return schema

    def _build_scope(self, query: Select, parent: Scope | None) -> Scope:
        scope = Scope(parent=parent)
        cte_schemas: dict[str, TableSchema] = {}
        for cte in query.ctes:
            cte_scope = self._build_scope(cte.query, parent=parent)
            cte_result = self._infer_result_schema(cte.query, cte_scope)
            columns = cte_result.columns
            if cte.columns:
                if len(cte.columns) != len(columns):
                    raise SqlAnalysisError(
                        f"CTE {cte.name!r} declares {len(cte.columns)} columns "
                        f"but its query produces {len(columns)}"
                    )
                columns = tuple(
                    ColumnSchema(name, col.data_type, col.role)
                    for name, col in zip(cte.columns, columns)
                )
            cte_schemas[cte.name.lower()] = TableSchema(name=cte.name, columns=columns)

        if query.from_clause is not None:
            self._bind_from(query.from_clause, scope, cte_schemas, parent)
        return scope

    def _bind_from(
        self,
        node: SqlNode,
        scope: Scope,
        cte_schemas: dict[str, TableSchema],
        parent: Scope | None,
    ) -> None:
        if isinstance(node, TableRef):
            schema = cte_schemas.get(node.name.lower())
            if schema is None:
                schema = self._lookup_table(node.name)
            scope.add(node.binding_name, schema)
        elif isinstance(node, SubqueryRef):
            sub_scope = self._build_scope(node.query, parent=parent)
            sub_schema = self._infer_result_schema(node.query, sub_scope)
            scope.add(node.alias, TableSchema(name=node.alias, columns=sub_schema.columns))
        elif isinstance(node, Join):
            self._bind_from(node.left, scope, cte_schemas, parent)
            self._bind_from(node.right, scope, cte_schemas, parent)
        else:
            raise SqlAnalysisError(f"Unsupported FROM clause item {type(node).__name__}")

    # ------------------------------------------------------------------ #
    # Result schema inference
    # ------------------------------------------------------------------ #

    def _infer_result_schema(self, query: Select, scope: Scope) -> ResultSchema:
        columns: list[ColumnSchema] = []
        for item in query.select_items:
            if isinstance(item.expr, Star):
                columns.extend(self._expand_star(item.expr, scope))
                continue
            name = item.output_name()
            data_type, role = self._infer_expression_type(item.expr, scope)
            columns.append(ColumnSchema(name=name, data_type=data_type, role=role))
        return ResultSchema(columns=tuple(columns))

    def _expand_star(self, star: Star, scope: Scope) -> list[ColumnSchema]:
        expanded: list[ColumnSchema] = []
        for binding_name, column in scope.all_columns():
            if star.table and star.table != binding_name:
                continue
            expanded.append(column)
        if not expanded:
            raise SqlAnalysisError("SELECT * with an empty or unknown FROM clause")
        return expanded

    def _infer_expression_type(
        self, expr: SqlNode, scope: Scope
    ) -> tuple[DataType, AttributeRole | None]:
        if isinstance(expr, Literal):
            data_type = DataType.of_value(expr.value)
            return data_type, AttributeRole.from_data_type(data_type)
        if isinstance(expr, ColumnRef):
            column = scope.resolve(expr)
            return column.data_type, column.resolved_role()
        if isinstance(expr, Cast):
            mapping = {
                "int": DataType.INTEGER,
                "integer": DataType.INTEGER,
                "bigint": DataType.INTEGER,
                "float": DataType.FLOAT,
                "real": DataType.FLOAT,
                "double": DataType.FLOAT,
                "text": DataType.TEXT,
                "varchar": DataType.TEXT,
                "date": DataType.DATE,
                "boolean": DataType.BOOLEAN,
            }
            data_type = mapping.get(expr.target_type, DataType.TEXT)
            return data_type, AttributeRole.from_data_type(data_type)
        if isinstance(expr, FunctionCall):
            return self._infer_function_type(expr, scope)
        if isinstance(expr, WindowCall):
            name = expr.lower_name
            if name in ("row_number", "rank", "dense_rank"):
                return DataType.INTEGER, AttributeRole.QUANTITATIVE
            if name in ("lag", "lead"):
                if expr.call.args and not isinstance(expr.call.args[0], Star):
                    return self._infer_expression_type(expr.call.args[0], scope)
                return DataType.FLOAT, AttributeRole.QUANTITATIVE
            return self._infer_function_type(expr.call, scope)
        if isinstance(expr, BinaryOp):
            if expr.op in ("=", "<>", "<", "<=", ">", ">=", "AND", "OR", "LIKE"):
                return DataType.BOOLEAN, AttributeRole.NOMINAL
            left_type, _ = self._infer_expression_type(expr.left, scope)
            right_type, _ = self._infer_expression_type(expr.right, scope)
            if expr.op == "||":
                return DataType.TEXT, AttributeRole.NOMINAL
            unified = DataType.unify(left_type, right_type)
            if expr.op == "/" and unified is DataType.INTEGER:
                unified = DataType.FLOAT
            return unified, AttributeRole.from_data_type(unified)
        if isinstance(expr, Case):
            for arm in expr.whens:
                data_type, role = self._infer_expression_type(arm.result, scope)
                if data_type is not DataType.NULL:
                    return data_type, role
            if expr.else_result is not None:
                return self._infer_expression_type(expr.else_result, scope)
            return DataType.NULL, None
        # Subqueries, parameters and anything else default to float/quantitative
        # which is the safest role for chart mapping of computed expressions.
        return DataType.FLOAT, AttributeRole.QUANTITATIVE

    def _infer_function_type(
        self, call: FunctionCall, scope: Scope
    ) -> tuple[DataType, AttributeRole | None]:
        name = call.lower_name
        if name == "count":
            return DataType.INTEGER, AttributeRole.QUANTITATIVE
        if name in ("sum", "avg", "stddev", "variance", "median"):
            return DataType.FLOAT, AttributeRole.QUANTITATIVE
        if name in ("min", "max"):
            if call.args and not isinstance(call.args[0], Star):
                return self._infer_expression_type(call.args[0], scope)
            return DataType.FLOAT, AttributeRole.QUANTITATIVE
        if name in ("lower", "upper", "substr", "substring", "trim", "concat", "strftime", "left", "right"):
            return DataType.TEXT, AttributeRole.NOMINAL
        if name in ("abs", "round", "sqrt", "ln", "log", "exp", "power", "floor", "ceil"):
            return DataType.FLOAT, AttributeRole.QUANTITATIVE
        if name in ("date", "date_trunc"):
            return DataType.DATE, AttributeRole.TEMPORAL
        if name == "length":
            return DataType.INTEGER, AttributeRole.QUANTITATIVE
        if name in AGGREGATE_FUNCTIONS:
            return DataType.FLOAT, AttributeRole.QUANTITATIVE
        return DataType.FLOAT, AttributeRole.QUANTITATIVE

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _expression_name(expr: SqlNode) -> str:
        if isinstance(expr, ColumnRef):
            return expr.name
        return SelectItem(expr=expr).output_name()
