"""Token definitions for the SQL lexer.

The lexer produces a flat list of :class:`Token` objects.  Token *types* are a
small closed enumeration (:class:`TokenType`); keywords keep their upper-cased
text in ``Token.value`` so the parser can branch on the specific keyword while
the lexer stays keyword-agnostic for anything it does not need to know about.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenType(Enum):
    """Lexical category of a token."""

    KEYWORD = auto()
    IDENTIFIER = auto()
    QUOTED_IDENTIFIER = auto()
    INTEGER = auto()
    FLOAT = auto()
    STRING = auto()
    OPERATOR = auto()
    COMMA = auto()
    DOT = auto()
    LPAREN = auto()
    RPAREN = auto()
    SEMICOLON = auto()
    PARAMETER = auto()
    EOF = auto()


#: Reserved words recognised by the lexer.  Anything else that looks like a
#: name is an IDENTIFIER.  The set intentionally covers the dialect used by the
#: PI2 scenarios (SELECT queries with joins, subqueries, CTEs, CASE, etc.).
KEYWORDS: frozenset[str] = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "ALL",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "ORDER",
        "ASC",
        "DESC",
        "LIMIT",
        "OFFSET",
        "AS",
        "AND",
        "OR",
        "NOT",
        "IN",
        "IS",
        "NULL",
        "LIKE",
        "BETWEEN",
        "EXISTS",
        "CASE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
        "JOIN",
        "INNER",
        "LEFT",
        "RIGHT",
        "FULL",
        "OUTER",
        "CROSS",
        "ON",
        "USING",
        "UNION",
        "INTERSECT",
        "EXCEPT",
        "WITH",
        "TRUE",
        "FALSE",
        "CAST",
        "NULLS",
        "FIRST",
        "LAST",
        "OVER",
        "PARTITION",
        "ROWS",
        "ROW",
        "UNBOUNDED",
        "PRECEDING",
        "FOLLOWING",
        "CURRENT",
    }
)

#: Multi-character operators, longest first so the lexer can do greedy matching.
MULTI_CHAR_OPERATORS: tuple[str, ...] = ("<>", "!=", ">=", "<=", "||")

#: Single-character operators.
SINGLE_CHAR_OPERATORS: frozenset[str] = frozenset({"+", "-", "*", "/", "%", "=", "<", ">"})


@dataclass(frozen=True)
class Token:
    """One lexical token.

    Attributes:
        type: Lexical category.
        value: The token text.  Keywords are upper-cased; string literals are
            unescaped (without surrounding quotes); identifiers keep their
            original case.
        position: 0-based character offset of the first character in the input.
        line: 1-based line number.
        column: 1-based column number.
    """

    type: TokenType
    value: str
    position: int = 0
    line: int = 1
    column: int = 1

    def is_keyword(self, *names: str) -> bool:
        """Return True when this token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.value in names

    def is_operator(self, *ops: str) -> bool:
        """Return True when this token is one of the given operator symbols."""
        return self.type is TokenType.OPERATOR and self.value in ops

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.type.name}({self.value!r})"
