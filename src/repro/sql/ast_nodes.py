"""AST node classes for the SQL dialect used throughout the reproduction.

The node model deliberately exposes a *uniform tree protocol* — every node
reports its children via :meth:`SqlNode.child_slots` and can be rebuilt from
replacement children via :meth:`SqlNode.with_children` — because the Difftree
layer (``repro.difftree``) treats query ASTs as generic ordered labelled trees
that it merges, diffs and transforms.

Node equality is structural (dataclass equality), which the Difftree merge
algorithm relies on to detect identical subtrees across queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Iterator, Sequence


#: Dataclass field names per node class (fields() re-derives them per call,
#: which shows up hot in tree-heavy paths like Difftree instantiation).
_FIELD_NAMES_CACHE: dict[type, tuple[str, ...]] = {}


class SqlNode:
    """Base class for all SQL AST nodes.

    The tree protocol used by the Difftree layer:

    * :meth:`child_slots` yields ``(slot_name, value)`` pairs where ``value``
      is either a :class:`SqlNode`, a list of nodes, or a plain value
      (identifier string, literal, keyword).
    * :meth:`children` yields only node-valued children in order.
    * :meth:`with_children` rebuilds the node with a replacement child list in
      the same order that :meth:`children` produced them.
    * :meth:`label` is the structural label used when two nodes are compared
      for "same kind of node" (it includes non-node scalar attributes such as
      operator symbols and identifier names, but not children).
    """

    def child_slots(self) -> Iterator[tuple[str, Any]]:
        names = _FIELD_NAMES_CACHE.get(type(self))
        if names is None:
            names = tuple(f.name for f in fields(self))  # type: ignore[arg-type]
            _FIELD_NAMES_CACHE[type(self)] = names
        for name in names:
            yield name, getattr(self, name)

    def children(self) -> list["SqlNode"]:
        result: list[SqlNode] = []
        for _, value in self.child_slots():
            if isinstance(value, SqlNode):
                result.append(value)
            elif isinstance(value, (list, tuple)):
                result.extend(v for v in value if isinstance(v, SqlNode))
        return result

    def scalar_slots(self) -> dict[str, Any]:
        """Return the non-node attributes that participate in the node label."""
        scalars: dict[str, Any] = {}
        for name, value in self.child_slots():
            if isinstance(value, SqlNode):
                continue
            if isinstance(value, (list, tuple)) and any(isinstance(v, SqlNode) for v in value):
                continue
            scalars[name] = value
        return scalars

    def label(self) -> tuple:
        """A hashable structural label: class name plus scalar attributes."""
        scalars = tuple(sorted((k, _freeze(v)) for k, v in self.scalar_slots().items()))
        return (type(self).__name__, scalars)

    def with_children(self, new_children: Sequence["SqlNode"]) -> "SqlNode":
        """Rebuild this node with ``new_children`` substituted positionally."""
        queue = list(new_children)
        updates: dict[str, Any] = {}
        for name, value in self.child_slots():
            if isinstance(value, SqlNode):
                if not queue:
                    raise ValueError(f"Not enough replacement children for {type(self).__name__}")
                updates[name] = queue.pop(0)
            elif isinstance(value, (list, tuple)) and any(isinstance(v, SqlNode) for v in value):
                new_list = []
                for item in value:
                    if isinstance(item, SqlNode):
                        if not queue:
                            raise ValueError(
                                f"Not enough replacement children for {type(self).__name__}"
                            )
                        new_list.append(queue.pop(0))
                    else:
                        new_list.append(item)
                updates[name] = type(value)(new_list) if isinstance(value, tuple) else new_list
        if queue:
            raise ValueError(f"Too many replacement children for {type(self).__name__}")
        return replace(self, **updates)  # type: ignore[type-var]

    def walk(self) -> Iterator["SqlNode"]:
        """Pre-order traversal of this subtree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def find_all(self, node_type: type) -> list["SqlNode"]:
        """Return every descendant (including self) of the given type."""
        return [node for node in self.walk() if isinstance(node, node_type)]


def _freeze(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    return value


# --------------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Literal(SqlNode):
    """A constant literal: number, string, boolean or NULL."""

    value: Any

    @property
    def kind(self) -> str:
        if self.value is None:
            return "null"
        if isinstance(self.value, bool):
            return "boolean"
        if isinstance(self.value, int):
            return "integer"
        if isinstance(self.value, float):
            return "float"
        return "string"


@dataclass(frozen=True)
class ColumnRef(SqlNode):
    """A (possibly qualified) column reference, e.g. ``t.price``."""

    name: str
    table: str | None = None

    @property
    def qualified_name(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(SqlNode):
    """``*`` or ``t.*`` in a SELECT list or inside ``count(*)``."""

    table: str | None = None


@dataclass(frozen=True)
class Parameter(SqlNode):
    """A named (``:name``) or positional (``?``) query parameter."""

    name: str


@dataclass(frozen=True)
class UnaryOp(SqlNode):
    """A unary operator application: ``-x``, ``+x``, ``NOT x``."""

    op: str
    operand: SqlNode


@dataclass(frozen=True)
class BinaryOp(SqlNode):
    """A binary operator application: comparisons, arithmetic, AND/OR, LIKE."""

    op: str
    left: SqlNode
    right: SqlNode


@dataclass(frozen=True)
class BetweenOp(SqlNode):
    """``expr [NOT] BETWEEN low AND high``."""

    expr: SqlNode
    low: SqlNode
    high: SqlNode
    negated: bool = False


@dataclass(frozen=True)
class InList(SqlNode):
    """``expr [NOT] IN (v1, v2, ...)``."""

    expr: SqlNode
    items: list[SqlNode]
    negated: bool = False


@dataclass(frozen=True)
class InSubquery(SqlNode):
    """``expr [NOT] IN (SELECT ...)``."""

    expr: SqlNode
    query: "Select"
    negated: bool = False


@dataclass(frozen=True)
class Exists(SqlNode):
    """``[NOT] EXISTS (SELECT ...)``."""

    query: "Select"
    negated: bool = False


@dataclass(frozen=True)
class ScalarSubquery(SqlNode):
    """A subquery used as a scalar expression."""

    query: "Select"


@dataclass(frozen=True)
class IsNull(SqlNode):
    """``expr IS [NOT] NULL``."""

    expr: SqlNode
    negated: bool = False


@dataclass(frozen=True)
class FunctionCall(SqlNode):
    """A scalar or aggregate function call, e.g. ``count(*)`` or ``avg(x)``."""

    name: str
    args: list[SqlNode] = field(default_factory=list)
    distinct: bool = False

    @property
    def lower_name(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Cast(SqlNode):
    """``CAST(expr AS type)``."""

    expr: SqlNode
    target_type: str


@dataclass(frozen=True)
class CaseWhen(SqlNode):
    """One ``WHEN condition THEN result`` arm of a CASE expression."""

    condition: SqlNode
    result: SqlNode


@dataclass(frozen=True)
class Case(SqlNode):
    """A searched CASE expression."""

    whens: list[CaseWhen]
    else_result: SqlNode | None = None


# --------------------------------------------------------------------------- #
# Query clauses
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class SelectItem(SqlNode):
    """One item of the SELECT list: an expression with an optional alias."""

    expr: SqlNode
    alias: str | None = None

    def output_name(self) -> str:
        """The column name this item produces in the result schema."""
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        if isinstance(self.expr, Star):
            return "*"
        if isinstance(self.expr, FunctionCall):
            return self.expr.lower_name
        if isinstance(self.expr, WindowCall):
            return self.expr.lower_name
        return "expr"


@dataclass(frozen=True)
class TableRef(SqlNode):
    """A base table reference in the FROM clause, with optional alias."""

    name: str
    alias: str | None = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SubqueryRef(SqlNode):
    """A derived table: ``(SELECT ...) AS alias``."""

    query: "Select"
    alias: str

    @property
    def binding_name(self) -> str:
        return self.alias


@dataclass(frozen=True)
class Join(SqlNode):
    """A join between two FROM-clause items."""

    left: SqlNode
    right: SqlNode
    join_type: str = "INNER"  # INNER, LEFT, RIGHT, FULL, CROSS
    condition: SqlNode | None = None
    using: list[str] = field(default_factory=list)


@dataclass(frozen=True)
class OrderItem(SqlNode):
    """One ORDER BY expression with direction."""

    expr: SqlNode
    descending: bool = False
    nulls_last: bool = True


@dataclass(frozen=True)
class WindowFrame(SqlNode):
    """A ``ROWS`` frame clause of a window specification.

    ``start_kind``/``end_kind`` take the values ``"UNBOUNDED_PRECEDING"``,
    ``"PRECEDING"``, ``"CURRENT_ROW"``, ``"FOLLOWING"`` and
    ``"UNBOUNDED_FOLLOWING"``; the offset fields carry the integer operand of
    ``N PRECEDING`` / ``N FOLLOWING`` bounds and are ``None`` otherwise.  All
    slots are scalars, so frames participate in :meth:`SqlNode.label` and two
    structurally identical frames compare equal for Difftree merging.
    """

    start_kind: str
    end_kind: str
    start_offset: int | None = None
    end_offset: int | None = None


@dataclass(frozen=True)
class WindowSpec(SqlNode):
    """The ``OVER (...)`` specification: partitioning, ordering and frame."""

    partition_by: list[SqlNode] = field(default_factory=list)
    order_by: list[OrderItem] = field(default_factory=list)
    frame: WindowFrame | None = None


@dataclass(frozen=True)
class WindowCall(SqlNode):
    """A window function application: ``fn(args) OVER (spec)``.

    The wrapped :class:`FunctionCall` is kept verbatim so ranking functions
    (``row_number`` …) and windowed aggregates (``sum(x) OVER (...)``) share
    one node shape; the call is *not* a group aggregate — see
    :func:`contains_aggregate`.
    """

    call: FunctionCall
    spec: WindowSpec

    @property
    def lower_name(self) -> str:
        return self.call.lower_name


@dataclass(frozen=True)
class CommonTableExpr(SqlNode):
    """One CTE of a WITH clause."""

    name: str
    query: "Select"
    columns: list[str] = field(default_factory=list)


@dataclass(frozen=True)
class Select(SqlNode):
    """A full SELECT statement (optionally with CTEs and set operations)."""

    select_items: list[SelectItem]
    from_clause: SqlNode | None = None
    where: SqlNode | None = None
    group_by: list[SqlNode] = field(default_factory=list)
    having: SqlNode | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False
    ctes: list[CommonTableExpr] = field(default_factory=list)

    def output_names(self) -> list[str]:
        """Best-effort output column names (Star expands at execution time)."""
        return [item.output_name() for item in self.select_items]


@dataclass(frozen=True)
class SetOperation(SqlNode):
    """``left UNION/INTERSECT/EXCEPT [ALL] right``."""

    op: str
    left: SqlNode
    right: SqlNode
    all: bool = False


#: Aggregate function names recognised by the engine and by Difftree analysis.
AGGREGATE_FUNCTIONS: frozenset[str] = frozenset(
    {"count", "sum", "avg", "min", "max", "stddev", "variance", "median"}
)


#: Ranking/navigation functions that are only valid with an ``OVER`` clause.
#: Windowed aggregates (``sum(x) OVER (...)``) reuse AGGREGATE_FUNCTIONS.
WINDOW_FUNCTIONS: frozenset[str] = frozenset(
    {"row_number", "rank", "dense_rank", "lag", "lead"}
)


def is_aggregate_call(node: SqlNode) -> bool:
    """Return True when ``node`` is a call to an aggregate function."""
    return isinstance(node, FunctionCall) and node.lower_name in AGGREGATE_FUNCTIONS


def is_window_call(node: SqlNode) -> bool:
    """Return True when ``node`` is a window function application."""
    return isinstance(node, WindowCall)


def contains_window(node: SqlNode) -> bool:
    """Return True when any descendant of ``node`` is a window call."""
    return any(isinstance(descendant, WindowCall) for descendant in node.walk())


def contains_aggregate(node: SqlNode) -> bool:
    """Return True when any descendant of ``node`` is a *group* aggregate call.

    A windowed aggregate (``sum(x) OVER (...)``) is not a group aggregate —
    the wrapped call is skipped — but its argument and specification
    expressions are still searched, so ``sum(count(*)) OVER (...)`` correctly
    reports the inner ``count(*)``.
    """
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, WindowCall):
            stack.extend(current.call.args)
            stack.extend(current.spec.partition_by)
            stack.extend(item.expr for item in current.spec.order_by)
            continue
        if is_aggregate_call(current):
            return True
        stack.extend(current.children())
    return False
