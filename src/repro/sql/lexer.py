"""A hand-written SQL lexer.

The lexer converts a SQL string into a list of :class:`~repro.sql.tokens.Token`
objects.  It supports:

* single-quoted string literals with ``''`` escaping,
* double-quoted identifiers,
* integer and floating point literals (including scientific notation),
* line comments (``-- ...``) and block comments (``/* ... */``),
* named parameters (``:name``) and positional parameters (``?``),
* the operator set required by the PI2 query workloads.
"""

from __future__ import annotations

from repro.errors import SqlLexError
from repro.sql.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenType,
)


class Lexer:
    """Tokenizes a SQL string.

    Usage::

        tokens = Lexer("SELECT a FROM t").tokenize()
    """

    def __init__(self, text: str) -> None:
        self.text = text
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> list[Token]:
        """Return the full token list, terminated by an EOF token."""
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.type is TokenType.EOF:
                return tokens

    # ------------------------------------------------------------------ #
    # Internal machinery
    # ------------------------------------------------------------------ #

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self.text):
            return ""
        return self.text[index]

    def _advance(self, count: int = 1) -> str:
        consumed = self.text[self._pos : self._pos + count]
        for ch in consumed:
            if ch == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._pos += count
        return consumed

    def _error(self, message: str) -> SqlLexError:
        return SqlLexError(message, self._pos, self._line, self._column)

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self._pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self._pos < len(self.text):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise self._error("Unterminated block comment")
            else:
                return

    def _make_token(self, token_type: TokenType, value: str, position: int, line: int, column: int) -> Token:
        return Token(token_type, value, position, line, column)

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        position, line, column = self._pos, self._line, self._column
        if self._pos >= len(self.text):
            return self._make_token(TokenType.EOF, "", position, line, column)

        ch = self._peek()

        if ch == "'":
            return self._lex_string(position, line, column)
        if ch == '"':
            return self._lex_quoted_identifier(position, line, column)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number(position, line, column)
        if ch.isalpha() or ch == "_":
            return self._lex_word(position, line, column)
        if ch == ":" and (self._peek(1).isalpha() or self._peek(1) == "_"):
            return self._lex_parameter(position, line, column)
        if ch == "?":
            self._advance()
            return self._make_token(TokenType.PARAMETER, "?", position, line, column)
        if ch == ",":
            self._advance()
            return self._make_token(TokenType.COMMA, ",", position, line, column)
        if ch == ".":
            self._advance()
            return self._make_token(TokenType.DOT, ".", position, line, column)
        if ch == "(":
            self._advance()
            return self._make_token(TokenType.LPAREN, "(", position, line, column)
        if ch == ")":
            self._advance()
            return self._make_token(TokenType.RPAREN, ")", position, line, column)
        if ch == ";":
            self._advance()
            return self._make_token(TokenType.SEMICOLON, ";", position, line, column)

        for op in MULTI_CHAR_OPERATORS:
            if self.text.startswith(op, self._pos):
                self._advance(len(op))
                return self._make_token(TokenType.OPERATOR, op, position, line, column)
        if ch in SINGLE_CHAR_OPERATORS:
            self._advance()
            return self._make_token(TokenType.OPERATOR, ch, position, line, column)

        raise self._error(f"Unexpected character {ch!r}")

    def _lex_string(self, position: int, line: int, column: int) -> Token:
        self._advance()  # opening quote
        parts: list[str] = []
        while True:
            if self._pos >= len(self.text):
                raise self._error("Unterminated string literal")
            ch = self._peek()
            if ch == "'":
                if self._peek(1) == "'":
                    parts.append("'")
                    self._advance(2)
                    continue
                self._advance()
                break
            parts.append(ch)
            self._advance()
        return self._make_token(TokenType.STRING, "".join(parts), position, line, column)

    def _lex_quoted_identifier(self, position: int, line: int, column: int) -> Token:
        self._advance()  # opening quote
        parts: list[str] = []
        while True:
            if self._pos >= len(self.text):
                raise self._error("Unterminated quoted identifier")
            ch = self._peek()
            if ch == '"':
                if self._peek(1) == '"':
                    parts.append('"')
                    self._advance(2)
                    continue
                self._advance()
                break
            parts.append(ch)
            self._advance()
        return self._make_token(TokenType.QUOTED_IDENTIFIER, "".join(parts), position, line, column)

    def _lex_number(self, position: int, line: int, column: int) -> Token:
        start = self._pos
        is_float = False
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1) != ".":
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit() or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.text[start : self._pos]
        token_type = TokenType.FLOAT if is_float else TokenType.INTEGER
        return self._make_token(token_type, text, position, line, column)

    def _lex_word(self, position: int, line: int, column: int) -> Token:
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        word = self.text[start : self._pos]
        upper = word.upper()
        if upper in KEYWORDS:
            return self._make_token(TokenType.KEYWORD, upper, position, line, column)
        return self._make_token(TokenType.IDENTIFIER, word, position, line, column)

    def _lex_parameter(self, position: int, line: int, column: int) -> Token:
        self._advance()  # ':'
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        name = self.text[start : self._pos]
        if not name:
            raise self._error("Empty parameter name after ':'")
        return self._make_token(TokenType.PARAMETER, name, position, line, column)


def tokenize(text: str) -> list[Token]:
    """Convenience wrapper: tokenize ``text`` and return the token list."""
    return Lexer(text).tokenize()
