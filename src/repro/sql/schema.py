"""Relational schema metadata shared by the engine, the analyzer and the mapper.

The mapping layer (``repro.mapping``) chooses visualizations from the *data
types and statistical roles* of result columns, so the schema model carries a
visualization-oriented classification (:class:`AttributeRole`) alongside the
storage type (:class:`DataType`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable

from repro.errors import CatalogError


class DataType(Enum):
    """Storage type of a column."""

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"
    DATE = "date"
    NULL = "null"

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INTEGER, DataType.FLOAT)

    @classmethod
    def of_value(cls, value: Any) -> "DataType":
        """Infer the storage type of a Python value."""
        if value is None:
            return cls.NULL
        if isinstance(value, bool):
            return cls.BOOLEAN
        if isinstance(value, int):
            return cls.INTEGER
        if isinstance(value, float):
            return cls.FLOAT
        if isinstance(value, str) and _looks_like_date(value):
            return cls.DATE
        return cls.TEXT

    @staticmethod
    def unify(first: "DataType", second: "DataType") -> "DataType":
        """Least upper bound of two types (used when scanning column values)."""
        if first is second:
            return first
        if DataType.NULL in (first, second):
            return second if first is DataType.NULL else first
        numeric = {DataType.INTEGER, DataType.FLOAT}
        if first in numeric and second in numeric:
            return DataType.FLOAT
        if DataType.DATE in (first, second) and DataType.TEXT in (first, second):
            return DataType.TEXT
        return DataType.TEXT


def _looks_like_date(value: str) -> bool:
    """Cheap ISO-date check (YYYY-MM-DD), enough for the demo datasets."""
    if len(value) != 10 or value[4] != "-" or value[7] != "-":
        return False
    year, month, day = value[:4], value[5:7], value[8:]
    return year.isdigit() and month.isdigit() and day.isdigit()


class AttributeRole(Enum):
    """Visualization role of an attribute, following Bertin's data typology."""

    QUANTITATIVE = "quantitative"
    ORDINAL = "ordinal"
    NOMINAL = "nominal"
    TEMPORAL = "temporal"

    @classmethod
    def from_data_type(cls, data_type: DataType, distinct_count: int | None = None) -> "AttributeRole":
        """Default role for a storage type.

        Low-cardinality integers are treated as ordinal (they behave like
        categories in charts), everything else numeric is quantitative.
        """
        if data_type is DataType.DATE:
            return cls.TEMPORAL
        if data_type in (DataType.TEXT, DataType.BOOLEAN):
            return cls.NOMINAL
        if data_type.is_numeric:
            if distinct_count is not None and data_type is DataType.INTEGER and distinct_count <= 12:
                return cls.ORDINAL
            return cls.QUANTITATIVE
        return cls.NOMINAL


@dataclass(frozen=True)
class ColumnSchema:
    """Schema of one column: name, storage type and visualization role."""

    name: str
    data_type: DataType
    role: AttributeRole | None = None

    def resolved_role(self) -> AttributeRole:
        if self.role is not None:
            return self.role
        return AttributeRole.from_data_type(self.data_type)


@dataclass(frozen=True)
class TableSchema:
    """Schema of one table."""

    name: str
    columns: tuple[ColumnSchema, ...] = field(default_factory=tuple)

    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def column(self, name: str) -> ColumnSchema:
        for column in self.columns:
            if column.name == name:
                return column
        raise CatalogError(f"Table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(column.name == name for column in self.columns)

    @classmethod
    def from_pairs(cls, name: str, pairs: Iterable[tuple[str, DataType]]) -> "TableSchema":
        return cls(name=name, columns=tuple(ColumnSchema(c, t) for c, t in pairs))


@dataclass(frozen=True)
class ResultSchema:
    """Schema of a query result: ordered column schemas."""

    columns: tuple[ColumnSchema, ...]

    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def column(self, name: str) -> ColumnSchema:
        for column in self.columns:
            if column.name == name:
                return column
        raise CatalogError(f"Result has no column {name!r}")

    def __len__(self) -> int:
        return len(self.columns)
