"""Recursive-descent parser for the SQL dialect used by the PI2 reproduction.

The grammar covers the query shapes that appear in the paper's workloads:
projection lists with aliases and aggregates, FROM with joins and derived
tables, WHERE with boolean/comparison/BETWEEN/IN/LIKE/EXISTS predicates and
correlated subqueries, GROUP BY / HAVING, ORDER BY, LIMIT/OFFSET, CTEs and set
operations (UNION / INTERSECT / EXCEPT).

Only read-only ``SELECT`` statements are supported — PI2 operates on analysis
query logs, which are selects by construction.
"""

from __future__ import annotations

from repro.errors import SqlParseError
from repro.sql.ast_nodes import (
    BetweenOp,
    BinaryOp,
    Case,
    CaseWhen,
    Cast,
    ColumnRef,
    CommonTableExpr,
    Exists,
    FunctionCall,
    InList,
    InSubquery,
    IsNull,
    Join,
    Literal,
    OrderItem,
    Parameter,
    ScalarSubquery,
    Select,
    SelectItem,
    SetOperation,
    SqlNode,
    Star,
    SubqueryRef,
    TableRef,
    UnaryOp,
    WindowCall,
    WindowFrame,
    WindowSpec,
)
from repro.sql.lexer import tokenize
from repro.sql.tokens import Token, TokenType


class Parser:
    """Parses a token stream into a :class:`~repro.sql.ast_nodes.Select` AST."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------ #
    # Token helpers
    # ------------------------------------------------------------------ #

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> SqlParseError:
        token = self._peek()
        return SqlParseError(f"{message}, found {token}", token.line, token.column)

    def _expect_keyword(self, *names: str) -> Token:
        token = self._peek()
        if not token.is_keyword(*names):
            raise self._error(f"Expected keyword {' or '.join(names)}")
        return self._advance()

    def _expect(self, token_type: TokenType) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise self._error(f"Expected {token_type.name}")
        return self._advance()

    def _accept_keyword(self, *names: str) -> bool:
        if self._peek().is_keyword(*names):
            self._advance()
            return True
        return False

    def _accept(self, token_type: TokenType) -> bool:
        if self._peek().type is token_type:
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #

    def parse_statement(self) -> SqlNode:
        """Parse a single statement (SELECT, possibly with CTEs/set ops)."""
        node = self._parse_query_expression()
        self._accept(TokenType.SEMICOLON)
        if self._peek().type is not TokenType.EOF:
            raise self._error("Unexpected trailing input")
        return node

    def parse_statements(self) -> list[SqlNode]:
        """Parse a semicolon-separated list of statements."""
        statements: list[SqlNode] = []
        while self._peek().type is not TokenType.EOF:
            statements.append(self._parse_query_expression())
            while self._accept(TokenType.SEMICOLON):
                pass
        return statements

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def _parse_query_expression(self) -> SqlNode:
        ctes: list[CommonTableExpr] = []
        if self._accept_keyword("WITH"):
            ctes = self._parse_cte_list()
        node = self._parse_set_operation()
        if ctes:
            if isinstance(node, Select):
                node = Select(
                    select_items=node.select_items,
                    from_clause=node.from_clause,
                    where=node.where,
                    group_by=node.group_by,
                    having=node.having,
                    order_by=node.order_by,
                    limit=node.limit,
                    offset=node.offset,
                    distinct=node.distinct,
                    ctes=ctes,
                )
            else:
                raise self._error("WITH clause must precede a SELECT statement")
        return node

    def _parse_cte_list(self) -> list[CommonTableExpr]:
        ctes: list[CommonTableExpr] = []
        while True:
            name = self._parse_identifier("CTE name")
            columns: list[str] = []
            if self._accept(TokenType.LPAREN):
                while True:
                    columns.append(self._parse_identifier("CTE column"))
                    if not self._accept(TokenType.COMMA):
                        break
                self._expect(TokenType.RPAREN)
            self._expect_keyword("AS")
            self._expect(TokenType.LPAREN)
            query = self._parse_set_operation()
            self._expect(TokenType.RPAREN)
            if not isinstance(query, Select):
                raise self._error("CTE body must be a SELECT")
            ctes.append(CommonTableExpr(name=name, query=query, columns=columns))
            if not self._accept(TokenType.COMMA):
                return ctes

    def _parse_set_operation(self) -> SqlNode:
        left = self._parse_select()
        while self._peek().is_keyword("UNION", "INTERSECT", "EXCEPT"):
            op = self._advance().value
            is_all = self._accept_keyword("ALL")
            self._accept_keyword("DISTINCT")
            right = self._parse_select()
            left = SetOperation(op=op, left=left, right=right, all=is_all)
        return left

    def _parse_select(self) -> Select:
        self._expect_keyword("SELECT")
        distinct = False
        if self._accept_keyword("DISTINCT"):
            distinct = True
        else:
            self._accept_keyword("ALL")

        select_items = [self._parse_select_item()]
        while self._accept(TokenType.COMMA):
            select_items.append(self._parse_select_item())

        from_clause: SqlNode | None = None
        if self._accept_keyword("FROM"):
            from_clause = self._parse_from()

        where: SqlNode | None = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()

        group_by: list[SqlNode] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_expression())
            while self._accept(TokenType.COMMA):
                group_by.append(self._parse_expression())

        having: SqlNode | None = None
        if self._accept_keyword("HAVING"):
            having = self._parse_expression()

        order_by: list[OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept(TokenType.COMMA):
                order_by.append(self._parse_order_item())

        limit: int | None = None
        offset: int | None = None
        if self._accept_keyword("LIMIT"):
            limit = self._parse_int_literal("LIMIT")
            if self._accept_keyword("OFFSET"):
                offset = self._parse_int_literal("OFFSET")
        elif self._accept_keyword("OFFSET"):
            offset = self._parse_int_literal("OFFSET")

        return Select(
            select_items=select_items,
            from_clause=from_clause,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_int_literal(self, context: str) -> int:
        token = self._peek()
        if token.type is not TokenType.INTEGER:
            raise self._error(f"{context} requires an integer literal")
        self._advance()
        return int(token.value)

    def _parse_select_item(self) -> SelectItem:
        if self._peek().is_operator("*"):
            self._advance()
            return SelectItem(expr=Star())
        expr = self._parse_expression()
        alias: str | None = None
        if self._accept_keyword("AS"):
            alias = self._parse_identifier("alias")
        elif self._peek().type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER):
            alias = self._advance().value
        return SelectItem(expr=expr, alias=alias)

    def _parse_order_item(self, nulls_smallest: bool = False) -> OrderItem:
        """Parse one ORDER BY item.

        ``nulls_smallest`` selects the default NULL placement when no NULLS
        clause is given: window specifications follow SQL's (and SQLite's)
        NULLs-sort-smallest convention — first ascending, last descending —
        because window *values* depend on it; a query-level ORDER BY keeps
        the engine's historical NULLS LAST default.
        """
        expr = self._parse_expression()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        nulls_last = descending if nulls_smallest else True
        if self._accept_keyword("NULLS"):
            if self._accept_keyword("FIRST"):
                nulls_last = False
            else:
                self._expect_keyword("LAST")
                nulls_last = True
        return OrderItem(expr=expr, descending=descending, nulls_last=nulls_last)

    def _parse_identifier(self, context: str) -> str:
        token = self._peek()
        if token.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER):
            self._advance()
            return token.value
        raise self._error(f"Expected {context}")

    # ------------------------------------------------------------------ #
    # FROM clause
    # ------------------------------------------------------------------ #

    def _parse_from(self) -> SqlNode:
        left = self._parse_table_factor()
        while True:
            join_type = self._parse_join_type()
            if join_type is None:
                if self._accept(TokenType.COMMA):
                    right = self._parse_table_factor()
                    left = Join(left=left, right=right, join_type="CROSS")
                    continue
                return left
            right = self._parse_table_factor()
            condition: SqlNode | None = None
            using: list[str] = []
            if join_type != "CROSS":
                if self._accept_keyword("ON"):
                    condition = self._parse_expression()
                elif self._accept_keyword("USING"):
                    self._expect(TokenType.LPAREN)
                    while True:
                        using.append(self._parse_identifier("USING column"))
                        if not self._accept(TokenType.COMMA):
                            break
                    self._expect(TokenType.RPAREN)
            left = Join(left=left, right=right, join_type=join_type, condition=condition, using=using)

    def _parse_join_type(self) -> str | None:
        if self._accept_keyword("CROSS"):
            self._expect_keyword("JOIN")
            return "CROSS"
        if self._accept_keyword("INNER"):
            self._expect_keyword("JOIN")
            return "INNER"
        for direction in ("LEFT", "RIGHT", "FULL"):
            if self._accept_keyword(direction):
                self._accept_keyword("OUTER")
                self._expect_keyword("JOIN")
                return direction
        if self._accept_keyword("JOIN"):
            return "INNER"
        return None

    def _parse_table_factor(self) -> SqlNode:
        if self._accept(TokenType.LPAREN):
            query = self._parse_set_operation()
            self._expect(TokenType.RPAREN)
            self._accept_keyword("AS")
            alias = self._parse_identifier("derived table alias")
            if not isinstance(query, Select):
                raise self._error("Derived tables must wrap a SELECT")
            return SubqueryRef(query=query, alias=alias)
        name = self._parse_identifier("table name")
        alias: str | None = None
        if self._accept_keyword("AS"):
            alias = self._parse_identifier("table alias")
        elif self._peek().type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER):
            alias = self._advance().value
        return TableRef(name=name, alias=alias)

    # ------------------------------------------------------------------ #
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------ #

    def _parse_expression(self) -> SqlNode:
        return self._parse_or()

    def _parse_or(self) -> SqlNode:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            right = self._parse_and()
            left = BinaryOp(op="OR", left=left, right=right)
        return left

    def _parse_and(self) -> SqlNode:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            right = self._parse_not()
            left = BinaryOp(op="AND", left=left, right=right)
        return left

    def _parse_not(self) -> SqlNode:
        if self._accept_keyword("NOT"):
            return UnaryOp(op="NOT", operand=self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> SqlNode:
        left = self._parse_comparison()
        negated = False
        if self._peek().is_keyword("NOT") and self._peek(1).is_keyword("BETWEEN", "IN", "LIKE"):
            self._advance()
            negated = True
        if self._accept_keyword("BETWEEN"):
            low = self._parse_comparison()
            self._expect_keyword("AND")
            high = self._parse_comparison()
            return BetweenOp(expr=left, low=low, high=high, negated=negated)
        if self._accept_keyword("IN"):
            return self._parse_in(left, negated)
        if self._accept_keyword("LIKE"):
            pattern = self._parse_comparison()
            node: SqlNode = BinaryOp(op="LIKE", left=left, right=pattern)
            if negated:
                node = UnaryOp(op="NOT", operand=node)
            return node
        if self._accept_keyword("IS"):
            is_negated = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return IsNull(expr=left, negated=is_negated)
        return left

    def _parse_in(self, left: SqlNode, negated: bool) -> SqlNode:
        self._expect(TokenType.LPAREN)
        if self._peek().is_keyword("SELECT", "WITH"):
            query = self._parse_query_expression()
            self._expect(TokenType.RPAREN)
            if not isinstance(query, Select):
                raise self._error("IN subquery must be a SELECT")
            return InSubquery(expr=left, query=query, negated=negated)
        items = [self._parse_expression()]
        while self._accept(TokenType.COMMA):
            items.append(self._parse_expression())
        self._expect(TokenType.RPAREN)
        return InList(expr=left, items=items, negated=negated)

    def _parse_comparison(self) -> SqlNode:
        left = self._parse_additive()
        while self._peek().is_operator("=", "<>", "!=", "<", "<=", ">", ">="):
            op = self._advance().value
            if op == "!=":
                op = "<>"
            right = self._parse_additive()
            left = BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_additive(self) -> SqlNode:
        left = self._parse_multiplicative()
        while self._peek().is_operator("+", "-", "||"):
            op = self._advance().value
            right = self._parse_multiplicative()
            left = BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_multiplicative(self) -> SqlNode:
        left = self._parse_unary()
        while self._peek().is_operator("*", "/", "%"):
            op = self._advance().value
            right = self._parse_unary()
            left = BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_unary(self) -> SqlNode:
        if self._peek().is_operator("-", "+"):
            op = self._advance().value
            operand = self._parse_unary()
            # Fold signed numeric literals so that "-2.0" is a single Literal
            # node; Difftree merging then treats it like any other literal.
            if isinstance(operand, Literal) and isinstance(operand.value, (int, float)):
                value = operand.value if op == "+" else -operand.value
                return Literal(value)
            return UnaryOp(op=op, operand=operand)
        return self._parse_primary()

    def _parse_primary(self) -> SqlNode:
        token = self._peek()

        if token.type is TokenType.INTEGER:
            self._advance()
            return Literal(int(token.value))
        if token.type is TokenType.FLOAT:
            self._advance()
            return Literal(float(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.is_keyword("TRUE"):
            self._advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return Literal(False)
        if token.is_keyword("NULL"):
            self._advance()
            return Literal(None)
        if token.type is TokenType.PARAMETER:
            self._advance()
            return Parameter(token.value)
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("CAST"):
            return self._parse_cast()
        if token.is_keyword("EXISTS"):
            self._advance()
            self._expect(TokenType.LPAREN)
            query = self._parse_query_expression()
            self._expect(TokenType.RPAREN)
            if not isinstance(query, Select):
                raise self._error("EXISTS subquery must be a SELECT")
            return Exists(query=query)
        if token.type is TokenType.LPAREN:
            self._advance()
            if self._peek().is_keyword("SELECT", "WITH"):
                query = self._parse_query_expression()
                self._expect(TokenType.RPAREN)
                if not isinstance(query, Select):
                    raise self._error("Scalar subquery must be a SELECT")
                return ScalarSubquery(query=query)
            expr = self._parse_expression()
            self._expect(TokenType.RPAREN)
            return expr
        if token.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER) or token.is_keyword(
            "LEFT", "RIGHT"
        ):
            # LEFT/RIGHT are also scalar function names (string functions).
            return self._parse_identifier_expression()

        raise self._error("Expected expression")

    def _parse_identifier_expression(self) -> SqlNode:
        name = self._advance().value
        if self._peek().type is TokenType.LPAREN:
            return self._parse_function_call(name)
        if self._peek().type is TokenType.DOT:
            self._advance()
            if self._peek().is_operator("*"):
                self._advance()
                return Star(table=name)
            column = self._parse_identifier("column name")
            if self._peek().type is TokenType.LPAREN:
                # schema-qualified function call is not supported; treat as error
                raise self._error("Qualified function calls are not supported")
            return ColumnRef(name=column, table=name)
        return ColumnRef(name=name)

    def _parse_function_call(self, name: str) -> SqlNode:
        self._expect(TokenType.LPAREN)
        distinct = False
        args: list[SqlNode] = []
        if self._peek().type is TokenType.RPAREN:
            self._advance()
            return self._parse_over(FunctionCall(name=name, args=args, distinct=distinct))
        if self._accept_keyword("DISTINCT"):
            distinct = True
        if self._peek().is_operator("*"):
            self._advance()
            args.append(Star())
        else:
            args.append(self._parse_expression())
            while self._accept(TokenType.COMMA):
                args.append(self._parse_expression())
        self._expect(TokenType.RPAREN)
        return self._parse_over(FunctionCall(name=name, args=args, distinct=distinct))

    def _parse_over(self, call: FunctionCall) -> SqlNode:
        """Wrap ``call`` into a :class:`WindowCall` when an OVER clause follows."""
        if not self._accept_keyword("OVER"):
            return call
        self._expect(TokenType.LPAREN)
        partition_by: list[SqlNode] = []
        if self._accept_keyword("PARTITION"):
            self._expect_keyword("BY")
            partition_by.append(self._parse_expression())
            while self._accept(TokenType.COMMA):
                partition_by.append(self._parse_expression())
        order_by: list[OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item(nulls_smallest=True))
            while self._accept(TokenType.COMMA):
                order_by.append(self._parse_order_item(nulls_smallest=True))
        frame: WindowFrame | None = None
        if self._accept_keyword("ROWS"):
            frame = self._parse_frame()
        self._expect(TokenType.RPAREN)
        return WindowCall(
            call=call,
            spec=WindowSpec(partition_by=partition_by, order_by=order_by, frame=frame),
        )

    def _parse_frame(self) -> WindowFrame:
        if self._accept_keyword("BETWEEN"):
            start_kind, start_offset = self._parse_frame_bound()
            self._expect_keyword("AND")
            end_kind, end_offset = self._parse_frame_bound()
        else:
            # "ROWS <bound>" is shorthand for "ROWS BETWEEN <bound> AND CURRENT ROW".
            start_kind, start_offset = self._parse_frame_bound()
            end_kind, end_offset = "CURRENT_ROW", None
        return WindowFrame(
            start_kind=start_kind,
            end_kind=end_kind,
            start_offset=start_offset,
            end_offset=end_offset,
        )

    def _parse_frame_bound(self) -> tuple[str, int | None]:
        if self._accept_keyword("UNBOUNDED"):
            if self._accept_keyword("PRECEDING"):
                return "UNBOUNDED_PRECEDING", None
            self._expect_keyword("FOLLOWING")
            return "UNBOUNDED_FOLLOWING", None
        if self._accept_keyword("CURRENT"):
            self._expect_keyword("ROW")
            return "CURRENT_ROW", None
        offset = self._parse_int_literal("frame bound")
        if self._accept_keyword("PRECEDING"):
            return "PRECEDING", offset
        self._expect_keyword("FOLLOWING")
        return "FOLLOWING", offset

    def _parse_case(self) -> SqlNode:
        self._expect_keyword("CASE")
        whens: list[CaseWhen] = []
        while self._accept_keyword("WHEN"):
            condition = self._parse_expression()
            self._expect_keyword("THEN")
            result = self._parse_expression()
            whens.append(CaseWhen(condition=condition, result=result))
        if not whens:
            raise self._error("CASE requires at least one WHEN arm")
        else_result: SqlNode | None = None
        if self._accept_keyword("ELSE"):
            else_result = self._parse_expression()
        self._expect_keyword("END")
        return Case(whens=whens, else_result=else_result)

    def _parse_cast(self) -> SqlNode:
        self._expect_keyword("CAST")
        self._expect(TokenType.LPAREN)
        expr = self._parse_expression()
        self._expect_keyword("AS")
        target = self._parse_identifier("type name")
        self._expect(TokenType.RPAREN)
        return Cast(expr=expr, target_type=target.lower())


def parse(sql: str) -> SqlNode:
    """Parse a single SQL statement into an AST."""
    return Parser(tokenize(sql)).parse_statement()


def parse_select(sql: str) -> Select:
    """Parse a single SQL statement and require it to be a plain SELECT."""
    node = parse(sql)
    if isinstance(node, Select):
        return node
    raise SqlParseError(f"Expected a SELECT statement, got {type(node).__name__}")


def parse_many(sql: str) -> list[SqlNode]:
    """Parse a semicolon-separated script into a list of ASTs."""
    return Parser(tokenize(sql)).parse_statements()
