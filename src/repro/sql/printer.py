"""Render SQL ASTs back to SQL text.

Two entry points are provided:

* :func:`to_sql` — compact single-line rendering (useful for logging, hashing
  and round-trip tests).
* :func:`format_sql` — a pretty printer that places major clauses on their own
  lines, used by the notebook layer to display archived query logs.
"""

from __future__ import annotations

from repro.errors import SqlError
from repro.sql.ast_nodes import (
    BetweenOp,
    BinaryOp,
    Case,
    Cast,
    ColumnRef,
    CommonTableExpr,
    Exists,
    FunctionCall,
    InList,
    InSubquery,
    IsNull,
    Join,
    Literal,
    OrderItem,
    Parameter,
    ScalarSubquery,
    Select,
    SelectItem,
    SetOperation,
    SqlNode,
    Star,
    SubqueryRef,
    TableRef,
    UnaryOp,
    WindowCall,
    WindowFrame,
)

#: Binary operators that need surrounding spaces but no special casing.
_PLAIN_BINARY_OPS = {"+", "-", "*", "/", "%", "=", "<>", "<", "<=", ">", ">=", "||", "LIKE"}


def quote_string(value: str) -> str:
    """Quote a string literal, escaping embedded single quotes."""
    escaped = value.replace("'", "''")
    return f"'{escaped}'"


def render_literal(node: Literal) -> str:
    """Render a literal value as SQL text."""
    value = node.value
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    return quote_string(str(value))


def to_sql(node: SqlNode) -> str:
    """Render ``node`` as a single-line SQL string."""
    return _Renderer(pretty=False).render(node)


def format_sql(node: SqlNode) -> str:
    """Render ``node`` as a multi-line, indented SQL string."""
    return _Renderer(pretty=True).render(node)


class _Renderer:
    def __init__(self, pretty: bool) -> None:
        self._pretty = pretty

    def render(self, node: SqlNode, depth: int = 0) -> str:
        method = getattr(self, f"_render_{type(node).__name__.lower()}", None)
        if method is None:
            raise SqlError(f"Cannot render node of type {type(node).__name__}")
        return method(node, depth)

    # --- statement level ------------------------------------------------ #

    def _newline(self, depth: int) -> str:
        if self._pretty:
            return "\n" + "  " * depth
        return " "

    def _render_select(self, node: Select, depth: int) -> str:
        parts: list[str] = []
        if node.ctes:
            cte_sql = ", ".join(self._render_cte(cte, depth) for cte in node.ctes)
            parts.append(f"WITH {cte_sql}{self._newline(depth)}")
        select_kw = "SELECT DISTINCT" if node.distinct else "SELECT"
        items = ", ".join(self._render_select_item(item, depth) for item in node.select_items)
        parts.append(f"{select_kw} {items}")
        if node.from_clause is not None:
            parts.append(f"{self._newline(depth)}FROM {self.render(node.from_clause, depth)}")
        if node.where is not None:
            parts.append(f"{self._newline(depth)}WHERE {self.render(node.where, depth)}")
        if node.group_by:
            group = ", ".join(self.render(expr, depth) for expr in node.group_by)
            parts.append(f"{self._newline(depth)}GROUP BY {group}")
        if node.having is not None:
            parts.append(f"{self._newline(depth)}HAVING {self.render(node.having, depth)}")
        if node.order_by:
            order = ", ".join(self._render_orderitem(item, depth) for item in node.order_by)
            parts.append(f"{self._newline(depth)}ORDER BY {order}")
        if node.limit is not None:
            parts.append(f"{self._newline(depth)}LIMIT {node.limit}")
        if node.offset is not None:
            parts.append(f"{self._newline(depth)}OFFSET {node.offset}")
        return "".join(parts)

    def _render_cte(self, cte: CommonTableExpr, depth: int) -> str:
        columns = f" ({', '.join(cte.columns)})" if cte.columns else ""
        body = self.render(cte.query, depth + 1)
        return f"{cte.name}{columns} AS ({body})"

    def _render_setoperation(self, node: SetOperation, depth: int) -> str:
        keyword = node.op + (" ALL" if node.all else "")
        left = self.render(node.left, depth)
        right = self.render(node.right, depth)
        return f"{left}{self._newline(depth)}{keyword}{self._newline(depth)}{right}"

    def _render_select_item(self, item: SelectItem, depth: int) -> str:
        sql = self.render(item.expr, depth)
        if item.alias:
            sql += f" AS {item.alias}"
        return sql

    def _render_selectitem(self, item: SelectItem, depth: int) -> str:
        return self._render_select_item(item, depth)

    def _render_orderitem(self, item: OrderItem, depth: int) -> str:
        sql = self.render(item.expr, depth)
        if item.descending:
            sql += " DESC"
        if not item.nulls_last:
            sql += " NULLS FIRST"
        return sql

    # --- FROM clause ----------------------------------------------------- #

    def _render_tableref(self, node: TableRef, depth: int) -> str:
        if node.alias and node.alias != node.name:
            return f"{node.name} AS {node.alias}"
        return node.name

    def _render_subqueryref(self, node: SubqueryRef, depth: int) -> str:
        return f"({self.render(node.query, depth + 1)}) AS {node.alias}"

    def _render_join(self, node: Join, depth: int) -> str:
        left = self.render(node.left, depth)
        right = self.render(node.right, depth)
        if node.join_type == "CROSS":
            return f"{left} CROSS JOIN {right}"
        keyword = "JOIN" if node.join_type == "INNER" else f"{node.join_type} JOIN"
        sql = f"{left} {keyword} {right}"
        if node.condition is not None:
            sql += f" ON {self.render(node.condition, depth)}"
        elif node.using:
            sql += f" USING ({', '.join(node.using)})"
        return sql

    # --- expressions ------------------------------------------------------ #

    def _render_literal(self, node: Literal, depth: int) -> str:
        return render_literal(node)

    def _render_columnref(self, node: ColumnRef, depth: int) -> str:
        return node.qualified_name

    def _render_star(self, node: Star, depth: int) -> str:
        return f"{node.table}.*" if node.table else "*"

    def _render_parameter(self, node: Parameter, depth: int) -> str:
        return "?" if node.name == "?" else f":{node.name}"

    def _render_unaryop(self, node: UnaryOp, depth: int) -> str:
        operand = self.render(node.operand, depth)
        if node.op == "NOT":
            return f"NOT ({operand})"
        return f"{node.op}{operand}"

    def _render_binaryop(self, node: BinaryOp, depth: int) -> str:
        left = self.render(node.left, depth)
        right = self.render(node.right, depth)
        if node.op in ("AND", "OR"):
            left = self._maybe_paren(node.left, left)
            right = self._maybe_paren(node.right, right)
            return f"{left} {node.op} {right}"
        if node.op in _PLAIN_BINARY_OPS:
            return f"{left} {node.op} {right}"
        raise SqlError(f"Unknown binary operator {node.op!r}")

    def _maybe_paren(self, node: SqlNode, rendered: str) -> str:
        if isinstance(node, BinaryOp) and node.op in ("AND", "OR"):
            return f"({rendered})"
        return rendered

    def _render_betweenop(self, node: BetweenOp, depth: int) -> str:
        keyword = "NOT BETWEEN" if node.negated else "BETWEEN"
        return (
            f"{self.render(node.expr, depth)} {keyword} "
            f"{self.render(node.low, depth)} AND {self.render(node.high, depth)}"
        )

    def _render_inlist(self, node: InList, depth: int) -> str:
        keyword = "NOT IN" if node.negated else "IN"
        items = ", ".join(self.render(item, depth) for item in node.items)
        return f"{self.render(node.expr, depth)} {keyword} ({items})"

    def _render_insubquery(self, node: InSubquery, depth: int) -> str:
        keyword = "NOT IN" if node.negated else "IN"
        return f"{self.render(node.expr, depth)} {keyword} ({self.render(node.query, depth + 1)})"

    def _render_exists(self, node: Exists, depth: int) -> str:
        keyword = "NOT EXISTS" if node.negated else "EXISTS"
        return f"{keyword} ({self.render(node.query, depth + 1)})"

    def _render_scalarsubquery(self, node: ScalarSubquery, depth: int) -> str:
        return f"({self.render(node.query, depth + 1)})"

    def _render_isnull(self, node: IsNull, depth: int) -> str:
        keyword = "IS NOT NULL" if node.negated else "IS NULL"
        return f"{self.render(node.expr, depth)} {keyword}"

    def _render_functioncall(self, node: FunctionCall, depth: int) -> str:
        distinct = "DISTINCT " if node.distinct else ""
        args = ", ".join(self.render(arg, depth) for arg in node.args)
        return f"{node.name}({distinct}{args})"

    def _render_windowcall(self, node: "WindowCall", depth: int) -> str:
        call = self._render_functioncall(node.call, depth)
        spec = node.spec
        parts: list[str] = []
        if spec.partition_by:
            keys = ", ".join(self.render(expr, depth) for expr in spec.partition_by)
            parts.append(f"PARTITION BY {keys}")
        if spec.order_by:
            order = ", ".join(self._render_orderitem(item, depth) for item in spec.order_by)
            parts.append(f"ORDER BY {order}")
        if spec.frame is not None:
            parts.append(self._render_frame(spec.frame))
        return f"{call} OVER ({' '.join(parts)})"

    @staticmethod
    def _render_frame(frame: "WindowFrame") -> str:
        def bound(kind: str, offset: int | None) -> str:
            if kind == "UNBOUNDED_PRECEDING":
                return "UNBOUNDED PRECEDING"
            if kind == "UNBOUNDED_FOLLOWING":
                return "UNBOUNDED FOLLOWING"
            if kind == "CURRENT_ROW":
                return "CURRENT ROW"
            return f"{offset} {'PRECEDING' if kind == 'PRECEDING' else 'FOLLOWING'}"

        start = bound(frame.start_kind, frame.start_offset)
        end = bound(frame.end_kind, frame.end_offset)
        return f"ROWS BETWEEN {start} AND {end}"

    def _render_cast(self, node: Cast, depth: int) -> str:
        return f"CAST({self.render(node.expr, depth)} AS {node.target_type})"

    def _render_case(self, node: Case, depth: int) -> str:
        parts = ["CASE"]
        for arm in node.whens:
            parts.append(
                f"WHEN {self.render(arm.condition, depth)} THEN {self.render(arm.result, depth)}"
            )
        if node.else_result is not None:
            parts.append(f"ELSE {self.render(node.else_result, depth)}")
        parts.append("END")
        return " ".join(parts)
