"""Layout cost: how well the interface fits the available screen.

Implements the screen-size-aware part of the cost function: tabbed navigation
costs attention, charts that had to shrink cost readability, and a widget
panel that overflows the screen height costs scrolling.
"""

from __future__ import annotations

from repro.interface.layout import Layout, WIDGET_HEIGHT
from repro.interface.visualizations import Visualization
from repro.interface.widgets import Widget

#: Cost of switching to a tabbed layout (charts are no longer simultaneously visible).
TABS_COST = 1.5
#: Cost per chart beyond what fits in the first row (requires vertical scanning).
EXTRA_ROW_CHART_COST = 0.35
#: Cost per widget that does not fit the widget panel without scrolling.
WIDGET_OVERFLOW_COST = 0.3
#: Cost per chart when the layout had to shrink charts below their preferred width.
SHRUNK_CHART_COST = 0.25


def layout_cost(
    layout: Layout, visualizations: list[Visualization], widgets: list[Widget]
) -> float:
    """Cost of one computed layout."""
    cost = 0.0
    if layout.uses_tabs:
        cost += TABS_COST

    per_row = max(layout.charts_per_row(), 1)
    overflow_charts = max(0, len(visualizations) - per_row)
    cost += overflow_charts * EXTRA_ROW_CHART_COST

    panel_capacity = max(1, layout.screen.height // WIDGET_HEIGHT)
    overflow_widgets = max(0, len(widgets) - panel_capacity)
    cost += overflow_widgets * WIDGET_OVERFLOW_COST

    for vis in visualizations:
        try:
            placement = layout.placement_for(vis.vis_id)
        except Exception:  # noqa: BLE001 - unplaced charts are a modelling bug, cost heavily
            cost += 1.0
            continue
        if placement.width < vis.width:
            cost += SHRUNK_CHART_COST
    return cost
