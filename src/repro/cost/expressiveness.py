"""Expressiveness term of the cost model.

The generated interface must be able to re-express every query of the input
log ("return the lowest cost interface I that can express all queries in Q").
This module measures the fraction of input queries each Difftree can
instantiate and converts misses into a large cost penalty; it also reports the
size of the binding space as a (log-scaled) generality measure used by
ablation benchmarks.
"""

from __future__ import annotations

import math

from repro.difftree.builder import DifftreeForest
from repro.difftree.instantiate import binding_space_size

#: Cost added per input query the interface cannot express.
MISSING_QUERY_PENALTY = 10.0
#: Cap on the binding enumeration used per coverage check.
COVERAGE_ENUMERATION_LIMIT = 256
#: Trees whose binding space exceeds this are counted as not covering their
#: queries without enumerating: such tangles of choice nodes are terrible
#: interfaces anyway, and the penalty steers the search away from them cheaply.
BINDING_SPACE_CAP = 256


#: Mapping used to memoize per-tree candidate sets across the many forest
#: states a search evaluates.  Keys are structural (choice-id-insensitive)
#: tree signatures, so equal trees rebuilt along different action sequences —
#: including merges replayed with fresh choice ids — and trees shared by
#: identity between sibling forest states all share one entry, and the cache
#: holds no tree objects alive.  Coverage is a deterministic function of
#: structure alone (binding enumeration never looks at choice ids), which
#: makes the sharing safe.  Any dict-like mapping works; the cost model
#: passes a bounded LruDict.
CoverageCache = dict


def _tree_candidate_sqls(tree, limit: int, cache: CoverageCache | None) -> frozenset[str] | None:
    """Canonical SQL of every query the tree can instantiate (None = too many).

    Enumerating the binding space once per tree — instead of once per
    (tree, target query) pair as ``find_binding_for`` does — turns the
    coverage check into set membership.  Canonical SQL strings are a precise
    equality proxy: print-then-parse is the identity, so equal strings imply
    equal canonical ASTs and vice versa.  The set is cached by the tree's
    structural signature (bindings never look at choice ids).
    """
    from repro.difftree.canonical import canonical_sql
    from repro.difftree.instantiate import enumerate_bindings, instantiate
    from repro.difftree.signatures import structural_signature

    key = None
    if cache is not None:
        key = structural_signature(tree)
        if key in cache:
            return cache[key]
    if binding_space_size(tree) > BINDING_SPACE_CAP:
        candidates: frozenset[str] | None = None
    else:
        rendered: set[str] = set()
        for bindings in enumerate_bindings(tree, limit=limit):
            try:
                candidate = instantiate(tree, bindings)
                rendered.add(canonical_sql(candidate))
            except Exception:  # noqa: BLE001 - skip broken/unrenderable bindings
                continue
        candidates = frozenset(rendered)
    if cache is not None:
        cache[key] = candidates
    return candidates


def _query_covered(tree, query, limit: int, cache: CoverageCache | None) -> bool:
    candidates = _tree_candidate_sqls(tree, limit, cache)
    if candidates is None:
        return False
    from repro.difftree.canonical import canonical_sql

    return canonical_sql(query) in candidates


def tree_covered_count(
    tree,
    forest: DifftreeForest,
    member_indices: list[int],
    limit: int = COVERAGE_ENUMERATION_LIMIT,
    cache: CoverageCache | None = None,
) -> int:
    """How many of the tree's member queries it can express.

    This is the per-tree piece of the coverage computation: the forest-level
    ratio/cost recompose from these counts, so an incremental evaluation only
    pays for the trees an action changed.
    """
    covered = 0
    for query_index in member_indices:
        if _query_covered(tree, forest.queries[query_index], limit, cache):
            covered += 1
    return covered


def forest_covered_count(
    forest: DifftreeForest,
    limit: int = COVERAGE_ENUMERATION_LIMIT,
    cache: CoverageCache | None = None,
) -> int:
    """Input queries expressible by the tree that owns them, forest-wide."""
    covered = 0
    for tree_index, member_indices in enumerate(forest.members):
        covered += tree_covered_count(
            forest.trees[tree_index], forest, member_indices, limit, cache
        )
    return covered


def coverage_ratio(
    forest: DifftreeForest,
    limit: int = COVERAGE_ENUMERATION_LIMIT,
    cache: CoverageCache | None = None,
) -> float:
    """Fraction of the input query log expressible by the forest's trees."""
    if not forest.queries:
        return 1.0
    return forest_covered_count(forest, limit, cache) / len(forest.queries)


def cost_from_covered(covered: int, total: int) -> float:
    """The expressiveness penalty for ``covered`` of ``total`` queries.

    The single home of the missing-query formula — the standalone
    :func:`expressiveness_cost` and the cost model's decomposed evaluation
    both go through it, so the two paths cannot drift.
    """
    if total == 0:
        return 0.0
    ratio = covered / total
    missing = round((1.0 - ratio) * total)
    return missing * MISSING_QUERY_PENALTY


def expressiveness_cost(
    forest: DifftreeForest,
    limit: int = COVERAGE_ENUMERATION_LIMIT,
    cache: CoverageCache | None = None,
) -> float:
    """Penalty for input queries the interface cannot re-express."""
    if not forest.queries:
        return 0.0
    return cost_from_covered(forest_covered_count(forest, limit, cache), len(forest.queries))


def generality_score(forest: DifftreeForest) -> float:
    """Log-scaled size of the space of queries the interface can express.

    Choice nodes generalize the input queries (a slider expresses infinitely
    many literal values; here we count the discrete binding space).  The score
    is informational — the cost model does not reward generality directly, but
    the ablation benchmarks report it.
    """
    total = 0.0
    for tree in forest.trees:
        total += math.log2(max(binding_space_size(tree), 1))
    return total
