"""Expressiveness term of the cost model.

The generated interface must be able to re-express every query of the input
log ("return the lowest cost interface I that can express all queries in Q").
This module measures the fraction of input queries each Difftree can
instantiate and converts misses into a large cost penalty; it also reports the
size of the binding space as a (log-scaled) generality measure used by
ablation benchmarks.
"""

from __future__ import annotations

import math

from repro.difftree.builder import DifftreeForest
from repro.difftree.instantiate import binding_space_size, find_binding_for

#: Cost added per input query the interface cannot express.
MISSING_QUERY_PENALTY = 10.0
#: Cap on the binding enumeration used per coverage check.
COVERAGE_ENUMERATION_LIMIT = 256
#: Trees whose binding space exceeds this are counted as not covering their
#: queries without enumerating: such tangles of choice nodes are terrible
#: interfaces anyway, and the penalty steers the search away from them cheaply.
BINDING_SPACE_CAP = 256


#: Cache type used to memoize per-(tree, query) coverage checks across the many
#: forest states a search evaluates.  Keys are (id(tree), query index); the
#: cached tree object is stored alongside the result to keep the id stable.
CoverageCache = dict


def _query_covered(
    tree, query, query_index: int, limit: int, cache: CoverageCache | None
) -> bool:
    if cache is not None:
        key = (id(tree), query_index)
        if key in cache:
            return cache[key][1]
    if binding_space_size(tree) > BINDING_SPACE_CAP:
        covered = False
    else:
        covered = find_binding_for(tree, query, limit=limit) is not None
    if cache is not None:
        cache[(id(tree), query_index)] = (tree, covered)
    return covered


def coverage_ratio(
    forest: DifftreeForest,
    limit: int = COVERAGE_ENUMERATION_LIMIT,
    cache: CoverageCache | None = None,
) -> float:
    """Fraction of the input query log expressible by the forest's trees."""
    if not forest.queries:
        return 1.0
    covered = 0
    for tree_index, member_indices in enumerate(forest.members):
        tree = forest.trees[tree_index]
        for query_index in member_indices:
            if _query_covered(tree, forest.queries[query_index], query_index, limit, cache):
                covered += 1
    return covered / len(forest.queries)


def expressiveness_cost(
    forest: DifftreeForest,
    limit: int = COVERAGE_ENUMERATION_LIMIT,
    cache: CoverageCache | None = None,
) -> float:
    """Penalty for input queries the interface cannot re-express."""
    ratio = coverage_ratio(forest, limit=limit, cache=cache)
    missing = round((1.0 - ratio) * len(forest.queries))
    return missing * MISSING_QUERY_PENALTY


def generality_score(forest: DifftreeForest) -> float:
    """Log-scaled size of the space of queries the interface can express.

    Choice nodes generalize the input queries (a slider expresses infinitely
    many literal values; here we count the discrete binding space).  The score
    is informational — the cost model does not reward generality directly, but
    the ablation benchmarks report it.
    """
    total = 0.0
    for tree in forest.trees:
        total += math.log2(max(binding_space_size(tree), 1))
    return total
