"""Interface cost model C(I, Q) and its components."""

from repro.cost.expressiveness import (
    COVERAGE_ENUMERATION_LIMIT,
    MISSING_QUERY_PENALTY,
    coverage_ratio,
    expressiveness_cost,
    generality_score,
)
from repro.cost.layout_costs import layout_cost
from repro.cost.model import CostBreakdown, CostModel, CostWeights
from repro.cost.widget_costs import (
    INTERACTION_TYPE_COSTS,
    WIDGET_TYPE_COSTS,
    interaction_cost,
    total_interaction_cost,
    total_widget_cost,
    widget_cost,
)

__all__ = [
    "COVERAGE_ENUMERATION_LIMIT",
    "MISSING_QUERY_PENALTY",
    "coverage_ratio",
    "expressiveness_cost",
    "generality_score",
    "layout_cost",
    "CostBreakdown",
    "CostModel",
    "CostWeights",
    "INTERACTION_TYPE_COSTS",
    "WIDGET_TYPE_COSTS",
    "interaction_cost",
    "total_interaction_cost",
    "total_widget_cost",
    "widget_cost",
]
