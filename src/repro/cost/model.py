"""The interface cost model C(I, Q).

The cost of a candidate interface is a weighted sum of four terms:

* **visualization cost** — number and quality of charts (tables and
  single-column fallbacks are penalized; so are charts that stack a
  high-cardinality nominal field on the color channel),
* **interaction cost** — widgets plus visualization interactions, priced by
  :mod:`repro.cost.widget_costs` (direct manipulation < simple widgets <
  option lists < tabs),
* **layout cost** — how well the components fit the target screen
  (:mod:`repro.cost.layout_costs`),
* **expressiveness cost** — a large penalty for every input query the
  interface can no longer express (:mod:`repro.cost.expressiveness`).

The search layer minimizes this cost over Difftree structures; the ablation
benchmarks switch individual terms off to show each one's effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cost.expressiveness import expressiveness_cost
from repro.cost.layout_costs import layout_cost
from repro.cost.widget_costs import total_interaction_cost, total_widget_cost
from repro.interface.interface import Interface
from repro.interface.visualizations import Channel, ChartType
from repro.sql.ast_nodes import Select

#: Base cost per chart; keeps the model from multiplying views without benefit.
PER_CHART_COST = 1.0
#: Extra cost for fallback chart types.
TABLE_CHART_COST = 1.0
HISTOGRAM_CHART_COST = 0.4
#: Extra cost when a chart maps a high-cardinality nominal field to color
#: (the "visually noisy" state breakdown of walkthrough Step 3).
NOISY_COLOR_COST = 0.5
NOISY_COLOR_CARDINALITY = 10
#: Extra cost for every chart whose spec duplicates an earlier chart's.
DUPLICATE_CHART_COST = 0.8


@dataclass(frozen=True)
class CostWeights:
    """Relative weights of the four cost terms."""

    visualization: float = 1.0
    interaction: float = 1.0
    layout: float = 1.0
    expressiveness: float = 1.0


@dataclass
class CostBreakdown:
    """The evaluated cost of one candidate interface."""

    visualization: float
    interaction: float
    layout: float
    expressiveness: float
    weights: CostWeights = field(default_factory=CostWeights)

    @property
    def total(self) -> float:
        return (
            self.weights.visualization * self.visualization
            + self.weights.interaction * self.interaction
            + self.weights.layout * self.layout
            + self.weights.expressiveness * self.expressiveness
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "visualization": self.visualization,
            "interaction": self.interaction,
            "layout": self.layout,
            "expressiveness": self.expressiveness,
            "total": self.total,
        }


class CostModel:
    """Evaluates C(I, Q) for candidate interfaces."""

    def __init__(
        self,
        weights: CostWeights | None = None,
        check_expressiveness: bool = True,
        nominal_cardinalities: dict[str, int] | None = None,
    ) -> None:
        """
        Args:
            weights: term weights (ablations set individual terms to zero).
            check_expressiveness: set False to skip the (comparatively slow)
                coverage check — used by search variants that guarantee
                coverage by construction.
            nominal_cardinalities: optional attribute → distinct-count map so
                the visualization term can price noisy color encodings (built
                from the catalog by the pipeline).
        """
        self.weights = weights or CostWeights()
        self.check_expressiveness = check_expressiveness
        self.nominal_cardinalities = nominal_cardinalities or {}
        self._coverage_cache: dict = {}

    # ------------------------------------------------------------------ #
    # Term evaluation
    # ------------------------------------------------------------------ #

    def visualization_cost(self, interface: Interface) -> float:
        cost = 0.0
        seen_specs: set[tuple] = set()
        for vis in interface.visualizations:
            cost += PER_CHART_COST
            if vis.chart_type is ChartType.TABLE:
                cost += TABLE_CHART_COST
            elif vis.chart_type is ChartType.HISTOGRAM:
                cost += HISTOGRAM_CHART_COST
            color = vis.encoding_for(Channel.COLOR)
            if color is not None:
                cardinality = self.nominal_cardinalities.get(color.field, 0)
                if cardinality > NOISY_COLOR_CARDINALITY:
                    cost += NOISY_COLOR_COST
            # Charts with identical specs *and* identical filtered attributes
            # are redundant: the queries behind them differ only in values an
            # interaction could express, so they should have been merged into
            # one interactive chart.  An overview/detail pair (same spec, but
            # one query unfiltered) is intentionally not penalized — that is
            # the linked-brush idiom of the COVID walkthrough.
            spec = (
                vis.chart_type,
                tuple(encoding.describe() for encoding in vis.encodings),
                self._filter_attributes(interface, vis.tree_index),
            )
            if spec in seen_specs:
                cost += DUPLICATE_CHART_COST
            seen_specs.add(spec)
        return cost

    @staticmethod
    def _filter_attributes(interface: Interface, tree_index: int) -> frozenset[str]:
        """Column names referenced by comparison predicates anywhere in the tree."""
        from repro.sql.ast_nodes import BetweenOp, BinaryOp, ColumnRef, InList, InSubquery

        tree = interface.forest.trees[tree_index]
        names: set[str] = set()
        for node in tree.walk():
            if isinstance(node, BinaryOp) and node.op in ("=", "<>", "<", "<=", ">", ">="):
                for side in (node.left, node.right):
                    if isinstance(side, ColumnRef):
                        names.add(side.name)
            elif isinstance(node, (BetweenOp, InList, InSubquery)) and isinstance(
                node.expr, ColumnRef
            ):
                names.add(node.expr.name)
        return frozenset(names)

    def interaction_cost(self, interface: Interface) -> float:
        return total_widget_cost(interface.widgets) + total_interaction_cost(
            interface.interactions
        )

    def layout_cost(self, interface: Interface) -> float:
        if interface.layout is None:
            return 1.0
        return layout_cost(interface.layout, interface.visualizations, interface.widgets)

    def expressiveness_cost(self, interface: Interface) -> float:
        if not self.check_expressiveness:
            return 0.0
        return expressiveness_cost(interface.forest, cache=self._coverage_cache)

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #

    def evaluate(self, interface: Interface, queries: Sequence[Select] | None = None) -> CostBreakdown:
        """Evaluate the full cost of a candidate interface.

        ``queries`` is accepted for signature compatibility with C(I, Q); the
        forest embedded in the interface already carries the query log, which
        is what the expressiveness term checks against.
        """
        return CostBreakdown(
            visualization=self.visualization_cost(interface),
            interaction=self.interaction_cost(interface),
            layout=self.layout_cost(interface),
            expressiveness=self.expressiveness_cost(interface),
            weights=self.weights,
        )
