"""The interface cost model C(I, Q).

The cost of a candidate interface is a weighted sum of four terms:

* **visualization cost** — number and quality of charts (tables and
  single-column fallbacks are penalized; so are charts that stack a
  high-cardinality nominal field on the color channel),
* **interaction cost** — widgets plus visualization interactions, priced by
  :mod:`repro.cost.widget_costs` (direct manipulation < simple widgets <
  option lists < tabs),
* **layout cost** — how well the components fit the target screen
  (:mod:`repro.cost.layout_costs`),
* **expressiveness cost** — a large penalty for every input query the
  interface can no longer express (:mod:`repro.cost.expressiveness`).

The search layer minimizes this cost over Difftree structures; the ablation
benchmarks switch individual terms off to show each one's effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cost.expressiveness import expressiveness_cost
from repro.cost.layout_costs import layout_cost
from repro.cost.widget_costs import (
    interaction_cost,
    total_interaction_cost,
    total_widget_cost,
    widget_cost,
)
from repro.interface.interface import Interface
from repro.interface.visualizations import Channel, ChartType
from repro.sql.ast_nodes import Select

#: Base cost per chart; keeps the model from multiplying views without benefit.
PER_CHART_COST = 1.0
#: Extra cost for fallback chart types.
TABLE_CHART_COST = 1.0
HISTOGRAM_CHART_COST = 0.4
#: Extra cost when a chart maps a high-cardinality nominal field to color
#: (the "visually noisy" state breakdown of walkthrough Step 3).
NOISY_COLOR_COST = 0.5
NOISY_COLOR_CARDINALITY = 10
#: Extra cost for every chart whose spec duplicates an earlier chart's.
DUPLICATE_CHART_COST = 0.8


@dataclass(frozen=True)
class CostWeights:
    """Relative weights of the four cost terms."""

    visualization: float = 1.0
    interaction: float = 1.0
    layout: float = 1.0
    expressiveness: float = 1.0


@dataclass(frozen=True)
class TreeCostComponents:
    """The per-tree share of a forest evaluation's cost.

    Every term of the cost model except the layout term and the
    duplicate-chart penalty decomposes per tree: one chart per tree, widgets
    and interactions bound to one tree each, expressiveness counted over the
    tree's member queries.  The search layer caches these components by tree
    signature and recomposes the forest-level :class:`CostBreakdown` from
    them, so evaluating a candidate costs O(changed trees).
    """

    tree_index: int
    visualization: float
    interaction: float
    queries_covered: int
    queries_owned: int

    @property
    def queries_missing(self) -> int:
        return self.queries_owned - self.queries_covered


@dataclass
class CostBreakdown:
    """The evaluated cost of one candidate interface."""

    visualization: float
    interaction: float
    layout: float
    expressiveness: float
    weights: CostWeights = field(default_factory=CostWeights)
    #: Optional per-tree decomposition (populated by CostModel.evaluate);
    #: excluded from equality so breakdowns compare on their terms alone.
    per_tree: list[TreeCostComponents] | None = field(default=None, compare=False)

    @property
    def total(self) -> float:
        return (
            self.weights.visualization * self.visualization
            + self.weights.interaction * self.interaction
            + self.weights.layout * self.layout
            + self.weights.expressiveness * self.expressiveness
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "visualization": self.visualization,
            "interaction": self.interaction,
            "layout": self.layout,
            "expressiveness": self.expressiveness,
            "total": self.total,
        }


class CostModel:
    """Evaluates C(I, Q) for candidate interfaces."""

    def __init__(
        self,
        weights: CostWeights | None = None,
        check_expressiveness: bool = True,
        nominal_cardinalities: dict[str, int] | None = None,
    ) -> None:
        """
        Args:
            weights: term weights (ablations set individual terms to zero).
            check_expressiveness: set False to skip the (comparatively slow)
                coverage check — used by search variants that guarantee
                coverage by construction.
            nominal_cardinalities: optional attribute → distinct-count map so
                the visualization term can price noisy color encodings (built
                from the catalog by the pipeline).
        """
        from repro.difftree.signatures import LruDict

        self.weights = weights or CostWeights()
        self.check_expressiveness = check_expressiveness
        self.nominal_cardinalities = nominal_cardinalities or {}
        # Per-tree candidate sets (up to BINDING_SPACE_CAP canonical-SQL
        # strings each), so the bound matters: a long search must not hold
        # every structure it ever costed.
        self._coverage_cache = LruDict(1024)
        self._filter_attribute_cache = LruDict(2048)

    # ------------------------------------------------------------------ #
    # Term evaluation
    # ------------------------------------------------------------------ #

    def chart_cost(self, vis) -> float:
        """Per-chart share of the visualization term (no cross-chart penalty)."""
        cost = PER_CHART_COST
        if vis.chart_type is ChartType.TABLE:
            cost += TABLE_CHART_COST
        elif vis.chart_type is ChartType.HISTOGRAM:
            cost += HISTOGRAM_CHART_COST
        color = vis.encoding_for(Channel.COLOR)
        if color is not None:
            cardinality = self.nominal_cardinalities.get(color.field, 0)
            if cardinality > NOISY_COLOR_CARDINALITY:
                cost += NOISY_COLOR_COST
        return cost

    def _visualization_terms(self, interface: Interface) -> tuple[float, list[tuple[int, float]]]:
        """(total visualization cost, [(tree_index, per-chart cost), ...]).

        The single home of the visualization-term loop — both the standalone
        :meth:`visualization_cost` and the decomposed :meth:`evaluate` go
        through it, so the two paths cannot drift.
        """
        total = 0.0
        per_chart: list[tuple[int, float]] = []
        seen_specs: set[tuple] = set()
        for vis in interface.visualizations:
            chart = self.chart_cost(vis)
            per_chart.append((vis.tree_index, chart))
            total += chart
            # Charts with identical specs *and* identical filtered attributes
            # are redundant: the queries behind them differ only in values an
            # interaction could express, so they should have been merged into
            # one interactive chart.  An overview/detail pair (same spec, but
            # one query unfiltered) is intentionally not penalized — that is
            # the linked-brush idiom of the COVID walkthrough.  The penalty
            # couples trees, so it never enters the per-chart components.
            spec = self._chart_spec(interface, vis)
            if spec in seen_specs:
                total += DUPLICATE_CHART_COST
            seen_specs.add(spec)
        return total, per_chart

    def visualization_cost(self, interface: Interface) -> float:
        return self._visualization_terms(interface)[0]

    def _chart_spec(self, interface: Interface, vis) -> tuple:
        """The identity used by the (cross-tree) duplicate-chart penalty."""
        return (
            vis.chart_type,
            tuple(encoding.describe() for encoding in vis.encodings),
            self._filter_attributes(interface, vis.tree_index),
        )

    def _filter_attributes(self, interface: Interface, tree_index: int) -> frozenset[str]:
        """Column names referenced by comparison predicates anywhere in the tree.

        Memoized by structural signature: the attribute set is a function of
        the tree structure alone (choice ids are irrelevant), and sibling
        candidates share most trees.
        """
        from repro.difftree.signatures import structural_signature
        from repro.sql.ast_nodes import BetweenOp, BinaryOp, ColumnRef, InList, InSubquery

        tree = interface.forest.trees[tree_index]
        signature = structural_signature(tree)
        cached = self._filter_attribute_cache.get(signature)
        if cached is not None:
            return cached
        names: set[str] = set()
        for node in tree.walk():
            if isinstance(node, BinaryOp) and node.op in ("=", "<>", "<", "<=", ">", ">="):
                for side in (node.left, node.right):
                    if isinstance(side, ColumnRef):
                        names.add(side.name)
            elif isinstance(node, (BetweenOp, InList, InSubquery)) and isinstance(
                node.expr, ColumnRef
            ):
                names.add(node.expr.name)
        result = frozenset(names)
        self._filter_attribute_cache.put(signature, result)
        return result

    def interaction_cost(self, interface: Interface) -> float:
        return total_widget_cost(interface.widgets) + total_interaction_cost(
            interface.interactions
        )

    def layout_cost(self, interface: Interface) -> float:
        if interface.layout is None:
            return 1.0
        return layout_cost(interface.layout, interface.visualizations, interface.widgets)

    def expressiveness_cost(self, interface: Interface) -> float:
        if not self.check_expressiveness:
            return 0.0
        return expressiveness_cost(interface.forest, cache=self._coverage_cache)

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #

    def evaluate(self, interface: Interface, queries: Sequence[Select] | None = None) -> CostBreakdown:
        """Evaluate the full cost of a candidate interface.

        ``queries`` is accepted for signature compatibility with C(I, Q); the
        forest embedded in the interface already carries the query log, which
        is what the expressiveness term checks against.

        The breakdown is computed *decomposed*: per-tree components (chart
        cost, widget/interaction cost, coverage counts) are evaluated tree by
        tree — hitting the signature-keyed coverage and filter-attribute
        caches for unchanged trees — and only the terms that genuinely couple
        trees (the duplicate-chart penalty and the layout term) are evaluated
        globally.  The recomposed terms are numerically identical to a
        monolithic evaluation: all per-component sums run in the same
        component order.
        """
        from repro.cost.expressiveness import cost_from_covered, tree_covered_count

        forest = interface.forest
        tree_count = forest.tree_count

        # Per-tree pieces, in tree order.
        chart_costs = [0.0] * tree_count
        interaction_costs = [0.0] * tree_count
        covered_counts = [0] * tree_count
        owned_counts = [0] * tree_count

        visualization, per_chart = self._visualization_terms(interface)
        for tree_index, chart in per_chart:
            if 0 <= tree_index < tree_count:
                chart_costs[tree_index] += chart

        # The authoritative term uses the canonical sum-of-sums so the value is
        # bit-identical to interaction_cost(); the per-tree split rides along.
        interaction = self.interaction_cost(interface)
        for widget in interface.widgets:
            cost = widget_cost(widget)
            for tree_index in widget.tree_indices:
                if 0 <= tree_index < tree_count:
                    interaction_costs[tree_index] += cost
        for vis_interaction in interface.interactions:
            cost = interaction_cost(vis_interaction)
            for tree_index in vis_interaction.tree_indices:
                if 0 <= tree_index < tree_count:
                    interaction_costs[tree_index] += cost

        if self.check_expressiveness and forest.queries:
            for tree_index, member_indices in enumerate(forest.members):
                covered_counts[tree_index] = tree_covered_count(
                    forest.trees[tree_index], forest, member_indices, cache=self._coverage_cache
                )
                owned_counts[tree_index] = len(member_indices)
            expressiveness = cost_from_covered(sum(covered_counts), len(forest.queries))
        else:
            expressiveness = 0.0

        per_tree = [
            TreeCostComponents(
                tree_index=index,
                visualization=chart_costs[index],
                interaction=interaction_costs[index],
                queries_covered=covered_counts[index],
                queries_owned=owned_counts[index],
            )
            for index in range(tree_count)
        ]
        return CostBreakdown(
            visualization=visualization,
            interaction=interaction,
            layout=self.layout_cost(interface),  # couples trees: global
            expressiveness=expressiveness,
            weights=self.weights,
            per_tree=per_tree,
        )
