"""Per-component interaction costs.

The cost of the interaction mapping M follows the usability heuristics the
paper alludes to ("borrows current best practices"): direct manipulation on a
chart (brush, pan/zoom, click) is cheaper than an equivalent widget, simple
widgets (toggles, button pairs) are cheaper than option lists, and widgets
whose options are raw SQL snippets carry a readability surcharge.
"""

from __future__ import annotations

from repro.interface.interactions import InteractionType, VisInteraction
from repro.interface.widgets import Widget, WidgetType

#: Base cost per widget type.
WIDGET_TYPE_COSTS: dict[WidgetType, float] = {
    WidgetType.TOGGLE: 0.7,
    WidgetType.CHECKBOX: 0.7,
    WidgetType.BUTTON_GROUP: 1.0,
    WidgetType.SLIDER: 1.0,
    WidgetType.RANGE_SLIDER: 1.1,
    WidgetType.DATE_RANGE: 1.1,
    WidgetType.RADIO: 1.3,
    WidgetType.DROPDOWN: 1.5,
    WidgetType.TABS: 2.0,
    WidgetType.TEXT_INPUT: 2.5,
}

#: Base cost per visualization interaction type (cheaper than widgets).
INTERACTION_TYPE_COSTS: dict[InteractionType, float] = {
    InteractionType.PAN_ZOOM: 0.4,
    InteractionType.BRUSH_X: 0.5,
    InteractionType.BRUSH_2D: 0.6,
    InteractionType.CLICK_SELECT: 0.6,
    InteractionType.HOVER_FILTER: 0.5,
}

#: Extra cost per option beyond this count (long option lists are hard to scan).
FREE_OPTION_COUNT = 4
PER_EXTRA_OPTION_COST = 0.08

#: Surcharge for widgets whose options read like raw SQL fragments.
RAW_SQL_OPTION_COST = 0.8


def _options_look_like_sql(widget: Widget) -> bool:
    markers = (" BETWEEN ", " AND ", " OR ", "=", "<", ">", "SELECT ", " IN ")
    for option in widget.options:
        text = str(option)
        if any(marker in text for marker in markers):
            return True
    return False


def widget_cost(widget: Widget) -> float:
    """Cost of one widget."""
    cost = WIDGET_TYPE_COSTS.get(widget.widget_type, 1.5)
    extra_options = max(0, len(widget.options) - FREE_OPTION_COUNT)
    cost += extra_options * PER_EXTRA_OPTION_COST
    if widget.is_discrete() and _options_look_like_sql(widget):
        cost += RAW_SQL_OPTION_COST
    return cost


def interaction_cost(interaction: VisInteraction) -> float:
    """Cost of one visualization interaction."""
    cost = INTERACTION_TYPE_COSTS.get(interaction.interaction_type, 0.8)
    # Linked interactions (gesture on one chart reconfiguring another) get a
    # small discount: they replace a widget *and* add coordination value.
    if interaction.is_linked():
        cost -= 0.1
    return max(cost, 0.1)


def total_widget_cost(widgets: list[Widget]) -> float:
    return sum(widget_cost(widget) for widget in widgets)


def total_interaction_cost(interactions: list[VisInteraction]) -> float:
    return sum(interaction_cost(interaction) for interaction in interactions)
