"""Widget model.

Widgets are the interface components that choice nodes map to when they are
not mapped to in-visualization interactions: radio buttons, dropdowns,
sliders, range sliders, toggles, button groups and tabs.  One widget may drive
*several* choice nodes at once (``linked_choices``) — e.g. the region button
pair of the COVID case study sets the same ``'South'``/``'Northeast'`` literal
in three places of the query simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Sequence

from repro.errors import InterfaceError


class WidgetType(Enum):
    """Supported widget types."""

    RADIO = "radio"
    DROPDOWN = "dropdown"
    SLIDER = "slider"
    RANGE_SLIDER = "range_slider"
    TOGGLE = "toggle"
    BUTTON_GROUP = "button_group"
    TABS = "tabs"
    CHECKBOX = "checkbox"
    TEXT_INPUT = "text_input"
    DATE_RANGE = "date_range"


#: Widget types that present a discrete set of options.
DISCRETE_WIDGETS = frozenset(
    {WidgetType.RADIO, WidgetType.DROPDOWN, WidgetType.BUTTON_GROUP, WidgetType.TABS}
)

#: Widget types that select from a continuous domain.
CONTINUOUS_WIDGETS = frozenset({WidgetType.SLIDER, WidgetType.RANGE_SLIDER, WidgetType.DATE_RANGE})

#: Widget types that toggle a boolean state.
BOOLEAN_WIDGETS = frozenset({WidgetType.TOGGLE, WidgetType.CHECKBOX})


@dataclass(frozen=True)
class ChoiceBinding:
    """Binds a widget to one choice node of one Difftree."""

    tree_index: int
    choice_id: str


@dataclass
class Widget:
    """One widget of the generated interface.

    Attributes:
        widget_id: Stable identifier (``W1``, ``W2``, ...).
        widget_type: Which control this is.
        label: Human-readable label derived from the controlled attribute.
        bindings: The choice nodes this widget drives (all receive the same
            selection).
        options: Display options for discrete widgets (parallel to the choice
            node's alternatives).
        domain: (low, high) numeric or date domain for continuous widgets.
        default: Initial value (option index, (low, high) pair, or bool).
    """

    widget_id: str
    widget_type: WidgetType
    label: str
    bindings: list[ChoiceBinding] = field(default_factory=list)
    options: list[Any] = field(default_factory=list)
    domain: tuple[Any, Any] | None = None
    default: Any = None

    def validate(self) -> None:
        """Raise InterfaceError for structurally invalid widget configurations."""
        if not self.bindings:
            raise InterfaceError(f"Widget {self.widget_id} is not bound to any choice node")
        if self.widget_type in DISCRETE_WIDGETS and len(self.options) < 2:
            raise InterfaceError(
                f"{self.widget_type.value} widget {self.widget_id} needs at least two options"
            )
        if self.widget_type in CONTINUOUS_WIDGETS and self.domain is None:
            raise InterfaceError(
                f"{self.widget_type.value} widget {self.widget_id} needs a domain"
            )

    @property
    def choice_ids(self) -> list[str]:
        return [binding.choice_id for binding in self.bindings]

    @property
    def tree_indices(self) -> list[int]:
        return sorted({binding.tree_index for binding in self.bindings})

    def is_discrete(self) -> bool:
        return self.widget_type in DISCRETE_WIDGETS

    def is_continuous(self) -> bool:
        return self.widget_type in CONTINUOUS_WIDGETS

    def is_boolean(self) -> bool:
        return self.widget_type in BOOLEAN_WIDGETS

    def describe(self) -> str:
        if self.is_discrete():
            detail = f"options={self.options}"
        elif self.is_continuous():
            detail = f"domain={self.domain}"
        else:
            detail = f"default={self.default}"
        return f"{self.widget_id}: {self.widget_type.value} [{self.label}] {detail}"


def default_widget_for_cardinality(cardinality: int) -> WidgetType:
    """The conventional discrete widget for a given number of options.

    A couple of options read best as radio buttons or a button group; larger
    option sets collapse into a dropdown to save space.
    """
    if cardinality <= 2:
        return WidgetType.BUTTON_GROUP
    if cardinality <= 5:
        return WidgetType.RADIO
    return WidgetType.DROPDOWN


def make_widget(
    widget_id: str,
    widget_type: WidgetType,
    label: str,
    bindings: Sequence[ChoiceBinding],
    options: Sequence[Any] = (),
    domain: tuple[Any, Any] | None = None,
    default: Any = None,
) -> Widget:
    """Construct and validate a widget."""
    widget = Widget(
        widget_id=widget_id,
        widget_type=widget_type,
        label=label,
        bindings=list(bindings),
        options=list(options),
        domain=domain,
        default=default,
    )
    widget.validate()
    return widget
