"""Self-contained HTML rendering of generated interfaces.

The JupyterLab extension renders interfaces in a side panel; in this headless
reproduction the equivalent artifact is a standalone HTML document containing

* one inline-SVG chart per visualization (bar / line / area / scatter drawn by
  a small renderer with no external dependencies),
* a widget panel listing every widget with its options/domain,
* the archived query log (the collapsible "Query Log" section of the demo UI),
* the full Vega-Lite spec embedded as JSON for tools that can render it.

The goal is inspectability: examples and tests write these files so a human
can open them and see the same interfaces the paper's figures show.
"""

from __future__ import annotations

import html as html_escape
import json
from pathlib import Path
from typing import Any, Sequence

from repro.engine.table import QueryResult
from repro.interface.interface import Interface
from repro.interface.vegalite import interface_spec
from repro.interface.visualizations import Channel, ChartType, Visualization
from repro.sql.printer import format_sql
from repro.sql.ast_nodes import SqlNode

_SVG_WIDTH = 420
_SVG_HEIGHT = 260
_MARGIN = 40


def _escape(text: str) -> str:
    return html_escape.escape(str(text), quote=True)


def _numeric(values: Sequence[Any]) -> list[float]:
    numeric = []
    for value in values:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            numeric.append(float(value))
    return numeric


def _scale(value: float, low: float, high: float, out_low: float, out_high: float) -> float:
    if high == low:
        return (out_low + out_high) / 2.0
    ratio = (value - low) / (high - low)
    return out_low + ratio * (out_high - out_low)


def _x_positions(count: int) -> list[float]:
    usable = _SVG_WIDTH - 2 * _MARGIN
    if count <= 1:
        return [_MARGIN + usable / 2.0]
    step = usable / (count - 1)
    return [_MARGIN + i * step for i in range(count)]


def render_chart_svg(vis: Visualization, data: QueryResult) -> str:
    """Render one chart to an inline SVG string."""
    x_field = vis.field_for(Channel.X)
    y_field = vis.field_for(Channel.Y)
    parts = [
        f'<svg width="{_SVG_WIDTH}" height="{_SVG_HEIGHT}" '
        f'viewBox="0 0 {_SVG_WIDTH} {_SVG_HEIGHT}" role="img" '
        f'aria-label="{_escape(vis.title or vis.vis_id)}">'
    ]
    parts.append(
        f'<rect x="0" y="0" width="{_SVG_WIDTH}" height="{_SVG_HEIGHT}" '
        f'fill="#fdfdfd" stroke="#cccccc"/>'
    )
    parts.append(
        f'<text x="{_SVG_WIDTH / 2}" y="18" text-anchor="middle" font-size="13" '
        f'font-family="sans-serif">{_escape(vis.title or vis.vis_id)}</text>'
    )

    if x_field is None or y_field is None or x_field not in data.columns or y_field not in data.columns:
        parts.append(
            f'<text x="{_SVG_WIDTH / 2}" y="{_SVG_HEIGHT / 2}" text-anchor="middle" '
            f'font-size="12" font-family="sans-serif">{data.row_count} rows</text>'
        )
        parts.append("</svg>")
        return "".join(parts)

    # Cap the number of marks so the SVG stays small for big results.
    rows = data.to_dicts()[:400]
    y_values = _numeric([row.get(y_field) for row in rows])
    if not y_values:
        y_values = [0.0, 1.0]
    y_low, y_high = min(y_values + [0.0]), max(y_values)
    baseline = _SVG_HEIGHT - _MARGIN

    if vis.chart_type in (ChartType.BAR, ChartType.HISTOGRAM):
        positions = _x_positions(len(rows))
        bar_width = max(2.0, (_SVG_WIDTH - 2 * _MARGIN) / max(len(rows), 1) * 0.8)
        for row, x_pos in zip(rows, positions):
            value = row.get(y_field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            top = _scale(float(value), y_low, y_high, baseline, _MARGIN)
            parts.append(
                f'<rect x="{x_pos - bar_width / 2:.1f}" y="{top:.1f}" width="{bar_width:.1f}" '
                f'height="{max(baseline - top, 0):.1f}" fill="#4c78a8"/>'
            )
    elif vis.chart_type in (ChartType.LINE, ChartType.AREA):
        positions = _x_positions(len(rows))
        points = []
        for row, x_pos in zip(rows, positions):
            value = row.get(y_field)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            y_pos = _scale(float(value), y_low, y_high, baseline, _MARGIN)
            points.append(f"{x_pos:.1f},{y_pos:.1f}")
        if points:
            parts.append(
                f'<polyline points="{" ".join(points)}" fill="none" stroke="#4c78a8" stroke-width="1.5"/>'
            )
    elif vis.chart_type is ChartType.SCATTER:
        x_values = _numeric([row.get(x_field) for row in rows])
        x_low = min(x_values) if x_values else 0.0
        x_high = max(x_values) if x_values else 1.0
        for row in rows:
            x_value, y_value = row.get(x_field), row.get(y_field)
            if not isinstance(x_value, (int, float)) or not isinstance(y_value, (int, float)):
                continue
            x_pos = _scale(float(x_value), x_low, x_high, _MARGIN, _SVG_WIDTH - _MARGIN)
            y_pos = _scale(float(y_value), y_low, y_high, baseline, _MARGIN)
            parts.append(f'<circle cx="{x_pos:.1f}" cy="{y_pos:.1f}" r="2" fill="#4c78a8" opacity="0.6"/>')
    else:
        parts.append(
            f'<text x="{_SVG_WIDTH / 2}" y="{_SVG_HEIGHT / 2}" text-anchor="middle" '
            f'font-size="12" font-family="sans-serif">{data.row_count} rows × {len(data.columns)} cols</text>'
        )

    # Axes.
    parts.append(
        f'<line x1="{_MARGIN}" y1="{baseline}" x2="{_SVG_WIDTH - _MARGIN}" y2="{baseline}" stroke="#888"/>'
    )
    parts.append(f'<line x1="{_MARGIN}" y1="{_MARGIN}" x2="{_MARGIN}" y2="{baseline}" stroke="#888"/>')
    parts.append(
        f'<text x="{_SVG_WIDTH / 2}" y="{_SVG_HEIGHT - 8}" text-anchor="middle" font-size="11" '
        f'font-family="sans-serif">{_escape(x_field)}</text>'
    )
    parts.append(
        f'<text x="12" y="{_SVG_HEIGHT / 2}" text-anchor="middle" font-size="11" '
        f'font-family="sans-serif" transform="rotate(-90 12 {_SVG_HEIGHT / 2})">{_escape(y_field)}</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def _widget_html(interface: Interface) -> str:
    if not interface.widgets:
        return ""
    items = []
    for widget in interface.widgets:
        detail = ""
        if widget.is_discrete():
            detail = " | ".join(_escape(option) for option in widget.options)
        elif widget.is_continuous() and widget.domain:
            detail = f"{_escape(widget.domain[0])} … {_escape(widget.domain[1])}"
        items.append(
            f'<li><strong>{_escape(widget.label)}</strong> '
            f"<em>({widget.widget_type.value})</em> {detail}</li>"
        )
    return f'<div class="widgets"><h3>Widgets</h3><ul>{"".join(items)}</ul></div>'


def _interaction_html(interface: Interface) -> str:
    if not interface.interactions:
        return ""
    items = [
        f"<li>{_escape(interaction.describe())}</li>" for interaction in interface.interactions
    ]
    return (
        f'<div class="interactions"><h3>Visualization interactions</h3>'
        f'<ul>{"".join(items)}</ul></div>'
    )


def _query_log_html(queries: Sequence[SqlNode]) -> str:
    blocks = []
    for index, query in enumerate(queries, start=1):
        blocks.append(f"<details><summary>Q{index}</summary><pre>{_escape(format_sql(query))}</pre></details>")
    return f'<div class="query-log"><h3>Query Log</h3>{"".join(blocks)}</div>'


def render_interface_html(
    interface: Interface,
    data: dict[str, QueryResult] | None = None,
    title: str | None = None,
) -> str:
    """Render the whole interface as a standalone HTML document."""
    data = data or {}
    chart_blocks = []
    for vis in interface.visualizations:
        result = data.get(vis.vis_id)
        if result is not None:
            chart_blocks.append(
                f'<figure class="chart">{render_chart_svg(vis, result)}'
                f"<figcaption>{_escape(vis.describe())}</figcaption></figure>"
            )
        else:
            chart_blocks.append(
                f'<figure class="chart"><figcaption>{_escape(vis.describe())}</figcaption></figure>'
            )
    spec_json = json.dumps(interface_spec(interface, data), indent=2, default=str)
    page_title = title or f"PI2 generated interface: {interface.name}"
    layout_note = ""
    if interface.layout is not None:
        layout_note = f"<pre class='layout'>{_escape(interface.layout.describe())}</pre>"
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8"/>
<title>{_escape(page_title)}</title>
<style>
body {{ font-family: sans-serif; margin: 24px; color: #222; }}
.charts {{ display: flex; flex-wrap: wrap; gap: 16px; }}
figure.chart {{ margin: 0; border: 1px solid #ddd; padding: 8px; }}
figcaption {{ font-size: 11px; color: #555; max-width: 420px; }}
.widgets, .interactions, .query-log {{ margin-top: 16px; }}
pre {{ background: #f6f6f6; padding: 8px; overflow-x: auto; }}
</style>
</head>
<body>
<h1>{_escape(page_title)}</h1>
<div class="charts">{"".join(chart_blocks)}</div>
{_widget_html(interface)}
{_interaction_html(interface)}
{_query_log_html(interface.forest.queries)}
<h3>Layout</h3>
{layout_note}
<h3>Vega-Lite specification</h3>
<pre class="spec">{_escape(spec_json)}</pre>
</body>
</html>
"""


def save_interface_html(
    interface: Interface,
    path: str | Path,
    data: dict[str, QueryResult] | None = None,
    title: str | None = None,
) -> Path:
    """Write the interface HTML document to ``path`` and return it."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_interface_html(interface, data, title), encoding="utf-8")
    return target
