"""Visualization model: chart types and visual encodings.

A :class:`Visualization` binds one Difftree's query result to a chart via a
set of :class:`Encoding` channels (x, y, color, ...).  Chart choice follows
standard visualization best practice (the paper cites Bertin's semiology and
"current best practices"): temporal x + quantitative y → line chart, nominal x
+ quantitative y → bar chart, two quantitative axes → scatter plot, and so on.
The mapping layer (``repro.mapping.vis_mapping``) owns those rules; this
module only defines the model objects they produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import InterfaceError
from repro.sql.schema import AttributeRole


class ChartType(Enum):
    """Supported chart types."""

    BAR = "bar"
    LINE = "line"
    AREA = "area"
    SCATTER = "scatter"
    HISTOGRAM = "histogram"
    TABLE = "table"
    SINGLE_VALUE = "single_value"


class Channel(Enum):
    """Visual encoding channels."""

    X = "x"
    Y = "y"
    COLOR = "color"
    SIZE = "size"
    SHAPE = "shape"
    DETAIL = "detail"
    COLUMN = "column"
    ROW = "row"


@dataclass(frozen=True)
class Encoding:
    """One field-to-channel assignment."""

    channel: Channel
    field: str
    role: AttributeRole
    aggregate: str | None = None

    def describe(self) -> str:
        suffix = f" ({self.aggregate})" if self.aggregate else ""
        return f"{self.channel.value} -> {self.field}{suffix} [{self.role.value}]"


@dataclass
class Visualization:
    """One chart of the generated interface.

    Attributes:
        vis_id: Stable identifier (``G1``, ``G2``, ... in the paper's figures).
        chart_type: The mark type.
        encodings: Channel assignments.
        tree_index: Index of the Difftree (within the forest) whose query
            feeds this chart.
        title: Human-readable caption.
        width / height: Preferred pixel size, used by the layout engine.
    """

    vis_id: str
    chart_type: ChartType
    encodings: list[Encoding] = field(default_factory=list)
    tree_index: int = 0
    title: str = ""
    width: int = 420
    height: int = 280

    def encoding_for(self, channel: Channel) -> Encoding | None:
        for encoding in self.encodings:
            if encoding.channel is channel:
                return encoding
        return None

    def field_for(self, channel: Channel) -> str | None:
        encoding = self.encoding_for(channel)
        return encoding.field if encoding else None

    def encoded_fields(self) -> list[str]:
        return [encoding.field for encoding in self.encodings]

    def has_channel(self, channel: Channel) -> bool:
        return self.encoding_for(channel) is not None

    def validate(self) -> None:
        """Raise InterfaceError when the encoding set is structurally invalid."""
        if self.chart_type in (ChartType.BAR, ChartType.LINE, ChartType.AREA, ChartType.SCATTER):
            if not self.has_channel(Channel.X) or not self.has_channel(Channel.Y):
                raise InterfaceError(
                    f"{self.chart_type.value} chart {self.vis_id} requires both x and y encodings"
                )
        channels = [encoding.channel for encoding in self.encodings]
        if len(channels) != len(set(channels)):
            raise InterfaceError(f"Chart {self.vis_id} assigns a channel twice")

    def describe(self) -> str:
        parts = ", ".join(encoding.describe() for encoding in self.encodings)
        return f"{self.vis_id}: {self.chart_type.value} ({parts})"


def mark_for_roles(x_role: AttributeRole, y_role: AttributeRole) -> ChartType:
    """Default chart type for an (x role, y role) pair.

    These are the classic effectiveness rules: temporal → line, nominal /
    ordinal → bar, quantitative × quantitative → scatter.
    """
    if x_role is AttributeRole.TEMPORAL and y_role is AttributeRole.QUANTITATIVE:
        return ChartType.LINE
    if x_role in (AttributeRole.NOMINAL, AttributeRole.ORDINAL) and y_role is AttributeRole.QUANTITATIVE:
        return ChartType.BAR
    if x_role is AttributeRole.QUANTITATIVE and y_role is AttributeRole.QUANTITATIVE:
        return ChartType.SCATTER
    if y_role in (AttributeRole.NOMINAL, AttributeRole.ORDINAL) and x_role is AttributeRole.QUANTITATIVE:
        return ChartType.BAR
    return ChartType.TABLE
