"""Interface model: visualizations, widgets, interactions, layout, runtime state."""

from repro.interface.interactions import InteractionType, VisInteraction
from repro.interface.interface import Interface
from repro.interface.layout import (
    LARGE_SCREEN,
    MEDIUM_SCREEN,
    NOTEBOOK_PANEL,
    SMALL_SCREEN,
    Layout,
    LayoutKind,
    LayoutNode,
    PlacedComponent,
    ScreenSize,
    compute_layout,
)
from repro.interface.state import EventRecord, InterfaceState
from repro.interface.vegalite import chart_spec, interface_spec, to_json
from repro.interface.visualizations import (
    Channel,
    ChartType,
    Encoding,
    Visualization,
    mark_for_roles,
)
from repro.interface.widgets import (
    ChoiceBinding,
    Widget,
    WidgetType,
    default_widget_for_cardinality,
    make_widget,
)
from repro.interface.html import render_chart_svg, render_interface_html, save_interface_html

__all__ = [
    "InteractionType",
    "VisInteraction",
    "Interface",
    "LARGE_SCREEN",
    "MEDIUM_SCREEN",
    "NOTEBOOK_PANEL",
    "SMALL_SCREEN",
    "Layout",
    "LayoutKind",
    "LayoutNode",
    "PlacedComponent",
    "ScreenSize",
    "compute_layout",
    "EventRecord",
    "InterfaceState",
    "chart_spec",
    "interface_spec",
    "to_json",
    "Channel",
    "ChartType",
    "Encoding",
    "Visualization",
    "mark_for_roles",
    "ChoiceBinding",
    "Widget",
    "WidgetType",
    "default_widget_for_cardinality",
    "make_widget",
    "render_chart_svg",
    "render_interface_html",
    "save_interface_html",
]
