"""Layout model and screen-size-aware layout engine.

PI2 "takes the available screen size into account in order to select a good
layout for the interface — on a large screen, the interface may show multiple
visualizations side by side, whereas a small screen may show a single
visualization that can be changed via interactions" (Section 1).  The layout
engine implements that behaviour: given the visualizations, widgets and a
:class:`ScreenSize`, it packs charts into rows when they fit and falls back to
a tabbed layout when they do not, always reserving a side panel for widgets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator

from repro.errors import LayoutError
from repro.interface.visualizations import Visualization
from repro.interface.widgets import Widget


@dataclass(frozen=True)
class ScreenSize:
    """Available screen real estate in pixels."""

    width: int = 1280
    height: int = 800

    def is_small(self) -> bool:
        return self.width < 700 or self.height < 500


#: Common screen presets used by examples and benchmarks.
LARGE_SCREEN = ScreenSize(1600, 1000)
MEDIUM_SCREEN = ScreenSize(1280, 800)
SMALL_SCREEN = ScreenSize(600, 900)
NOTEBOOK_PANEL = ScreenSize(820, 900)


class LayoutKind(Enum):
    """Kinds of layout containers."""

    ROW = "row"
    COLUMN = "column"
    TABS = "tabs"
    COMPONENT = "component"


@dataclass
class LayoutNode:
    """One node of the layout tree: a container or a single component slot."""

    kind: LayoutKind
    component_id: str | None = None
    children: list["LayoutNode"] = field(default_factory=list)

    def walk(self) -> Iterator["LayoutNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def component_ids(self) -> list[str]:
        return [node.component_id for node in self.walk() if node.component_id is not None]

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        if self.kind is LayoutKind.COMPONENT:
            return f"{pad}- {self.component_id}"
        lines = [f"{pad}{self.kind.value}:"]
        lines.extend(child.describe(indent + 1) for child in self.children)
        return "\n".join(lines)


@dataclass(frozen=True)
class PlacedComponent:
    """Resolved pixel placement of one component."""

    component_id: str
    x: int
    y: int
    width: int
    height: int


@dataclass
class Layout:
    """The layout of a generated interface."""

    screen: ScreenSize
    root: LayoutNode
    placements: list[PlacedComponent] = field(default_factory=list)
    uses_tabs: bool = False

    def placement_for(self, component_id: str) -> PlacedComponent:
        for placement in self.placements:
            if placement.component_id == component_id:
                return placement
        raise LayoutError(f"No placement for component {component_id!r}")

    def charts_per_row(self) -> int:
        """Number of chart slots in the widest row of the layout."""
        widest = 0
        for node in self.root.walk():
            if node.kind is LayoutKind.ROW:
                count = sum(1 for child in node.children if child.kind is LayoutKind.COMPONENT)
                widest = max(widest, count)
        return widest

    def describe(self) -> str:
        return self.root.describe()


#: Width reserved for the widget side panel when widgets are present.
WIDGET_PANEL_WIDTH = 220
#: Margin between charts.
CHART_MARGIN = 16
#: Minimum readable chart width; below this charts get stacked or tabbed.
MIN_CHART_WIDTH = 320
#: Vertical space reserved per widget in the side panel.
WIDGET_HEIGHT = 64


def compute_layout(
    visualizations: list[Visualization],
    widgets: list[Widget],
    screen: ScreenSize = MEDIUM_SCREEN,
) -> Layout:
    """Lay the interface out for the given screen size.

    Charts are placed left-to-right in rows; when even a single chart per row
    would be narrower than :data:`MIN_CHART_WIDTH`, the layout collapses into
    a tabbed single-chart view (the paper's small-screen behaviour).  Widgets
    occupy a fixed side panel on wide screens and a top strip on small ones.
    """
    if not visualizations:
        raise LayoutError("Cannot lay out an interface without visualizations")

    widget_panel = WIDGET_PANEL_WIDTH if widgets and not screen.is_small() else 0
    available_width = screen.width - widget_panel
    per_chart = visualizations[0].width + CHART_MARGIN
    charts_per_row = max(1, available_width // per_chart)
    chart_width = min(visualizations[0].width, available_width - CHART_MARGIN)

    use_tabs = screen.is_small() and len(visualizations) > 1 or chart_width < MIN_CHART_WIDTH
    placements: list[PlacedComponent] = []

    widget_nodes = [LayoutNode(LayoutKind.COMPONENT, widget.widget_id) for widget in widgets]

    if use_tabs:
        chart_nodes = [
            LayoutNode(LayoutKind.COMPONENT, vis.vis_id) for vis in visualizations
        ]
        tabs = LayoutNode(LayoutKind.TABS, children=chart_nodes)
        children = ([LayoutNode(LayoutKind.ROW, children=widget_nodes)] if widget_nodes else []) + [tabs]
        root = LayoutNode(LayoutKind.COLUMN, children=children)
        width = max(MIN_CHART_WIDTH, screen.width - 2 * CHART_MARGIN)
        y_offset = WIDGET_HEIGHT if widget_nodes else 0
        for vis in visualizations:
            placements.append(
                PlacedComponent(vis.vis_id, CHART_MARGIN, y_offset, width, vis.height)
            )
        for index, widget in enumerate(widgets):
            placements.append(
                PlacedComponent(widget.widget_id, CHART_MARGIN + index * 180, 0, 170, WIDGET_HEIGHT)
            )
        return Layout(screen=screen, root=root, placements=placements, uses_tabs=True)

    # Multi-view grid layout.
    rows: list[LayoutNode] = []
    current_row: list[LayoutNode] = []
    x = 0
    y = 0
    row_height = 0
    for index, vis in enumerate(visualizations):
        if current_row and len(current_row) >= charts_per_row:
            rows.append(LayoutNode(LayoutKind.ROW, children=current_row))
            current_row = []
            x = 0
            y += row_height + CHART_MARGIN
            row_height = 0
        current_row.append(LayoutNode(LayoutKind.COMPONENT, vis.vis_id))
        placements.append(PlacedComponent(vis.vis_id, x, y, min(vis.width, chart_width), vis.height))
        x += min(vis.width, chart_width) + CHART_MARGIN
        row_height = max(row_height, vis.height)
    if current_row:
        rows.append(LayoutNode(LayoutKind.ROW, children=current_row))

    chart_column = LayoutNode(LayoutKind.COLUMN, children=rows)
    if widget_nodes:
        widget_column = LayoutNode(LayoutKind.COLUMN, children=widget_nodes)
        root = LayoutNode(LayoutKind.ROW, children=[chart_column, widget_column])
        panel_x = screen.width - WIDGET_PANEL_WIDTH
        for index, widget in enumerate(widgets):
            placements.append(
                PlacedComponent(
                    widget.widget_id, panel_x, index * WIDGET_HEIGHT, WIDGET_PANEL_WIDTH - CHART_MARGIN, WIDGET_HEIGHT
                )
            )
    else:
        root = chart_column
    return Layout(screen=screen, root=root, placements=placements, uses_tabs=False)
