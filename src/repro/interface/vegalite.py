"""Compile interfaces to Vega-Lite specifications.

The JupyterLab extension renders PI2 interfaces with Vega-Lite; this module
produces equivalent specification dictionaries without requiring the Vega
runtime (they are plain JSON-serializable dicts that a notebook front-end, or
the bundled HTML emitter, can render).  Interactions compile to Vega-Lite
``params``/selection entries; widgets compile to input-bound params.
"""

from __future__ import annotations

import json
from typing import Any

from repro.engine.table import QueryResult
from repro.interface.interactions import InteractionType, VisInteraction
from repro.interface.interface import Interface
from repro.interface.visualizations import ChartType, Visualization
from repro.interface.widgets import Widget, WidgetType
from repro.sql.schema import AttributeRole

VEGA_LITE_SCHEMA = "https://vega.github.io/schema/vega-lite/v5.json"

_MARKS: dict[ChartType, str] = {
    ChartType.BAR: "bar",
    ChartType.LINE: "line",
    ChartType.AREA: "area",
    ChartType.SCATTER: "point",
    ChartType.HISTOGRAM: "bar",
    ChartType.TABLE: "text",
    ChartType.SINGLE_VALUE: "text",
}

_TYPES: dict[AttributeRole, str] = {
    AttributeRole.QUANTITATIVE: "quantitative",
    AttributeRole.ORDINAL: "ordinal",
    AttributeRole.NOMINAL: "nominal",
    AttributeRole.TEMPORAL: "temporal",
}


def encoding_spec(vis: Visualization) -> dict[str, Any]:
    """The ``encoding`` block of one chart."""
    encoding: dict[str, Any] = {}
    for item in vis.encodings:
        channel_spec: dict[str, Any] = {
            "field": item.field,
            "type": _TYPES[item.role],
        }
        if item.aggregate:
            channel_spec["aggregate"] = item.aggregate
        encoding[item.channel.value] = channel_spec
    return encoding


def interaction_params(vis: Visualization, interactions: list[VisInteraction]) -> list[dict[str, Any]]:
    """Vega-Lite ``params`` entries for the interactions sourced on this chart."""
    params: list[dict[str, Any]] = []
    for interaction in interactions:
        if interaction.source_vis_id != vis.vis_id:
            continue
        if interaction.interaction_type is InteractionType.BRUSH_X:
            params.append(
                {
                    "name": interaction.interaction_id,
                    "select": {"type": "interval", "encodings": ["x"]},
                }
            )
        elif interaction.interaction_type is InteractionType.BRUSH_2D:
            params.append(
                {
                    "name": interaction.interaction_id,
                    "select": {"type": "interval", "encodings": ["x", "y"]},
                }
            )
        elif interaction.interaction_type is InteractionType.PAN_ZOOM:
            params.append(
                {
                    "name": interaction.interaction_id,
                    "select": {"type": "interval", "encodings": ["x", "y"]},
                    "bind": "scales",
                }
            )
        elif interaction.interaction_type is InteractionType.CLICK_SELECT:
            params.append(
                {
                    "name": interaction.interaction_id,
                    "select": {"type": "point", "fields": [interaction.attribute]},
                }
            )
        elif interaction.interaction_type is InteractionType.HOVER_FILTER:
            params.append(
                {
                    "name": interaction.interaction_id,
                    "select": {"type": "point", "on": "mouseover", "fields": [interaction.attribute]},
                }
            )
    return params


def widget_params(widgets: list[Widget]) -> list[dict[str, Any]]:
    """Vega-Lite input-bound ``params`` entries for the interface's widgets."""
    params: list[dict[str, Any]] = []
    for widget in widgets:
        param: dict[str, Any] = {"name": widget.widget_id}
        if widget.widget_type in (WidgetType.RADIO, WidgetType.BUTTON_GROUP, WidgetType.TABS):
            param["bind"] = {"input": "radio", "options": widget.options, "name": widget.label}
            param["value"] = widget.options[0] if widget.options else None
        elif widget.widget_type is WidgetType.DROPDOWN:
            param["bind"] = {"input": "select", "options": widget.options, "name": widget.label}
            param["value"] = widget.options[0] if widget.options else None
        elif widget.widget_type in (WidgetType.SLIDER, WidgetType.RANGE_SLIDER):
            low, high = widget.domain if widget.domain else (0, 1)
            param["bind"] = {"input": "range", "min": low, "max": high, "name": widget.label}
            param["value"] = widget.default if widget.default is not None else low
        elif widget.widget_type in (WidgetType.TOGGLE, WidgetType.CHECKBOX):
            param["bind"] = {"input": "checkbox", "name": widget.label}
            param["value"] = bool(widget.default)
        elif widget.widget_type is WidgetType.DATE_RANGE:
            low, high = widget.domain if widget.domain else ("", "")
            param["bind"] = {"input": "range", "min": str(low), "max": str(high), "name": widget.label}
        else:
            param["bind"] = {"input": "text", "name": widget.label}
        params.append(param)
    return params


def chart_spec(
    vis: Visualization,
    data: QueryResult | None = None,
    interactions: list[VisInteraction] | None = None,
) -> dict[str, Any]:
    """A complete single-chart Vega-Lite spec (with inline data when given)."""
    spec: dict[str, Any] = {
        "$schema": VEGA_LITE_SCHEMA,
        "title": vis.title or vis.vis_id,
        "width": vis.width,
        "height": vis.height,
        "mark": {"type": _MARKS[vis.chart_type], "tooltip": True},
        "encoding": encoding_spec(vis),
    }
    params = interaction_params(vis, interactions or [])
    if params:
        spec["params"] = params
    if data is not None:
        spec["data"] = {"values": data.to_dicts()}
    else:
        spec["data"] = {"name": vis.vis_id}
    return spec


def interface_spec(
    interface: Interface, data: dict[str, QueryResult] | None = None
) -> dict[str, Any]:
    """A multi-view Vega-Lite spec for the whole interface.

    Charts are concatenated following the layout (horizontal within a row,
    vertical across rows); widgets appear as top-level input-bound params.
    """
    data = data or {}
    charts = [
        chart_spec(vis, data.get(vis.vis_id), interface.interactions)
        for vis in interface.visualizations
    ]
    spec: dict[str, Any] = {
        "$schema": VEGA_LITE_SCHEMA,
        "title": interface.name,
    }
    params = widget_params(interface.widgets)
    if params:
        spec["params"] = params

    layout = interface.layout
    if layout is not None and layout.uses_tabs:
        # Tabs have no native Vega-Lite construct; emit a vconcat plus a note.
        spec["vconcat"] = charts
        spec["usermeta"] = {"layout": "tabs"}
    elif layout is not None and layout.charts_per_row() > 1:
        per_row = layout.charts_per_row()
        rows = [charts[i : i + per_row] for i in range(0, len(charts), per_row)]
        spec["vconcat"] = [{"hconcat": row} for row in rows]
    else:
        spec["vconcat"] = charts
    return spec


def to_json(spec: dict[str, Any], indent: int = 2) -> str:
    """Serialize a spec to JSON text."""
    return json.dumps(spec, indent=indent, default=str)
