"""In-visualization interactions.

Visualization interactions are the component class that distinguishes PI2 from
parameter-widget tools (Table 1): gestures performed *on a chart* that rebind
choice nodes — possibly of a different chart's Difftree.  The paper's examples:

* brushing the overview timeline (G1) configures the date range of the detail
  charts (G2, G3/G4) — :attr:`InteractionType.BRUSH_X`,
* panning / zooming the SDSS scatter plot manipulates the ra/dec BETWEEN
  ranges — :attr:`InteractionType.PAN_ZOOM`,
* clicking a bar of Q3's chart binds the clicked value of ``a`` into Q1/Q2's
  predicate (Figure 5) — :attr:`InteractionType.CLICK_SELECT`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import InterfaceError
from repro.interface.widgets import ChoiceBinding


class InteractionType(Enum):
    """Supported in-visualization interaction types."""

    BRUSH_X = "brush_x"
    BRUSH_2D = "brush_2d"
    PAN_ZOOM = "pan_zoom"
    CLICK_SELECT = "click_select"
    HOVER_FILTER = "hover_filter"


@dataclass
class VisInteraction:
    """One visualization interaction of the generated interface.

    Attributes:
        interaction_id: Stable identifier (``I1``, ``I2``, ...).
        interaction_type: The gesture.
        source_vis_id: The chart on which the gesture is performed.
        attribute: The data attribute the gesture ranges over (e.g. ``date``).
        secondary_attribute: Second attribute for 2-D gestures (e.g. ``dec``).
        bindings: Choice nodes rebound by the gesture; they may belong to a
            different tree than the source chart (linked views).
        target_vis_ids: Charts whose queries are reconfigured by the gesture.
    """

    interaction_id: str
    interaction_type: InteractionType
    source_vis_id: str
    attribute: str
    secondary_attribute: str | None = None
    bindings: list[ChoiceBinding] = field(default_factory=list)
    target_vis_ids: list[str] = field(default_factory=list)

    def validate(self) -> None:
        if not self.bindings:
            raise InterfaceError(
                f"Interaction {self.interaction_id} is not bound to any choice node"
            )
        if self.interaction_type is InteractionType.BRUSH_2D and not self.secondary_attribute:
            raise InterfaceError(
                f"2-D brush {self.interaction_id} requires a secondary attribute"
            )

    @property
    def choice_ids(self) -> list[str]:
        return [binding.choice_id for binding in self.bindings]

    @property
    def tree_indices(self) -> list[int]:
        return sorted({binding.tree_index for binding in self.bindings})

    def is_linked(self) -> bool:
        """True when the gesture's source chart differs from its target charts."""
        return any(target != self.source_vis_id for target in self.target_vis_ids)

    def describe(self) -> str:
        targets = ", ".join(self.target_vis_ids) or self.source_vis_id
        attribute = self.attribute
        if self.secondary_attribute:
            attribute = f"{self.attribute}/{self.secondary_attribute}"
        return (
            f"{self.interaction_id}: {self.interaction_type.value} on {self.source_vis_id} "
            f"over {attribute} -> {targets}"
        )
