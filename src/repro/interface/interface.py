"""The Interface object: I = (V, M, L).

An :class:`Interface` packages the three mappings of Section 2:

* ``V`` — visualizations (Difftree results → charts),
* ``M`` — interactions (choice nodes → widgets and visualization interactions),
* ``L`` — layout (tree structure + screen size → component placement),

together with the Difftree forest it was generated from, so that runtime state
(:mod:`repro.interface.state`) can rebind choices, re-instantiate queries and
refresh chart data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import InterfaceError
from repro.difftree.builder import DifftreeForest
from repro.interface.interactions import VisInteraction
from repro.interface.layout import Layout
from repro.interface.visualizations import Visualization
from repro.interface.widgets import ChoiceBinding, Widget


@dataclass
class Interface:
    """A complete generated interactive visualization interface."""

    forest: DifftreeForest
    visualizations: list[Visualization] = field(default_factory=list)
    widgets: list[Widget] = field(default_factory=list)
    interactions: list[VisInteraction] = field(default_factory=list)
    layout: Layout | None = None
    name: str = "interface"

    # ------------------------------------------------------------------ #
    # Lookup helpers
    # ------------------------------------------------------------------ #

    def visualization(self, vis_id: str) -> Visualization:
        for vis in self.visualizations:
            if vis.vis_id == vis_id:
                return vis
        raise InterfaceError(f"No visualization {vis_id!r} in interface {self.name!r}")

    def widget(self, widget_id: str) -> Widget:
        for widget in self.widgets:
            if widget.widget_id == widget_id:
                return widget
        raise InterfaceError(f"No widget {widget_id!r} in interface {self.name!r}")

    def interaction(self, interaction_id: str) -> VisInteraction:
        for interaction in self.interactions:
            if interaction.interaction_id == interaction_id:
                return interaction
        raise InterfaceError(f"No interaction {interaction_id!r} in interface {self.name!r}")

    def visualizations_for_tree(self, tree_index: int) -> list[Visualization]:
        return [vis for vis in self.visualizations if vis.tree_index == tree_index]

    # ------------------------------------------------------------------ #
    # Component statistics (used by the cost model and Table 1)
    # ------------------------------------------------------------------ #

    @property
    def visualization_count(self) -> int:
        return len(self.visualizations)

    @property
    def widget_count(self) -> int:
        return len(self.widgets)

    @property
    def interaction_count(self) -> int:
        return len(self.interactions)

    def component_count(self) -> int:
        return self.visualization_count + self.widget_count + self.interaction_count

    def all_bindings(self) -> Iterator[tuple[str, ChoiceBinding]]:
        """All (component id, choice binding) pairs of the interaction mapping M."""
        for widget in self.widgets:
            for binding in widget.bindings:
                yield widget.widget_id, binding
        for interaction in self.interactions:
            for binding in interaction.bindings:
                yield interaction.interaction_id, binding

    def bound_choice_ids(self) -> set[str]:
        return {binding.choice_id for _component, binding in self.all_bindings()}

    def has_vis_interactions(self) -> bool:
        return bool(self.interactions)

    def has_structural_widgets(self) -> bool:
        """True when some widget changes query *structure* (not just a literal).

        This is the capability Table 1 calls "Arbitrary" widgets: toggling a
        subquery or choosing between projection attributes, as opposed to
        substituting a parameter value.
        """
        structural = {"predicate", "subquery", "select_item", "column", "query", "other", "mixed"}
        choice_kinds = self._choice_kinds()
        for widget in self.widgets:
            for binding in widget.bindings:
                if choice_kinds.get(binding.choice_id) in structural:
                    return True
        return False

    def _choice_kinds(self) -> dict[str, str]:
        from repro.difftree.tree_schema import choice_contexts

        kinds: dict[str, str] = {}
        for tree in self.forest.trees:
            for context in choice_contexts(tree):
                kinds[context.choice_id] = context.alternative_kind
        return kinds

    # ------------------------------------------------------------------ #
    # Validation and description
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Check structural invariants of the interface.

        Every visualization must reference an existing tree, every binding an
        existing choice node, and every choice node must be bound to exactly
        one component (otherwise parts of the query log are unreachable).
        """
        from repro.difftree.nodes import collect_choice_nodes

        for vis in self.visualizations:
            vis.validate()
            if not 0 <= vis.tree_index < self.forest.tree_count:
                raise InterfaceError(
                    f"Visualization {vis.vis_id} references unknown tree {vis.tree_index}"
                )
        for widget in self.widgets:
            widget.validate()
        for interaction in self.interactions:
            interaction.validate()

        known_choices: dict[int, set[str]] = {
            index: {node.choice_id for node in collect_choice_nodes(tree)}
            for index, tree in enumerate(self.forest.trees)
        }
        bound: set[tuple[int, str]] = set()
        for component_id, binding in self.all_bindings():
            if binding.tree_index not in known_choices:
                raise InterfaceError(
                    f"Component {component_id} binds unknown tree {binding.tree_index}"
                )
            if binding.choice_id not in known_choices[binding.tree_index]:
                raise InterfaceError(
                    f"Component {component_id} binds unknown choice {binding.choice_id!r}"
                )
            bound.add((binding.tree_index, binding.choice_id))
        for tree_index, choice_ids in known_choices.items():
            for choice_id in choice_ids:
                if (tree_index, choice_id) not in bound:
                    raise InterfaceError(
                        f"Choice node {choice_id!r} of tree {tree_index} is not bound to any component"
                    )

    def summary(self) -> dict:
        """A compact, serializable description of the interface."""
        return {
            "name": self.name,
            "visualizations": [vis.describe() for vis in self.visualizations],
            "widgets": [widget.describe() for widget in self.widgets],
            "interactions": [interaction.describe() for interaction in self.interactions],
            "layout": self.layout.describe() if self.layout else None,
            "tree_count": self.forest.tree_count,
            "choice_count": self.forest.choice_count(),
        }

    def fingerprint(self) -> tuple:
        """A hashable structural identity, normalized over gensym choice ids.

        Choice ids are allocation labels (``any_417``): two generations of the
        same structure legitimately differ in the numbers while being the same
        interface.  The fingerprint renames them by order of first appearance,
        so equality means "byte-identical modulo gensym ids" — the property
        the serving layer's determinism gates (concurrent generation vs the
        serial pipeline) assert.
        """
        renames: dict[str, str] = {}

        def rename(choice_id: str) -> str:
            if choice_id not in renames:
                renames[choice_id] = f"c#{len(renames) + 1}"
            return renames[choice_id]

        return (
            tuple(
                (
                    vis.vis_id,
                    vis.chart_type.value,
                    tuple(encoding.describe() for encoding in vis.encodings),
                    vis.tree_index,
                    vis.title,
                    vis.width,
                    vis.height,
                )
                for vis in self.visualizations
            ),
            tuple(
                (
                    widget.widget_id,
                    widget.widget_type.value,
                    widget.label,
                    tuple((b.tree_index, rename(b.choice_id)) for b in widget.bindings),
                    tuple(str(option) for option in widget.options),
                    widget.domain,
                    str(widget.default),
                )
                for widget in self.widgets
            ),
            tuple(
                (
                    interaction.interaction_id,
                    interaction.interaction_type.value,
                    interaction.source_vis_id,
                    interaction.attribute,
                    interaction.secondary_attribute,
                    tuple((b.tree_index, rename(b.choice_id)) for b in interaction.bindings),
                    tuple(interaction.target_vis_ids),
                )
                for interaction in self.interactions
            ),
        )

    def describe(self) -> str:
        lines = [f"Interface {self.name!r}"]
        lines.append(f"  trees: {self.forest.tree_count}, choices: {self.forest.choice_count()}")
        for vis in self.visualizations:
            lines.append(f"  {vis.describe()}")
        for widget in self.widgets:
            lines.append(f"  {widget.describe()}")
        for interaction in self.interactions:
            lines.append(f"  {interaction.describe()}")
        if self.layout is not None:
            lines.append("  layout:")
            for line in self.layout.describe().splitlines():
                lines.append(f"    {line}")
        return "\n".join(lines)
