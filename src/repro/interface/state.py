"""Runtime interface state: widget/interaction events → queries → chart data.

The generated :class:`~repro.interface.interface.Interface` is *live*: each
Difftree carries a current binding, and manipulating a widget or performing a
visualization interaction rebinds the affected choice nodes.  The state object
then re-instantiates the affected Difftrees into concrete SQL, executes them
against the catalog, and hands back fresh data for every affected chart —
which is exactly the loop the JupyterLab extension performs in the demo.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import InterfaceError
from repro.difftree.instantiate import (
    LiteralBinding,
    default_bindings,
    instantiate,
    instantiate_and_execute,
)
from repro.engine.catalog import Catalog
from repro.engine.table import QueryResult
from repro.interface.interactions import InteractionType, VisInteraction
from repro.interface.interface import Interface
from repro.interface.widgets import ChoiceBinding, WidgetType
from repro.sql.ast_nodes import Select
from repro.sql.printer import to_sql


@dataclass
class EventRecord:
    """One recorded state-changing event (for history/undo and tests)."""

    component_id: str
    payload: Any
    affected_trees: tuple[int, ...]
    sql_after: dict[int, str] = field(default_factory=dict)


class InterfaceState:
    """Mutable runtime state of a generated interface."""

    def __init__(self, interface: Interface, catalog: Catalog) -> None:
        self.interface = interface
        self.catalog = catalog
        self.bindings: dict[int, dict[str, Any]] = {
            index: default_bindings(tree) for index, tree in enumerate(interface.forest.trees)
        }
        self.history: list[EventRecord] = []
        self._cache: dict[int, QueryResult] = {}

    # ------------------------------------------------------------------ #
    # Queries and data
    # ------------------------------------------------------------------ #

    def current_query(self, tree_index: int) -> Select:
        """The concrete query the given Difftree currently expresses."""
        tree = self.interface.forest.trees[tree_index]
        query = instantiate(tree, self.bindings[tree_index])
        if not isinstance(query, Select):
            raise InterfaceError("Instantiated Difftree is not a SELECT statement")
        return query

    def current_sql(self, tree_index: int) -> str:
        return to_sql(self.current_query(tree_index))

    def data_for_tree(self, tree_index: int) -> QueryResult:
        """Execute (with memoization) the current query of one tree.

        Execution goes through :func:`instantiate_and_execute`, i.e. the
        catalog's canonical-query result cache: revisiting a binding (or
        another interface whose tree instantiates to an equivalent query)
        reuses the materialized result.
        """
        if tree_index not in self._cache:
            tree = self.interface.forest.trees[tree_index]
            self._cache[tree_index] = instantiate_and_execute(
                tree, self.catalog, self.bindings[tree_index]
            )
        return self._cache[tree_index]

    def data_for(self, vis_id: str) -> QueryResult:
        """Execute the query feeding one visualization."""
        vis = self.interface.visualization(vis_id)
        return self.data_for_tree(vis.tree_index)

    def refresh_all(self) -> dict[str, QueryResult]:
        """Execute every visualization's current query."""
        return {vis.vis_id: self.data_for(vis.vis_id) for vis in self.interface.visualizations}

    # ------------------------------------------------------------------ #
    # Widget events
    # ------------------------------------------------------------------ #

    def set_widget(self, widget_id: str, value: Any) -> EventRecord:
        """Apply a widget manipulation.

        * discrete widgets (radio/dropdown/button group/tabs): ``value`` is the
          selected option index,
        * boolean widgets (toggle/checkbox): ``value`` is a bool,
        * continuous widgets (slider): ``value`` is a number,
        * range widgets (range slider / date range): ``value`` is a
          ``(low, high)`` pair.
        """
        widget = self.interface.widget(widget_id)
        if widget.widget_type in (WidgetType.RANGE_SLIDER, WidgetType.DATE_RANGE):
            low, high = value
            self._bind_range(widget.bindings, low, high)
        elif widget.is_boolean():
            self._bind_all(widget.bindings, bool(value))
        elif widget.widget_type is WidgetType.SLIDER:
            self._bind_all(widget.bindings, LiteralBinding(value))
        else:
            if not isinstance(value, int) or not 0 <= value < len(widget.options):
                raise InterfaceError(
                    f"Widget {widget_id} expects an option index in "
                    f"[0, {len(widget.options)}), got {value!r}"
                )
            self._bind_all(widget.bindings, value)
        return self._record(widget_id, value, widget.bindings)

    # ------------------------------------------------------------------ #
    # Visualization interaction events
    # ------------------------------------------------------------------ #

    def apply_brush(self, interaction_id: str, low: Any, high: Any) -> EventRecord:
        """Brush an x-range on the interaction's source chart."""
        interaction = self._interaction_of_type(
            interaction_id, InteractionType.BRUSH_X, InteractionType.BRUSH_2D
        )
        self._bind_range(interaction.bindings, low, high)
        return self._record(interaction_id, (low, high), interaction.bindings)

    def apply_pan_zoom(
        self,
        interaction_id: str,
        x_range: tuple[Any, Any],
        y_range: tuple[Any, Any],
    ) -> EventRecord:
        """Pan/zoom the source chart: rebinds two (low, high) range pairs."""
        interaction = self._interaction_of_type(interaction_id, InteractionType.PAN_ZOOM)
        if len(interaction.bindings) < 4:
            raise InterfaceError(
                f"Pan/zoom interaction {interaction_id} needs four bound choices "
                f"(x low/high, y low/high)"
            )
        x_bindings = interaction.bindings[:2]
        y_bindings = interaction.bindings[2:4]
        self._bind_range(x_bindings, *x_range)
        self._bind_range(y_bindings, *y_range)
        return self._record(interaction_id, (x_range, y_range), interaction.bindings)

    def apply_click(self, interaction_id: str, value: Any) -> EventRecord:
        """Click a mark of the source chart, binding its value into the target."""
        interaction = self._interaction_of_type(interaction_id, InteractionType.CLICK_SELECT)
        self._bind_all(interaction.bindings, LiteralBinding(value))
        return self._record(interaction_id, value, interaction.bindings)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _interaction_of_type(self, interaction_id: str, *types: InteractionType) -> VisInteraction:
        interaction = self.interface.interaction(interaction_id)
        if interaction.interaction_type not in types:
            raise InterfaceError(
                f"Interaction {interaction_id} is a {interaction.interaction_type.value}, "
                f"expected one of {[t.value for t in types]}"
            )
        return interaction

    def _bind_all(self, bindings: list[ChoiceBinding], value: Any) -> None:
        for binding in bindings:
            self.bindings[binding.tree_index][binding.choice_id] = value
            self._cache.pop(binding.tree_index, None)

    def _bind_range(self, bindings: list[ChoiceBinding], low: Any, high: Any) -> None:
        if len(bindings) < 2:
            raise InterfaceError("Range events require a (low, high) pair of bound choices")
        low_binding, high_binding = bindings[0], bindings[1]
        self.bindings[low_binding.tree_index][low_binding.choice_id] = LiteralBinding(low)
        self.bindings[high_binding.tree_index][high_binding.choice_id] = LiteralBinding(high)
        self._cache.pop(low_binding.tree_index, None)
        self._cache.pop(high_binding.tree_index, None)

    def _record(self, component_id: str, payload: Any, bindings: list[ChoiceBinding]) -> EventRecord:
        affected = tuple(sorted({binding.tree_index for binding in bindings}))
        record = EventRecord(
            component_id=component_id,
            payload=payload,
            affected_trees=affected,
            sql_after={index: self.current_sql(index) for index in affected},
        )
        self.history.append(record)
        return record
