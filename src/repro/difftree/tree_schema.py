"""Difftree schema extraction.

The interface mapping step of PI2 is formulated as schema matching: both the
Difftrees and the interface components expose a *schema*, and mapping is the
search for a compatible match.  This module computes the Difftree side:

* a :class:`TreeProfile` per Difftree — the result schema of its default
  instantiation plus query-shape features (from ``repro.sql.analyzer``), and
* a :class:`ChoiceContext` per choice node — what kind of variation it
  controls (literals, columns, predicates, whole subqueries), which attribute
  it constrains, which clause it lives in, and whether it forms a low/high
  range pair with a sibling choice (the pattern that maps to brushes, sliders
  and pan/zoom interactions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.difftree.builder import DifftreeForest
from repro.difftree.instantiate import default_bindings, instantiate
from repro.difftree.nodes import AnyNode, ChoiceNode, OptNode, collect_choice_nodes
from repro.sql.analyzer import Analyzer, QueryProfile
from repro.sql.ast_nodes import (
    BetweenOp,
    BinaryOp,
    ColumnRef,
    Exists,
    FunctionCall,
    InList,
    InSubquery,
    Literal,
    Select,
    SelectItem,
    SqlNode,
)
from repro.sql.schema import TableSchema

#: Clause labels used by ChoiceContext.clause.
CLAUSES = ("select", "from", "where", "group_by", "having", "order_by", "cte")


@dataclass(frozen=True)
class ChoiceContext:
    """Mapping-relevant description of one choice node."""

    choice_id: str
    kind: str  # "any" | "opt"
    cardinality: int
    alternative_kind: str
    clause: str
    target_attribute: str | None = None
    comparison_op: str | None = None
    literal_values: tuple = ()
    range_partner: str | None = None
    range_position: str | None = None  # "low" | "high"
    wraps_subquery: bool = False
    wraps_predicate: bool = False

    @property
    def is_numeric_domain(self) -> bool:
        return self.alternative_kind == "numeric_literal"

    @property
    def is_range_member(self) -> bool:
        return self.range_partner is not None


@dataclass
class TreeProfile:
    """Schema-matching profile of one Difftree."""

    tree_index: int
    default_query: Select
    query_profile: QueryProfile
    choices: list[ChoiceContext] = field(default_factory=list)

    def choice(self, choice_id: str) -> ChoiceContext:
        for context in self.choices:
            if context.choice_id == choice_id:
                return context
        raise KeyError(choice_id)

    def range_pairs(self) -> list[tuple[ChoiceContext, ChoiceContext]]:
        """(low, high) choice pairs that together define a value range."""
        pairs = []
        by_id = {context.choice_id: context for context in self.choices}
        for context in self.choices:
            if context.range_position == "low" and context.range_partner in by_id:
                pairs.append((context, by_id[context.range_partner]))
        return pairs


@dataclass
class ForestSchema:
    """Profiles for every tree of a forest."""

    profiles: list[TreeProfile] = field(default_factory=list)

    def all_choices(self) -> list[tuple[int, ChoiceContext]]:
        result = []
        for profile in self.profiles:
            for context in profile.choices:
                result.append((profile.tree_index, context))
        return result


# --------------------------------------------------------------------------- #
# Choice context extraction
# --------------------------------------------------------------------------- #


def _alternative_kind(node: ChoiceNode) -> str:
    if isinstance(node, OptNode):
        child = node.child
        if isinstance(child, (InSubquery, Exists)) or any(
            isinstance(descendant, Select) for descendant in child.walk()
        ):
            return "subquery"
        if _is_predicate(child):
            return "predicate"
        if isinstance(child, SelectItem):
            return "select_item"
        if isinstance(child, ColumnRef):
            return "column"
        if isinstance(child, Literal):
            return (
                "numeric_literal"
                if isinstance(child.value, (int, float)) and not isinstance(child.value, bool)
                else "text_literal"
            )
        return "other"
    assert isinstance(node, AnyNode)
    alternatives = node.alternatives
    if all(isinstance(alt, Literal) for alt in alternatives):
        if node.is_numeric_literal_choice():
            return "numeric_literal"
        return "text_literal"
    if all(isinstance(alt, ColumnRef) for alt in alternatives):
        return "column"
    if all(isinstance(alt, SelectItem) for alt in alternatives):
        return "select_item"
    if all(isinstance(alt, Select) for alt in alternatives):
        return "query"
    if all(_is_predicate(alt) for alt in alternatives):
        return "predicate"
    return "mixed"


def _is_predicate(node: SqlNode) -> bool:
    if isinstance(node, (BetweenOp, InList, InSubquery, Exists)):
        return True
    if isinstance(node, BinaryOp) and node.op in ("=", "<>", "<", "<=", ">", ">=", "AND", "OR", "LIKE"):
        return True
    return False


def _literal_values(node: ChoiceNode) -> tuple:
    if isinstance(node, AnyNode) and node.is_literal_choice():
        return tuple(node.literal_values())
    return ()


def _find_clause(root: Select, target: ChoiceNode) -> str:
    """The clause of the nearest enclosing SELECT that contains ``target``."""
    # Locate the innermost Select that contains the target.
    owner = root
    for node in root.walk():
        if isinstance(node, Select) and any(descendant is target for descendant in node.walk()):
            owner = node
    slots: list[tuple[str, list[SqlNode]]] = [
        ("select", [item for item in owner.select_items]),
        ("from", [owner.from_clause] if owner.from_clause is not None else []),
        ("where", [owner.where] if owner.where is not None else []),
        ("group_by", list(owner.group_by)),
        ("having", [owner.having] if owner.having is not None else []),
        ("order_by", list(owner.order_by)),
        ("cte", list(owner.ctes)),
    ]
    for clause, nodes in slots:
        for node in nodes:
            if node is target or any(descendant is target for descendant in node.walk()):
                return clause
    return "select"


def _comparison_context(tree: SqlNode, target: ChoiceNode) -> tuple[str | None, str | None, str | None]:
    """(attribute, operator, range position) of the comparison enclosing ``target``."""
    for node in tree.walk():
        if isinstance(node, BinaryOp) and node.op in ("=", "<>", "<", "<=", ">", ">="):
            if node.right is target and isinstance(node.left, ColumnRef):
                return node.left.name, node.op, None
            if node.left is target and isinstance(node.right, ColumnRef):
                return node.right.name, node.op, None
        if isinstance(node, BetweenOp) and isinstance(node.expr, ColumnRef):
            if node.low is target:
                return node.expr.name, "between", "low"
            if node.high is target:
                return node.expr.name, "between", "high"
        if isinstance(node, (InList, InSubquery)) and isinstance(node.expr, ColumnRef):
            if any(child is target for child in node.children()):
                return node.expr.name, "in", None
        if isinstance(node, FunctionCall):
            if any(arg is target for arg in node.args):
                # e.g. ANY inside strftime(...) — attribute unknown.
                return None, node.lower_name, None
    return None, None, None


def _range_partners(
    tree: SqlNode, contexts: dict[str, tuple[str | None, str | None, str | None]]
) -> dict[str, tuple[str, str]]:
    """Pair up low/high choices of the same BETWEEN: choice_id -> (partner, position)."""
    partners: dict[str, tuple[str, str]] = {}
    for node in tree.walk():
        if not isinstance(node, BetweenOp):
            continue
        low, high = node.low, node.high
        if isinstance(low, ChoiceNode) and isinstance(high, ChoiceNode):
            partners[low.choice_id] = (high.choice_id, "low")
            partners[high.choice_id] = (low.choice_id, "high")
    return partners


def choice_contexts(tree: SqlNode) -> list[ChoiceContext]:
    """Compute the :class:`ChoiceContext` of every choice node in a Difftree."""
    choices = collect_choice_nodes(tree)
    if not choices:
        return []
    root = tree if isinstance(tree, Select) else None
    raw_contexts: dict[str, tuple[str | None, str | None, str | None]] = {}
    for choice in choices:
        raw_contexts[choice.choice_id] = _comparison_context(tree, choice)
    partners = _range_partners(tree, raw_contexts)

    contexts: list[ChoiceContext] = []
    for choice in choices:
        attribute, operator, position = raw_contexts[choice.choice_id]
        partner_id, partner_position = partners.get(choice.choice_id, (None, None))
        clause = _find_clause(root, choice) if root is not None else "select"
        kind = "opt" if isinstance(choice, OptNode) else "any"
        alternative_kind = _alternative_kind(choice)
        contexts.append(
            ChoiceContext(
                choice_id=choice.choice_id,
                kind=kind,
                cardinality=2 if isinstance(choice, OptNode) else choice.cardinality,  # type: ignore[union-attr]
                alternative_kind=alternative_kind,
                clause=clause,
                target_attribute=attribute,
                comparison_op=operator,
                literal_values=_literal_values(choice),
                range_partner=partner_id,
                range_position=partner_position or position,
                wraps_subquery=alternative_kind == "subquery",
                wraps_predicate=alternative_kind in ("predicate", "subquery"),
            )
        )
    return contexts


# --------------------------------------------------------------------------- #
# Tree and forest profiles
# --------------------------------------------------------------------------- #


def tree_profile(
    tree: SqlNode, tree_index: int, table_schemas: dict[str, TableSchema]
) -> TreeProfile:
    """Profile one Difftree: default instantiation analysis plus choice contexts."""
    default_query = instantiate(tree, default_bindings(tree))
    if not isinstance(default_query, Select):
        raise TypeError("Difftree default instantiation is not a SELECT")
    analyzer = Analyzer(table_schemas)
    profile = analyzer.analyze(default_query)
    return TreeProfile(
        tree_index=tree_index,
        default_query=default_query,
        query_profile=profile,
        choices=choice_contexts(tree),
    )


class TreeProfileCache:
    """Signature-keyed, LRU-bounded cache of per-tree profiles.

    A tree's profile is a deterministic function of the tree structure and
    the fixed catalog schemas, so it can be shared across every forest state
    a search visits.  Lookups take an identity fast path first (neighbouring
    forest states share unchanged trees by object identity), then fall back
    to the *structural* (choice-id-insensitive) signature, which also catches
    equal trees rebuilt along different action sequences with fresh choice
    ids — their choice nodes correspond positionally (pre-order), so the
    cached profile's choice contexts are remapped to the new tree's ids.
    """

    def __init__(self, capacity: int = 1024) -> None:
        from repro.difftree.signatures import LruDict

        self._by_signature = LruDict(capacity)
        self._by_id: dict[int, tuple[SqlNode, TreeProfile]] = {}
        self._id_capacity = capacity

    @property
    def hits(self) -> int:
        return self._by_signature.hits

    @property
    def misses(self) -> int:
        return self._by_signature.misses

    def get(self, tree: SqlNode) -> TreeProfile | None:
        entry = self._by_id.get(id(tree))
        if entry is not None and entry[0] is tree:
            self._by_signature.hits += 1
            return entry[1]
        from repro.difftree.signatures import structural_signature

        cached = self._by_signature.get(structural_signature(tree))
        if cached is None:
            return None
        cached_ids, profile = cached
        tree_ids = tuple(node.choice_id for node in collect_choice_nodes(tree))
        if tree_ids == cached_ids:
            return profile
        return _remap_profile(profile, cached_ids, tree_ids)

    def put(self, tree: SqlNode, profile: TreeProfile) -> None:
        from repro.difftree.signatures import structural_signature

        tree_ids = tuple(node.choice_id for node in collect_choice_nodes(tree))
        self._by_signature.put(structural_signature(tree), (tree_ids, profile))
        if len(self._by_id) >= self._id_capacity:
            self._by_id.clear()
        self._by_id[id(tree)] = (tree, profile)

    def stats(self) -> dict[str, int]:
        return self._by_signature.stats()


def _remap_profile(
    profile: TreeProfile, cached_ids: tuple[str, ...], tree_ids: tuple[str, ...]
) -> TreeProfile:
    """Rebind a cached profile's choice contexts to a structurally equal tree.

    The two trees differ only in choice ids; choice nodes correspond
    positionally, so every id-bearing field is translated through the
    positional map.  The result is exactly the profile a from-scratch
    ``tree_profile`` call on the new tree would produce.
    """
    from dataclasses import replace

    mapping = dict(zip(cached_ids, tree_ids))
    choices = [
        replace(
            context,
            choice_id=mapping[context.choice_id],
            range_partner=mapping.get(context.range_partner, context.range_partner)
            if context.range_partner is not None
            else None,
        )
        for context in profile.choices
    ]
    return TreeProfile(
        tree_index=profile.tree_index,
        default_query=profile.default_query,
        query_profile=profile.query_profile,
        choices=choices,
    )


def _reindexed(profile: TreeProfile, index: int) -> TreeProfile:
    if profile.tree_index == index:
        return profile
    return TreeProfile(
        tree_index=index,
        default_query=profile.default_query,
        query_profile=profile.query_profile,
        choices=profile.choices,
    )


def forest_schema(
    forest: DifftreeForest,
    table_schemas: dict[str, TableSchema],
    profile_cache: "dict | TreeProfileCache | None" = None,
) -> ForestSchema:
    """Profiles for every tree of a forest.

    ``profile_cache`` lets the search layer reuse profiles of trees shared
    between neighbouring forest states.  It accepts either a
    :class:`TreeProfileCache` (signature-keyed, LRU-bounded — what the search
    layer uses) or a plain identity-keyed dict (the legacy protocol).
    """
    profiles = []
    use_tree_cache = isinstance(profile_cache, TreeProfileCache)
    for index, tree in enumerate(forest.trees):
        if use_tree_cache:
            cached_profile = profile_cache.get(tree)
        else:
            cached = profile_cache.get(id(tree)) if profile_cache is not None else None
            cached_profile = cached[1] if cached is not None else None
        if cached_profile is not None:
            profile = _reindexed(cached_profile, index)
        else:
            profile = tree_profile(tree, index, table_schemas)
            if use_tree_cache:
                profile_cache.put(tree, profile)
            elif profile_cache is not None:
                profile_cache[id(tree)] = (tree, profile)
        profiles.append(profile)
    return ForestSchema(profiles=profiles)
