"""Building Difftree forests from query logs.

PI2 may render a query log as one merged Difftree (one chart whose widgets
re-express every query), as one Difftree per query (a static chart each), or —
most commonly — as a *forest* in between, where structurally similar queries
are clustered and merged while dissimilar ones keep their own tree (the
multi-view interfaces of Figure 5 and of the COVID walkthrough).

The forest also records provenance (which input queries each tree covers),
which the cost model's expressiveness term and the coverage tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import MergeError
from repro.difftree.canonical import canonicalize, queries_share_source, structural_similarity
from repro.difftree.diff import merge_nodes
from repro.difftree.instantiate import covers
from repro.difftree.nodes import collect_choice_nodes
from repro.difftree.transformations import normalize_difftree
from repro.sql.ast_nodes import Select, SqlNode
from repro.sql.parser import parse_select

#: Queries at least this similar are clustered into the same Difftree by default.
DEFAULT_SIMILARITY_THRESHOLD = 0.55


@dataclass
class DifftreeForest:
    """A set of Difftrees jointly covering a query log.

    Attributes:
        trees: the Difftrees (each covers one or more input queries).
        members: for each tree, the indices of the input queries it was built
            from (parallel to ``trees``).
        queries: the canonicalized input queries, in log order.
    """

    trees: list[SqlNode] = field(default_factory=list)
    members: list[list[int]] = field(default_factory=list)
    queries: list[Select] = field(default_factory=list)

    @property
    def tree_count(self) -> int:
        return len(self.trees)

    def choice_count(self) -> int:
        """Total number of choice nodes across all trees."""
        return sum(len(collect_choice_nodes(tree)) for tree in self.trees)

    def queries_for_tree(self, index: int) -> list[Select]:
        return [self.queries[i] for i in self.members[index]]

    def copy(self) -> "DifftreeForest":
        return DifftreeForest(
            trees=list(self.trees),
            members=[list(m) for m in self.members],
            queries=list(self.queries),
        )

    def merge_trees(self, first: int, second: int) -> "DifftreeForest":
        """A new forest with trees ``first`` and ``second`` merged into one."""
        if first == second:
            raise MergeError("Cannot merge a tree with itself")
        if not (0 <= first < self.tree_count and 0 <= second < self.tree_count):
            raise MergeError(f"Tree indices out of range: {first}, {second}")
        low, high = sorted((first, second))
        merged_tree = normalize_difftree(merge_nodes(self.trees[low], self.trees[high]))
        merged_members = sorted(self.members[low] + self.members[high])
        trees = [tree for i, tree in enumerate(self.trees) if i not in (low, high)]
        members = [m for i, m in enumerate(self.members) if i not in (low, high)]
        trees.insert(low, merged_tree)
        members.insert(low, merged_members)
        return DifftreeForest(trees=trees, members=members, queries=list(self.queries))

    def replace_tree(self, index: int, tree: SqlNode) -> "DifftreeForest":
        """A new forest with one tree replaced (used by transformation steps)."""
        updated = self.copy()
        updated.trees[index] = tree
        return updated

    def covers_all(self, limit: int = 4096) -> bool:
        """True when every input query is expressible by the tree that owns it."""
        for index, member_indices in enumerate(self.members):
            tree_queries = [self.queries[i] for i in member_indices]
            if not covers(self.trees[index], tree_queries, limit=limit):
                return False
        return True

    def signature(self) -> tuple:
        """Hashable identity of the forest structure (used by search visited-sets).

        Per-tree fingerprints are memoized on the tree objects (see
        :mod:`repro.difftree.signatures`), so re-signing a forest after an
        action only pays for the one or two trees the action created.
        """
        from repro.difftree.signatures import forest_signature

        return forest_signature(self)


def parse_query_log(queries: Sequence[str | SqlNode]) -> list[Select]:
    """Parse and canonicalize a query log given as SQL strings or ASTs."""
    parsed: list[Select] = []
    for query in queries:
        if isinstance(query, str):
            ast = parse_select(query)
        elif isinstance(query, Select):
            ast = query
        else:
            raise MergeError(f"Query log entries must be SQL strings or SELECT ASTs, got {type(query).__name__}")
        parsed.append(canonicalize(ast))
    return parsed


def build_forest(
    queries: Sequence[str | SqlNode],
    strategy: str = "clustered",
    similarity_threshold: float = DEFAULT_SIMILARITY_THRESHOLD,
) -> DifftreeForest:
    """Build the initial Difftree forest for a query log.

    Strategies:
        ``per_query`` — one Difftree per query (the static interface of Fig. 2).
        ``merged`` — a single Difftree covering the whole log (Fig. 4).
        ``clustered`` — greedy similarity clustering, then one Difftree per
        cluster (the default starting state for the search).
    """
    parsed = parse_query_log(queries)
    if not parsed:
        raise MergeError("Query log is empty")

    if strategy == "per_query":
        return DifftreeForest(
            trees=list(parsed), members=[[i] for i in range(len(parsed))], queries=parsed
        )

    if strategy == "merged":
        merged: SqlNode = parsed[0]
        for query in parsed[1:]:
            merged = merge_nodes(merged, query)
        return DifftreeForest(
            trees=[normalize_difftree(merged)],
            members=[list(range(len(parsed)))],
            queries=parsed,
        )

    if strategy == "clustered":
        return _build_clustered_forest(parsed, similarity_threshold)

    raise MergeError(f"Unknown forest strategy {strategy!r}")


def _build_clustered_forest(
    parsed: list[Select], similarity_threshold: float
) -> DifftreeForest:
    clusters: list[list[int]] = []
    cluster_trees: list[SqlNode] = []
    for index, query in enumerate(parsed):
        best_cluster = -1
        best_similarity = 0.0
        for cluster_index, representative in enumerate(cluster_trees):
            candidate = parsed[clusters[cluster_index][0]]
            if not queries_share_source(candidate, query):
                continue
            similarity = structural_similarity(representative, query)
            if similarity > best_similarity:
                best_similarity = similarity
                best_cluster = cluster_index
        if best_cluster >= 0 and best_similarity >= similarity_threshold:
            clusters[best_cluster].append(index)
            cluster_trees[best_cluster] = normalize_difftree(
                merge_nodes(cluster_trees[best_cluster], query)
            )
        else:
            clusters.append([index])
            cluster_trees.append(query)
    return DifftreeForest(trees=cluster_trees, members=clusters, queries=parsed)


def similarity_matrix(queries: Sequence[str | SqlNode]) -> list[list[float]]:
    """Pairwise structural similarity of the queries in a log (for diagnostics)."""
    parsed = parse_query_log(queries)
    matrix = [[0.0] * len(parsed) for _ in parsed]
    for i, query_a in enumerate(parsed):
        for j, query_b in enumerate(parsed):
            matrix[i][j] = 1.0 if i == j else structural_similarity(query_a, query_b)
    return matrix
