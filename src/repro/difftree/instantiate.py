"""Instantiating Difftrees into concrete SQL queries.

A *binding* assigns a value to every choice node of a Difftree:

* for an :class:`~repro.difftree.nodes.AnyNode`, the index of the selected
  alternative (an ``int``),
* for an :class:`~repro.difftree.nodes.OptNode`, whether the subtree is
  present (a ``bool``).

:func:`instantiate` resolves the choice nodes under a binding and rebuilds a
plain SQL AST, taking care of structural fall-out: an OPT node switched off
removes its subtree, which may collapse an AND chain or drop a SELECT item.
This is exactly the mechanism interface widgets use at runtime — a widget
updates a binding, PI2 re-instantiates the query and re-executes it.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, Mapping, Sequence

from repro.errors import BindingError
from repro.difftree.nodes import AnyNode, OptNode, collect_choice_nodes
from repro.sql.ast_nodes import (
    BinaryOp,
    OrderItem,
    Select,
    SelectItem,
    SqlNode,
)

Binding = Mapping[str, Any]


class LiteralBinding:
    """Wrapper marking a binding value as a literal to substitute.

    Plain integers bound to an ANY node are interpreted as alternative
    *indices*; interface events (sliders, brushes, clicks) that want to bind a
    concrete literal value — including integers — wrap it in this class to
    force the literal interpretation.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LiteralBinding({self.value!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LiteralBinding) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("LiteralBinding", self.value))


def default_bindings(tree: SqlNode) -> dict[str, Any]:
    """The default binding: first alternative of each ANY, OPT per its default."""
    bindings: dict[str, Any] = {}
    for node in collect_choice_nodes(tree):
        if isinstance(node, AnyNode):
            bindings[node.choice_id] = 0
        elif isinstance(node, OptNode):
            bindings[node.choice_id] = node.default_on
    return bindings


def binding_space_size(tree: SqlNode) -> int:
    """Number of distinct bindings of the Difftree."""
    size = 1
    for node in collect_choice_nodes(tree):
        if isinstance(node, AnyNode):
            size *= node.cardinality
        elif isinstance(node, OptNode):
            size *= 2
    return size


def enumerate_bindings(tree: SqlNode, limit: int | None = None) -> Iterator[dict[str, Any]]:
    """Enumerate bindings (optionally capped at ``limit`` combinations)."""
    choices = collect_choice_nodes(tree)
    domains: list[list[Any]] = []
    for node in choices:
        if isinstance(node, AnyNode):
            domains.append(list(range(node.cardinality)))
        else:
            domains.append([True, False])
    count = 0
    for combination in itertools.product(*domains):
        if limit is not None and count >= limit:
            return
        count += 1
        yield {node.choice_id: value for node, value in zip(choices, combination)}


def instantiate(tree: SqlNode, bindings: Binding | None = None) -> SqlNode:
    """Resolve every choice node of ``tree`` under ``bindings``.

    Missing binding entries fall back to the choice node's default.  Raises
    BindingError when the instantiation removes a required clause (e.g. every
    SELECT item was optional and switched off).
    """
    bindings = dict(bindings or {})
    result = _instantiate(tree, bindings)
    if result is None:
        raise BindingError("Instantiation removed the entire query")
    return result


def _instantiate(node: SqlNode, bindings: Binding) -> SqlNode | None:
    if isinstance(node, AnyNode):
        value = bindings.get(node.choice_id, 0)
        if isinstance(value, LiteralBinding):
            if not node.is_literal_choice():
                raise BindingError(
                    f"Choice {node.choice_id} is not a literal choice; cannot bind "
                    f"value {value.value!r}"
                )
            from repro.sql.ast_nodes import Literal

            return Literal(value.value)
        if isinstance(value, bool):
            raise BindingError(
                f"Binding for {node.choice_id} must be an alternative index or a "
                f"literal value, got a boolean"
            )
        if isinstance(value, int) and 0 <= value < node.cardinality:
            return _instantiate(node.alternatives[value], bindings)
        # Widgets such as sliders and brushes generalize literal choices beyond
        # the input queries: any plain value binds as a fresh literal.
        if node.is_literal_choice():
            from repro.sql.ast_nodes import Literal

            return Literal(value)
        raise BindingError(
            f"Binding for {node.choice_id} must be an index in "
            f"[0, {node.cardinality}), got {value!r}"
        )
    if isinstance(node, OptNode):
        enabled = bindings.get(node.choice_id, node.default_on)
        if not enabled:
            return None
        return _instantiate(node.child, bindings)
    if isinstance(node, Select):
        return _instantiate_select(node, bindings)
    if isinstance(node, BinaryOp) and node.op in ("AND", "OR"):
        left = _instantiate(node.left, bindings)
        right = _instantiate(node.right, bindings)
        if left is None and right is None:
            return None
        if left is None:
            return right
        if right is None:
            return left
        return BinaryOp(op=node.op, left=left, right=right)

    children = node.children()
    if not children:
        return node
    new_children = []
    for child in children:
        resolved = _instantiate(child, bindings)
        if resolved is None:
            # A required child vanished: propagate removal upwards.  The
            # enclosing AND/Select levels know how to absorb it.
            return None
        new_children.append(resolved)
    return node.with_children(new_children)


def _instantiate_select(query: Select, bindings: Binding) -> Select:
    select_items = _instantiate_list(query.select_items, bindings)
    if not select_items:
        raise BindingError("Instantiation removed every SELECT item")
    from_clause = (
        _instantiate(query.from_clause, bindings) if query.from_clause is not None else None
    )
    where = _instantiate(query.where, bindings) if query.where is not None else None
    group_by = _instantiate_list(query.group_by, bindings)
    having = _instantiate(query.having, bindings) if query.having is not None else None
    order_by = _instantiate_list(query.order_by, bindings)
    ctes = _instantiate_list(query.ctes, bindings)
    return Select(
        select_items=[_as_select_item(item) for item in select_items],
        from_clause=from_clause,
        where=where,
        group_by=group_by,
        having=having,
        order_by=[item for item in order_by if isinstance(item, OrderItem)],
        limit=query.limit,
        offset=query.offset,
        distinct=query.distinct,
        ctes=ctes,  # type: ignore[arg-type]
    )


def _instantiate_list(items: Sequence[SqlNode], bindings: Binding) -> list[SqlNode]:
    resolved: list[SqlNode] = []
    for item in items:
        value = _instantiate(item, bindings)
        if value is not None:
            resolved.append(value)
    return resolved


def _as_select_item(node: SqlNode) -> SelectItem:
    if isinstance(node, SelectItem):
        return node
    return SelectItem(expr=node)


def instantiate_and_execute(tree: SqlNode, catalog, bindings: Binding | None = None):
    """Instantiate ``tree`` under ``bindings`` and execute it against ``catalog``.

    This is the runtime loop every interface event performs — widget update →
    re-instantiate → re-execute — routed through the catalog's canonical-query
    result cache, so sibling bindings (and sibling interface candidates during
    search) that instantiate to equivalent SQL share one execution.

    Returns the engine's :class:`~repro.engine.table.QueryResult`.
    """
    from repro.sql.ast_nodes import SetOperation

    query = instantiate(tree, bindings)
    if not isinstance(query, (Select, SetOperation)):
        raise BindingError("Instantiated Difftree is not an executable SELECT statement")
    return catalog.execute(query)


# --------------------------------------------------------------------------- #
# Coverage: can the Difftree express a given query?
# --------------------------------------------------------------------------- #


def find_binding_for(tree: SqlNode, target: SqlNode, limit: int = 4096) -> dict[str, Any] | None:
    """Search for a binding under which ``tree`` instantiates to ``target``.

    Queries are compared in canonical form (AND chains flattened to a left-deep
    shape) so that equivalent parenthesizations count as the same query.
    Returns the binding, or None if no binding (within ``limit`` combinations)
    reproduces the target query.
    """
    from repro.difftree.canonical import canonical_form

    canonical_target = canonical_form(target)
    for bindings in enumerate_bindings(tree, limit=limit):
        try:
            candidate = instantiate(tree, bindings)
        except BindingError:
            continue
        if candidate == target or canonical_form(candidate) == canonical_target:
            return bindings
    return None


def covers(tree: SqlNode, queries: Sequence[SqlNode], limit: int = 4096) -> bool:
    """True when every query in ``queries`` is expressible by ``tree``."""
    return all(find_binding_for(tree, query, limit=limit) is not None for query in queries)


def expressiveness_ratio(tree: SqlNode, queries: Sequence[SqlNode], limit: int = 4096) -> float:
    """Fraction of ``queries`` the Difftree can express exactly."""
    if not queries:
        return 1.0
    covered = sum(1 for query in queries if find_binding_for(tree, query, limit=limit) is not None)
    return covered / len(queries)
