"""Difftree node model.

A *Difftree* is a generalization of a SQL AST (Section 2 of the paper): it is
an AST whose nodes may additionally be **choice nodes** that encode structural
variations the user can control through the interface:

* :class:`AnyNode` — chooses exactly one of its child subtrees ("ANY" in the
  paper, e.g. Figure 3's choice between two predicates or two operands).
* :class:`OptNode` — toggles the presence of its single child subtree ("OPT",
  e.g. Figure 4's optional WHERE clause and the V3 toggle of the case study).

Choice nodes are themselves :class:`~repro.sql.ast_nodes.SqlNode` subclasses so
the whole Difftree reuses the AST's uniform tree protocol (walk, children,
with_children).  Every choice node carries a stable ``choice_id`` used by

* bindings (choice id → selected alternative / on-off) when instantiating a
  concrete query,
* the interaction mapping (choice id → widget or visualization interaction).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import DifftreeError
from repro.sql.ast_nodes import ColumnRef, Literal, SqlNode

_CHOICE_COUNTER = itertools.count(1)


def _next_choice_id(prefix: str) -> str:
    return f"{prefix}{next(_CHOICE_COUNTER)}"


def reset_choice_ids() -> None:
    """Reset the global choice-id counter (used by tests for determinism)."""
    global _CHOICE_COUNTER
    _CHOICE_COUNTER = itertools.count(1)


@dataclass(frozen=True)
class ChoiceNode(SqlNode):
    """Base class of ANY / OPT choice nodes."""

    choice_id: str = field(default="", compare=False)

    @property
    def kind(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class AnyNode(ChoiceNode):
    """A choice node that selects exactly one of its alternatives."""

    alternatives: list[SqlNode] = field(default_factory=list)
    choice_id: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.choice_id:
            object.__setattr__(self, "choice_id", _next_choice_id("any_"))
        if len(self.alternatives) < 1:
            raise DifftreeError("AnyNode requires at least one alternative")

    @property
    def cardinality(self) -> int:
        return len(self.alternatives)

    def is_literal_choice(self) -> bool:
        """True when every alternative is a plain literal."""
        return all(isinstance(alt, Literal) for alt in self.alternatives)

    def is_numeric_literal_choice(self) -> bool:
        """True when every alternative is a numeric literal."""
        return all(
            isinstance(alt, Literal) and isinstance(alt.value, (int, float)) and not isinstance(alt.value, bool)
            for alt in self.alternatives
        )

    def is_column_choice(self) -> bool:
        """True when every alternative is a column reference."""
        return all(isinstance(alt, ColumnRef) for alt in self.alternatives)

    def literal_values(self) -> list[object]:
        """The literal values of the alternatives (requires is_literal_choice)."""
        if not self.is_literal_choice():
            raise DifftreeError(f"Choice node {self.choice_id} is not a literal choice")
        return [alt.value for alt in self.alternatives]  # type: ignore[union-attr]


@dataclass(frozen=True)
class OptNode(ChoiceNode):
    """A choice node that toggles the presence of its child subtree."""

    child: SqlNode = field(default=None)  # type: ignore[assignment]
    default_on: bool = True
    choice_id: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.choice_id:
            object.__setattr__(self, "choice_id", _next_choice_id("opt_"))
        if self.child is None:
            raise DifftreeError("OptNode requires a child subtree")


def is_choice_node(node: SqlNode) -> bool:
    """Return True when ``node`` is an ANY or OPT choice node."""
    return isinstance(node, ChoiceNode)


def collect_choice_nodes(tree: SqlNode) -> list[ChoiceNode]:
    """All choice nodes of a Difftree in pre-order."""
    return [node for node in tree.walk() if isinstance(node, ChoiceNode)]


def choice_node_by_id(tree: SqlNode, choice_id: str) -> ChoiceNode:
    """Find a choice node by id; raises DifftreeError when absent."""
    for node in collect_choice_nodes(tree):
        if node.choice_id == choice_id:
            return node
    raise DifftreeError(f"No choice node with id {choice_id!r}")


def iter_parents(tree: SqlNode) -> Iterator[tuple[SqlNode, SqlNode]]:
    """Yield (parent, child) pairs over the whole tree."""
    for node in tree.walk():
        for child in node.children():
            yield node, child


def parent_of(tree: SqlNode, target: SqlNode) -> SqlNode | None:
    """Return the parent of ``target`` within ``tree`` (identity comparison)."""
    for parent, child in iter_parents(tree):
        if child is target:
            return parent
    return None


def count_static_nodes(tree: SqlNode) -> int:
    """Number of non-choice nodes in the Difftree."""
    return sum(1 for node in tree.walk() if not isinstance(node, ChoiceNode))


def count_choice_nodes(tree: SqlNode) -> int:
    """Number of choice nodes in the Difftree."""
    return sum(1 for node in tree.walk() if isinstance(node, ChoiceNode))
