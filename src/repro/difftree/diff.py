"""Merging query ASTs into Difftrees.

The merge algorithm implements step 1 of the PI2 pipeline: given a sequence of
queries it produces Difftrees whose choice nodes capture exactly where the
queries differ.  The core operation is :func:`merge_nodes`, a structural merge
of two (possibly already merged) trees:

* identical subtrees stay as they are,
* subtrees with the same label but differing children are merged child-wise
  (clause lists are aligned so that unchanged SELECT items / conjuncts match
  up, and unmatched ones become OPT nodes),
* differing literals and otherwise incompatible subtrees become ANY nodes.

``SELECT`` statements get dedicated handling because their clauses have
distinct merge semantics (e.g. a missing WHERE clause is an OPT, predicate
conjuncts are aligned as a set-like list).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import MergeError
from repro.difftree.canonical import join_conjuncts, split_conjuncts
from repro.difftree.nodes import AnyNode, OptNode
from repro.sql.ast_nodes import (
    Select,
    SelectItem,
    SqlNode,
)


def merge_nodes(a: SqlNode, b: SqlNode) -> SqlNode:
    """Merge two Difftrees / ASTs into one Difftree covering both."""
    if a == b:
        return a

    # Choice nodes absorb further variations.
    if isinstance(a, AnyNode) or isinstance(b, AnyNode):
        return _merge_into_any(a, b)
    if isinstance(a, OptNode) and isinstance(b, OptNode):
        return OptNode(child=merge_nodes(a.child, b.child), default_on=a.default_on)
    if isinstance(a, OptNode):
        return OptNode(child=merge_nodes(a.child, b), default_on=a.default_on)
    if isinstance(b, OptNode):
        return OptNode(child=merge_nodes(a, b.child), default_on=b.default_on)

    if isinstance(a, Select) and isinstance(b, Select):
        return merge_selects(a, b)

    if a.label() == b.label():
        # Comparison predicates whose operands *both* differ stay as an ANY
        # over the whole predicates (Figure 3(a)); the factor_common_root
        # transformation can later refactor the shared operator above the
        # choice (Figure 3(b)).  Merging only one differing operand in place
        # keeps e.g. ``a = 1`` / ``a = 2`` as ``a = ANY(1, 2)`` directly.
        if _is_comparison(a) and _differing_child_count(a, b) > 1:
            return AnyNode(alternatives=[a, b])
        return _merge_same_label(a, b)

    # Two literals (or any incompatible subtrees) become an ANY choice.
    return AnyNode(alternatives=[a, b])


def _is_comparison(node: SqlNode) -> bool:
    from repro.sql.ast_nodes import BetweenOp, BinaryOp

    if isinstance(node, BetweenOp):
        return True
    return isinstance(node, BinaryOp) and node.op not in ("AND", "OR")


def _differing_child_count(a: SqlNode, b: SqlNode) -> int:
    children_a = a.children()
    children_b = b.children()
    if len(children_a) != len(children_b):
        return max(len(children_a), len(children_b))
    return sum(1 for x, y in zip(children_a, children_b) if x != y)


def _merge_into_any(a: SqlNode, b: SqlNode) -> AnyNode:
    """Combine alternatives, deduplicating structurally identical ones."""
    alternatives: list[SqlNode] = []
    for node in (a, b):
        if isinstance(node, AnyNode):
            candidates: Sequence[SqlNode] = node.alternatives
        else:
            candidates = [node]
        for candidate in candidates:
            if not any(candidate == existing for existing in alternatives):
                alternatives.append(candidate)
    if isinstance(a, AnyNode):
        return AnyNode(alternatives=alternatives, choice_id=a.choice_id)
    return AnyNode(alternatives=alternatives)


def _merge_same_label(a: SqlNode, b: SqlNode) -> SqlNode:
    """Merge two nodes of identical label slot by slot."""
    updates: dict[str, object] = {}
    slots_a = dict(a.child_slots())
    slots_b = dict(b.child_slots())
    for name, value_a in slots_a.items():
        value_b = slots_b[name]
        if isinstance(value_a, SqlNode) or isinstance(value_b, SqlNode):
            updates[name] = _merge_optional_nodes(value_a, value_b)
        elif isinstance(value_a, (list, tuple)) and _is_node_list(value_a, value_b):
            updates[name] = align_and_merge_lists(list(value_a), list(value_b))
        # Scalars are identical by construction (they are part of the label).
    from dataclasses import replace

    return replace(a, **updates)  # type: ignore[type-var]


def _is_node_list(value_a: object, value_b: object) -> bool:
    def is_node_list(value: object) -> bool:
        return isinstance(value, (list, tuple)) and any(isinstance(v, SqlNode) for v in value)

    return is_node_list(value_a) or is_node_list(value_b)


def _merge_optional_nodes(a: object, b: object) -> SqlNode | None:
    """Merge two node-or-None slots."""
    if a is None and b is None:
        return None
    if a is None:
        assert isinstance(b, SqlNode)
        return OptNode(child=b, default_on=False)
    if b is None:
        assert isinstance(a, SqlNode)
        return OptNode(child=a, default_on=True)
    assert isinstance(a, SqlNode) and isinstance(b, SqlNode)
    return merge_nodes(a, b)


# --------------------------------------------------------------------------- #
# List alignment
# --------------------------------------------------------------------------- #


def _lcs_pairs(xs: list[SqlNode], ys: list[SqlNode]) -> list[tuple[int, int]]:
    """Longest common subsequence (by structural equality) index pairs."""
    n, m = len(xs), len(ys)
    lengths = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n - 1, -1, -1):
        for j in range(m - 1, -1, -1):
            if xs[i] == ys[j]:
                lengths[i][j] = lengths[i + 1][j + 1] + 1
            else:
                lengths[i][j] = max(lengths[i + 1][j], lengths[i][j + 1])
    pairs: list[tuple[int, int]] = []
    i = j = 0
    while i < n and j < m:
        if xs[i] == ys[j]:
            pairs.append((i, j))
            i += 1
            j += 1
        elif lengths[i + 1][j] >= lengths[i][j + 1]:
            i += 1
        else:
            j += 1
    return pairs


def align_and_merge_lists(xs: list[SqlNode], ys: list[SqlNode]) -> list[SqlNode]:
    """Merge two ordered clause lists into one list of (possibly choice) nodes.

    Structurally identical items anchor the alignment; the gaps between
    anchors are merged pairwise in order, and leftover items on either side
    become OPT nodes (present in one query, absent in the other).
    """
    merged: list[SqlNode] = []
    anchors = _lcs_pairs(xs, ys) + [(len(xs), len(ys))]
    prev_x = prev_y = 0
    for anchor_x, anchor_y in anchors:
        gap_x = xs[prev_x:anchor_x]
        gap_y = ys[prev_y:anchor_y]
        merged.extend(_merge_gap(gap_x, gap_y))
        if anchor_x < len(xs):
            merged.append(xs[anchor_x])
        prev_x, prev_y = anchor_x + 1, anchor_y + 1
    return merged


def _merge_gap(gap_x: list[SqlNode], gap_y: list[SqlNode]) -> list[SqlNode]:
    """Merge the unmatched items between two alignment anchors."""
    merged: list[SqlNode] = []
    for item_x, item_y in zip(gap_x, gap_y):
        merged.append(merge_nodes(item_x, item_y))
    longer, default_on = (gap_x, True) if len(gap_x) > len(gap_y) else (gap_y, False)
    for extra in longer[min(len(gap_x), len(gap_y)) :]:
        merged.append(_wrap_optional(extra, default_on))
    return merged


def _wrap_optional(node: SqlNode, default_on: bool) -> SqlNode:
    if isinstance(node, OptNode):
        return node
    return OptNode(child=node, default_on=default_on)


# --------------------------------------------------------------------------- #
# SELECT-specific merging
# --------------------------------------------------------------------------- #


def merge_selects(a: Select, b: Select) -> SqlNode:
    """Merge two SELECT statements clause by clause.

    Falls back to an ANY choice over the two whole statements when the scalar
    clauses (DISTINCT / LIMIT / OFFSET) disagree — those cannot be captured by
    an in-tree choice node and typically indicate genuinely different queries.
    """
    if (a.distinct, a.limit, a.offset) != (b.distinct, b.limit, b.offset):
        return AnyNode(alternatives=[a, b])

    select_items = [
        _coerce_select_item(item)
        for item in align_and_merge_lists(list(a.select_items), list(b.select_items))
    ]
    from_clause = _merge_optional_nodes(a.from_clause, b.from_clause)
    where = merge_predicates(a.where, b.where)
    group_by = align_and_merge_lists(list(a.group_by), list(b.group_by))
    having = merge_predicates(a.having, b.having)
    order_by = [
        _coerce_order_item(item)
        for item in align_and_merge_lists(list(a.order_by), list(b.order_by))
    ]
    ctes = align_and_merge_lists(list(a.ctes), list(b.ctes))

    return Select(
        select_items=select_items,  # type: ignore[arg-type]
        from_clause=from_clause,
        where=where,
        group_by=group_by,
        having=having,
        order_by=order_by,  # type: ignore[arg-type]
        limit=a.limit,
        offset=a.offset,
        distinct=a.distinct,
        ctes=ctes,  # type: ignore[arg-type]
    )


def _coerce_select_item(node: SqlNode) -> SqlNode:
    """Keep SELECT-list entries as SelectItems where possible.

    A choice between two select items with identical aliases is pushed inside
    the item (``SelectItem(ANY(p, a))``) so the output column stays stable.
    """
    if isinstance(node, AnyNode) and all(
        isinstance(alt, SelectItem) for alt in node.alternatives
    ):
        aliases = {alt.alias for alt in node.alternatives}  # type: ignore[union-attr]
        if len(aliases) == 1:
            inner = AnyNode(
                alternatives=[alt.expr for alt in node.alternatives],  # type: ignore[union-attr]
                choice_id=node.choice_id,
            )
            return SelectItem(expr=inner, alias=aliases.pop())
    return node


def _coerce_order_item(node: SqlNode) -> SqlNode:
    return node


def merge_predicates(a: SqlNode | None, b: SqlNode | None) -> SqlNode | None:
    """Merge two WHERE/HAVING predicates conjunct-by-conjunct.

    Top-level AND chains are treated as ordered conjunct lists: identical
    conjuncts align, corresponding differing conjuncts merge recursively
    (producing ANY/OPT nodes inside them), and conjuncts present on only one
    side become OPT nodes.  A missing predicate on one side wraps the other
    side in a single OPT (Figure 4's optional WHERE clause).
    """
    if a is None and b is None:
        return None
    if a is None:
        assert b is not None
        return OptNode(child=b, default_on=False)
    if b is None:
        return OptNode(child=a, default_on=True)

    conjuncts_a = split_conjuncts(a)
    conjuncts_b = split_conjuncts(b)
    if len(conjuncts_a) == 1 and len(conjuncts_b) == 1:
        return merge_nodes(a, b)
    merged = align_and_merge_lists(conjuncts_a, conjuncts_b)
    result = join_conjuncts(merged)
    if result is None:
        raise MergeError("Predicate merge produced an empty conjunct list")
    return result


# --------------------------------------------------------------------------- #
# Multi-query merge
# --------------------------------------------------------------------------- #


def merge_query_sequence(queries: Sequence[SqlNode]) -> SqlNode:
    """Merge an ordered sequence of queries into a single Difftree."""
    if not queries:
        raise MergeError("Cannot merge an empty query sequence")
    merged = queries[0]
    for query in queries[1:]:
        merged = merge_nodes(merged, query)
    return merged
