"""Canonicalization and similarity measures over query ASTs / Difftrees.

Before merging queries into a Difftree, PI2 benefits from putting ASTs into a
canonical form so that superficial differences (redundant table qualifiers,
alias capitalization) do not create spurious choice nodes.  This module also
provides the structural-similarity measure the forest builder uses to decide
which queries to cluster into the same Difftree.
"""

from __future__ import annotations

from repro.sql.ast_nodes import (
    BinaryOp,
    ColumnRef,
    Join,
    Select,
    SqlNode,
    SubqueryRef,
    TableRef,
)
from repro.sql.visitor import transform


def _single_binding_name(query: Select) -> str | None:
    """Binding name of the FROM clause when it is a single base table, else None."""
    from_clause = query.from_clause
    if isinstance(from_clause, TableRef):
        return from_clause.binding_name
    return None


def strip_redundant_qualifiers(query: Select) -> Select:
    """Remove table qualifiers that refer to the only table in a simple FROM.

    ``SELECT c.date FROM covid_cases c`` and ``SELECT date FROM covid_cases``
    then merge without a spurious choice node.  Queries with joins or derived
    tables are left untouched (the qualifier is meaningful there).
    """
    binding = _single_binding_name(query)
    if binding is None:
        return query

    # Fast path: most queries the search canonicalizes (candidate
    # instantiations of already-canonical trees) carry no redundant
    # qualifiers at all — detect that with one traversal and skip the
    # rebuilding transform entirely.
    if not any(
        (isinstance(node, ColumnRef) and node.table == binding)
        or (isinstance(node, TableRef) and node.binding_name == binding and node.alias)
        for node in query.walk()
    ):
        return query

    def rewrite(node: SqlNode) -> SqlNode | None:
        if isinstance(node, ColumnRef) and node.table == binding:
            return ColumnRef(name=node.name)
        if isinstance(node, TableRef) and node.binding_name == binding and node.alias:
            # Drop the now-unused alias so FROM clauses also compare equal.
            return TableRef(name=node.name)
        return None

    rewritten = transform(query, rewrite)
    assert isinstance(rewritten, Select)
    return rewritten


def normalize_and_chains(node: SqlNode) -> SqlNode:
    """Rebuild every AND chain as a left-deep chain of its conjuncts.

    ``(a AND b) AND (c AND d)`` and ``((a AND b) AND c) AND d`` denote the same
    predicate; putting both into the same shape makes structural equality (and
    therefore Difftree coverage checks) insensitive to how the user happened to
    parenthesize their filters.
    """
    if not any(
        isinstance(descendant, BinaryOp) and descendant.op == "AND" for descendant in node.walk()
    ):
        return node

    def rewrite(candidate: SqlNode) -> SqlNode | None:
        if isinstance(candidate, BinaryOp) and candidate.op == "AND":
            conjuncts = split_conjuncts(candidate)
            rebuilt = join_conjuncts(conjuncts)
            if rebuilt is not None and rebuilt != candidate:
                return rebuilt
        return None

    return transform(node, rewrite)


def canonicalize(query: Select) -> Select:
    """Apply all canonicalization passes to a query AST."""
    normalized = normalize_and_chains(strip_redundant_qualifiers(query))
    assert isinstance(normalized, Select)
    return normalized


_CANONICAL_ATTR = "_repro_canonical"


def canonical_form(node: SqlNode) -> SqlNode:
    """Canonical shape of an arbitrary query/expression for equality checks.

    Memoized on the (immutable) node object: coverage checks canonicalize the
    same target queries thousands of times during a search, and the memo makes
    every repeat an attribute lookup.
    """
    cached = getattr(node, _CANONICAL_ATTR, None)
    if cached is not None:
        return cached
    if isinstance(node, Select):
        result = canonicalize(node)
    else:
        result = normalize_and_chains(node)
    try:
        object.__setattr__(node, _CANONICAL_ATTR, result)
    except (AttributeError, TypeError):  # pragma: no cover - slotted nodes
        pass
    return result


_CANONICAL_SQL_ATTR = "_repro_canonical_sql"


def canonical_sql(node: SqlNode) -> str:
    """Rendered SQL of the node's canonical form, memoized on the node.

    Because printing then re-parsing is the identity (property-tested), two
    queries have equal canonical SQL iff their canonical ASTs are equal —
    which makes this string a precise, cheap-to-compare equality proxy for
    coverage checks.
    """
    from repro.sql.printer import to_sql

    cached = getattr(node, _CANONICAL_SQL_ATTR, None)
    if cached is not None:
        return cached
    rendered = to_sql(canonical_form(node))
    try:
        object.__setattr__(node, _CANONICAL_SQL_ATTR, rendered)
    except (AttributeError, TypeError):  # pragma: no cover - slotted nodes
        pass
    return rendered


def tree_size(node: SqlNode) -> int:
    """Number of nodes in the subtree."""
    return sum(1 for _ in node.walk())


def tree_fingerprint(node: SqlNode) -> str:
    """A stable textual fingerprint of a tree (its rendered SQL when possible).

    Delegates to :mod:`repro.difftree.signatures`, which memoizes the
    fingerprint on the node object — the value is unchanged, computing it
    twice is now free.
    """
    from repro.difftree.signatures import tree_fingerprint as cached_fingerprint

    return cached_fingerprint(node)


def shared_node_count(a: SqlNode, b: SqlNode) -> int:
    """Number of structurally identical subtrees shared by ``a`` and ``b``.

    Counted over multisets of subtree fingerprints, so repeated structure is
    credited once per occurrence.
    """
    def fingerprint_counts(node: SqlNode) -> dict[tuple, int]:
        counts: dict[tuple, int] = {}
        for descendant in node.walk():
            key = _subtree_key(descendant)
            counts[key] = counts.get(key, 0) + 1
        return counts

    counts_a = fingerprint_counts(a)
    counts_b = fingerprint_counts(b)
    shared = 0
    for key, count in counts_a.items():
        shared += min(count, counts_b.get(key, 0))
    return shared


def _subtree_key(node: SqlNode) -> tuple:
    return (node.label(), tuple(_subtree_key(child) for child in node.children()))


def structural_similarity(a: SqlNode, b: SqlNode) -> float:
    """Similarity in [0, 1]: shared subtree mass over average tree size."""
    size_a = tree_size(a)
    size_b = tree_size(b)
    if size_a == 0 or size_b == 0:
        return 0.0
    shared = shared_node_count(a, b)
    return min(1.0, 2.0 * shared / (size_a + size_b))


def queries_share_source(a: Select, b: Select) -> bool:
    """True when the two queries reference at least one common base table."""
    tables_a = {ref.name.lower() for ref in a.find_all(TableRef)}
    tables_b = {ref.name.lower() for ref in b.find_all(TableRef)}
    return bool(tables_a & tables_b)


def count_joins(query: Select) -> int:
    """Number of join operators in the query."""
    return len(query.find_all(Join))


def count_subqueries(query: Select) -> int:
    """Number of nested SELECTs (excluding the query itself)."""
    return sum(1 for node in query.walk() if isinstance(node, Select)) - 1


def count_derived_tables(query: Select) -> int:
    """Number of derived tables in FROM clauses."""
    return len(query.find_all(SubqueryRef))


def split_conjuncts(predicate: SqlNode | None) -> list[SqlNode]:
    """Split a predicate into its top-level AND conjuncts."""
    if predicate is None:
        return []
    if isinstance(predicate, BinaryOp) and predicate.op == "AND":
        return split_conjuncts(predicate.left) + split_conjuncts(predicate.right)
    return [predicate]


def join_conjuncts(conjuncts: list[SqlNode]) -> SqlNode | None:
    """Re-assemble a conjunct list into a left-deep AND chain."""
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = BinaryOp(op="AND", left=result, right=conjunct)
    return result
