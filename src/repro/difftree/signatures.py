"""Per-tree signatures: cached, interned identities of Difftree structures.

The search layer evaluates thousands of candidate forests, but each action
(a ``merge(i, j)`` or a single-tree transformation) touches one or two trees —
the rest of the forest is *structure-shared* by object identity.  Signatures
turn that sharing into cache hits:

* :func:`tree_fingerprint` — the legacy textual fingerprint used by forest
  signatures and search visited-sets (rendered SQL when possible).  It is
  computed once per tree *object* and memoized on the node itself, so
  ``forest.signature()`` costs a handful of attribute lookups instead of a
  full render per call.
* :func:`tree_signature` — a *precise* structural signature (node labels,
  which include choice ids and OPT defaults, plus tree shape).  Two trees
  with equal signatures are interchangeable for every per-tree computation
  the search performs: profiling, visualization mapping, widget mapping,
  coverage checks and data profiling all key their caches on it.
* signatures are **interned**: structurally equal signatures resolve to one
  canonical object, so equal trees reached along different action sequences
  (e.g. the same merge replayed in two MCTS rollouts, which allocates fresh
  choice nodes each time... but identical structure when ids survive) share
  cache entries and dict keys stay small.

Both signatures are memoized via ``object.__setattr__`` on the (frozen,
immutable) AST nodes — a node's structure never changes after construction,
so the memo can never go stale.  The memo attributes are not dataclass
fields, so node equality and hashing are unaffected.
"""

from __future__ import annotations

import sys
from typing import Any, Hashable

from repro.sql.ast_nodes import SqlNode

#: Memo attribute names stashed on AST nodes (not dataclass fields).
_FINGERPRINT_ATTR = "_repro_fingerprint"
_SIGNATURE_ATTR = "_repro_signature"
_STRUCTURAL_ATTR = "_repro_structural"

#: Intern table mapping structural signatures to their canonical instance.
#: Bounded: interning is a pure space/speed optimization — evicting entries
#: can never change behaviour because signatures compare by value.
_INTERN_TABLE: dict[tuple, tuple] = {}
_INTERN_CAPACITY = 8192


def intern_signature(signature: tuple) -> tuple:
    """Return the canonical instance of a structural signature."""
    if len(_INTERN_TABLE) >= _INTERN_CAPACITY:
        _INTERN_TABLE.clear()
    return _INTERN_TABLE.setdefault(signature, signature)


def intern_table_size() -> int:
    """Number of distinct signatures currently interned (diagnostics)."""
    return len(_INTERN_TABLE)


def _compute_fingerprint(node: SqlNode) -> str:
    from repro.sql.printer import to_sql

    try:
        return to_sql(node)
    except Exception:  # noqa: BLE001 - choice nodes are not renderable as SQL
        parts = []
        for descendant in node.walk():
            parts.append(type(descendant).__name__)
        return "|".join(parts)


def tree_fingerprint(node: SqlNode) -> str:
    """A stable textual fingerprint of a tree (its rendered SQL when possible).

    Memoized per node object and interned, so repeated forest signatures are
    nearly free.  The fingerprint value is identical to what
    :func:`repro.difftree.canonical.tree_fingerprint` historically produced.
    """
    cached = getattr(node, _FINGERPRINT_ATTR, None)
    if cached is not None:
        return cached
    fingerprint = sys.intern(_compute_fingerprint(node))
    try:
        object.__setattr__(node, _FINGERPRINT_ATTR, fingerprint)
    except (AttributeError, TypeError):  # pragma: no cover - slotted nodes
        pass
    return fingerprint


def _compute_signature(node: SqlNode) -> tuple:
    # node.label() covers the class name and every scalar field — including
    # choice ids and OPT defaults, which widget bindings depend on — so the
    # recursive (label, children) shape identifies the tree precisely.
    return (node.label(), tuple(_signature_uncached(child) for child in node.children()))


def _signature_uncached(node: SqlNode) -> tuple:
    cached = getattr(node, _SIGNATURE_ATTR, None)
    if cached is not None:
        return cached
    signature = _compute_signature(node)
    try:
        object.__setattr__(node, _SIGNATURE_ATTR, signature)
    except (AttributeError, TypeError):  # pragma: no cover - slotted nodes
        pass
    return signature


def tree_signature(node: SqlNode) -> tuple:
    """Precise structural signature of a Difftree, memoized and interned.

    Equal signatures imply equal node labels — hence equal choice ids, OPT
    defaults, literals and column names — at every position of the tree.
    Suitable as a cache key for values that *embed choice ids* (widget
    mapping pieces, transformation lists); for choice-id-insensitive values
    use :func:`structural_signature`, which shares entries across replayed
    merges that allocate fresh choice ids.
    """
    return intern_signature(_signature_uncached(node))


def _structural_label(node: SqlNode) -> tuple:
    from repro.difftree.nodes import ChoiceNode

    label = node.label()
    if not isinstance(node, ChoiceNode):
        return label
    name, scalars = label
    return (name, tuple(pair for pair in scalars if pair[0] != "choice_id"))


def _structural_uncached(node: SqlNode) -> tuple:
    cached = getattr(node, _STRUCTURAL_ATTR, None)
    if cached is not None:
        return cached
    signature = (
        _structural_label(node),
        tuple(_structural_uncached(child) for child in node.children()),
    )
    try:
        object.__setattr__(node, _STRUCTURAL_ATTR, signature)
    except (AttributeError, TypeError):  # pragma: no cover - slotted nodes
        pass
    return signature


def structural_signature(node: SqlNode) -> tuple:
    """Choice-id-*insensitive* signature of a Difftree, memoized and interned.

    Identical to :func:`tree_signature` except that choice ids are erased
    (OPT defaults and everything else are kept).  The search replays the same
    merge along many action sequences, allocating fresh choice ids each time;
    values that do not depend on the ids — coverage checks, default-query row
    counts, chart templates, filter-attribute sets — key their caches on this
    signature so all those replays share one entry.  Choice nodes correspond
    *positionally* (pre-order) between equal-signature trees, which is what
    profile reuse relies on to remap ids.
    """
    return intern_signature(_structural_uncached(node))


def forest_signature(forest) -> tuple:
    """Hashable identity of a forest: per-tree fingerprints plus membership.

    This is the (unchanged) value of ``DifftreeForest.signature()``; the
    per-tree fingerprints come from the node memo so recomputing a forest
    signature after an action costs O(trees), not O(nodes).

    Caveat: for trees *with choice nodes* the legacy fingerprint falls back
    to a type-name walk, so structurally different difftrees can collide.
    The historical search strategies (and their evaluation memo / visited
    sets) deliberately keep this granularity for reproducibility; new code
    that needs exact forest identity should use
    :func:`precise_forest_signature` instead.
    """
    return tuple(
        (tuple(members), tree_fingerprint(tree))
        for members, tree in zip(forest.members, forest.trees)
    )


def precise_forest_signature(forest) -> tuple:
    """Exact forest identity: per-tree precise signatures plus membership.

    Unlike :func:`forest_signature` this never collides distinct structures
    (choice ids, OPT defaults and literals all participate); the beam
    strategy keys its visited-set on it.
    """
    return tuple(
        (tuple(members), tree_signature(tree))
        for members, tree in zip(forest.members, forest.trees)
    )


class LruDict:
    """A minimal bounded mapping with LRU eviction (insertion-order based).

    Used by the search layer's per-tree caches: signature-keyed entries are
    recency-promoted on access and the oldest entries are evicted past
    ``capacity``, so long searches cannot grow memory without bound.
    """

    __slots__ = ("capacity", "_entries", "hits", "misses", "evictions")

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("LruDict capacity must be positive")
        self.capacity = capacity
        self._entries: dict[Hashable, Any] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable, default: Any = None) -> Any:
        if key in self._entries:
            value = self._entries.pop(key)
            self._entries[key] = value  # re-insert: most recently used
            self.hits += 1
            return value
        self.misses += 1
        return default

    def __getitem__(self, key: Hashable) -> Any:
        if key not in self._entries:
            raise KeyError(key)
        return self.get(key)

    def __setitem__(self, key: Hashable, value: Any) -> None:
        self.put(key, value)

    def put(self, key: Hashable, value: Any) -> None:
        if key in self._entries:
            self._entries.pop(key)
        elif len(self._entries) >= self.capacity:
            oldest = next(iter(self._entries))
            self._entries.pop(oldest)
            self.evictions += 1
        self._entries[key] = value

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
