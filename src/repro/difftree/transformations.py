"""Tree transformation rules over Difftrees.

Step 4 of the PI2 pipeline repeatedly transforms Difftrees to explore
alternative interface structures (Figure 3 of the paper shows the canonical
example: refactoring the shared ``=`` above an ANY node).  Each rule is a pure
function ``tree -> new tree`` that either applies at a specific choice node or
returns the tree unchanged when it does not apply; the search layer enumerates
applicable (rule, node) pairs via :func:`applicable_transformations`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import TransformationError
from repro.difftree.nodes import AnyNode, ChoiceNode, OptNode, collect_choice_nodes
from repro.sql.ast_nodes import SqlNode
from repro.sql.visitor import transform


# --------------------------------------------------------------------------- #
# Rule implementations
# --------------------------------------------------------------------------- #


def factor_common_root(tree: SqlNode, choice_id: str) -> SqlNode:
    """Factor the shared root of an ANY node's alternatives above the choice.

    Applies when every alternative of the ANY node has the same label (same
    node class and scalar attributes) and the same child count.  The result
    replaces ``ANY(f(x1, y1), f(x2, y2))`` with ``f(ANY(x1, x2), ANY(y1, y2))``
    — Figure 3(a) → 3(b).  Child positions whose subtrees are identical across
    alternatives stay concrete instead of becoming singleton choices.
    """

    def rewrite(node: SqlNode) -> SqlNode | None:
        if not isinstance(node, AnyNode) or node.choice_id != choice_id:
            return None
        return _factor_any(node)

    return transform(tree, rewrite)


def _factor_any(node: AnyNode) -> SqlNode:
    alternatives = node.alternatives
    if len(alternatives) < 2:
        raise TransformationError("Cannot factor an ANY node with fewer than two alternatives")
    first = alternatives[0]
    if isinstance(first, ChoiceNode):
        raise TransformationError("Cannot factor an ANY node whose alternatives are choices")
    label = first.label()
    child_lists = [alt.children() for alt in alternatives]
    child_count = len(child_lists[0])
    if any(alt.label() != label for alt in alternatives):
        raise TransformationError("ANY alternatives do not share a common root label")
    if any(len(children) != child_count for children in child_lists):
        raise TransformationError("ANY alternatives do not have matching child counts")
    if child_count == 0:
        raise TransformationError("ANY alternatives have no children to factor over")

    new_children: list[SqlNode] = []
    for position in range(child_count):
        column = [children[position] for children in child_lists]
        if all(child == column[0] for child in column):
            new_children.append(column[0])
        else:
            unique: list[SqlNode] = []
            for child in column:
                if not any(child == existing for existing in unique):
                    unique.append(child)
            new_children.append(AnyNode(alternatives=unique))
    return first.with_children(new_children)


def can_factor(node: AnyNode) -> bool:
    """True when :func:`factor_common_root` applies to this ANY node."""
    try:
        _factor_any(node)
    except TransformationError:
        return False
    return True


def inline_singleton_any(tree: SqlNode) -> SqlNode:
    """Replace ANY nodes that have a single alternative with that alternative."""

    def rewrite(node: SqlNode) -> SqlNode | None:
        if isinstance(node, AnyNode) and node.cardinality == 1:
            return node.alternatives[0]
        return None

    return transform(tree, rewrite)


def flatten_nested_any(tree: SqlNode) -> SqlNode:
    """Collapse ``ANY(ANY(a, b), c)`` into ``ANY(a, b, c)``."""

    def rewrite(node: SqlNode) -> SqlNode | None:
        if not isinstance(node, AnyNode):
            return None
        if not any(isinstance(alt, AnyNode) for alt in node.alternatives):
            return None
        flattened: list[SqlNode] = []
        for alternative in node.alternatives:
            candidates = alternative.alternatives if isinstance(alternative, AnyNode) else [alternative]
            for candidate in candidates:
                if not any(candidate == existing for existing in flattened):
                    flattened.append(candidate)
        return AnyNode(alternatives=flattened, choice_id=node.choice_id)

    return transform(tree, rewrite)


def toggle_opt_default(tree: SqlNode, choice_id: str) -> SqlNode:
    """Flip the default state of an OPT node (changes the initial interface view)."""

    def rewrite(node: SqlNode) -> SqlNode | None:
        if isinstance(node, OptNode) and node.choice_id == choice_id:
            return OptNode(child=node.child, default_on=not node.default_on, choice_id=node.choice_id)
        return None

    return transform(tree, rewrite)


def normalize_difftree(tree: SqlNode) -> SqlNode:
    """Cleanup pass applied after merges/transformations."""
    return inline_singleton_any(flatten_nested_any(tree))


# --------------------------------------------------------------------------- #
# Rule registry
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Transformation:
    """A concrete transformation instance: a rule applied at a choice node."""

    rule: str
    choice_id: str
    apply: Callable[[SqlNode], SqlNode]

    def __call__(self, tree: SqlNode) -> SqlNode:
        return self.apply(tree)

    def describe(self) -> str:
        return f"{self.rule}@{self.choice_id}"


def applicable_transformations(tree: SqlNode) -> list[Transformation]:
    """Enumerate every (rule, choice node) pair applicable to ``tree``."""
    transformations: list[Transformation] = []
    for node in collect_choice_nodes(tree):
        if isinstance(node, AnyNode) and can_factor(node):
            transformations.append(
                Transformation(
                    rule="factor_common_root",
                    choice_id=node.choice_id,
                    apply=lambda t, cid=node.choice_id: normalize_difftree(
                        factor_common_root(t, cid)
                    ),
                )
            )
        if isinstance(node, OptNode):
            transformations.append(
                Transformation(
                    rule="toggle_opt_default",
                    choice_id=node.choice_id,
                    apply=lambda t, cid=node.choice_id: toggle_opt_default(t, cid),
                )
            )
    return transformations
