"""Concurrent multi-session serving layer.

Turns the single-threaded PI2 pipeline into a thread-safe service: sessions
pin snapshot-isolated catalog views, a bounded worker pool runs query
execution / interface generation / dataset ingest concurrently, and admission
control sheds load past the configured caps.  Two execution tiers are
available — the in-process thread pool, and a process pool
(:class:`ProcessExecutionTier`) that ships pickled snapshots to stateless
worker processes so CPU-heavy work escapes the GIL.  An asyncio frontend
(:class:`AsyncInterfaceService`) multiplexes hundreds of simulated users over
per-tenant catalog shards.  A fault-tolerance plane (deadlines, bounded
retries, a circuit breaker with thread-fallback degradation, load shedding)
keeps storms and worker crashes from surfacing as raw errors or unbounded
waits, and a seeded fault-injection plan (:class:`FaultPlan`) makes every
failure path deterministically testable.  See ``docs/SERVING.md`` for the
session lifecycle, the snapshot contract, the locking hierarchy, the
process-tier shipping contract and the fault-tolerance contract.
"""

from repro.serving.async_frontend import AsyncInterfaceService, AsyncSession
from repro.serving.faults import FaultInjector, FaultPlan, InjectedFault
from repro.serving.loadgen import (
    AsyncLoadGenerator,
    LoadGenerator,
    LoadReport,
    OpResult,
    WorkloadMix,
)
from repro.serving.service import InterfaceService, ServiceConfig, ServiceStats
from repro.serving.session import Session, SessionStats
from repro.serving.workers import (
    CircuitBreaker,
    ProcessExecutionTier,
    RetryPolicy,
    TierStats,
)

__all__ = [
    "AsyncInterfaceService",
    "AsyncLoadGenerator",
    "AsyncSession",
    "CircuitBreaker",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "InterfaceService",
    "LoadGenerator",
    "LoadReport",
    "OpResult",
    "ProcessExecutionTier",
    "RetryPolicy",
    "ServiceConfig",
    "ServiceStats",
    "Session",
    "SessionStats",
    "TierStats",
    "WorkloadMix",
]
