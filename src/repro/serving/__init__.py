"""Concurrent multi-session serving layer.

Turns the single-threaded PI2 pipeline into a thread-safe service: sessions
pin snapshot-isolated catalog views, a bounded worker pool runs query
execution / interface generation / dataset ingest concurrently, and admission
control sheds load past the configured caps.  See ``docs/SERVING.md`` for the
session lifecycle, the snapshot contract and the locking hierarchy.
"""

from repro.serving.loadgen import LoadGenerator, LoadReport, OpResult, WorkloadMix
from repro.serving.service import InterfaceService, ServiceConfig, ServiceStats
from repro.serving.session import Session, SessionStats

__all__ = [
    "InterfaceService",
    "LoadGenerator",
    "LoadReport",
    "OpResult",
    "ServiceConfig",
    "ServiceStats",
    "Session",
    "SessionStats",
    "WorkloadMix",
]
