"""Concurrent multi-session serving layer.

Turns the single-threaded PI2 pipeline into a thread-safe service: sessions
pin snapshot-isolated catalog views, a bounded worker pool runs query
execution / interface generation / dataset ingest concurrently, and admission
control sheds load past the configured caps.  Two execution tiers are
available — the in-process thread pool, and a process pool
(:class:`ProcessExecutionTier`) that ships pickled snapshots to stateless
worker processes so CPU-heavy work escapes the GIL.  An asyncio frontend
(:class:`AsyncInterfaceService`) multiplexes hundreds of simulated users over
per-tenant catalog shards.  See ``docs/SERVING.md`` for the session
lifecycle, the snapshot contract, the locking hierarchy and the process-tier
shipping contract.
"""

from repro.serving.async_frontend import AsyncInterfaceService, AsyncSession
from repro.serving.loadgen import (
    AsyncLoadGenerator,
    LoadGenerator,
    LoadReport,
    OpResult,
    WorkloadMix,
)
from repro.serving.service import InterfaceService, ServiceConfig, ServiceStats
from repro.serving.session import Session, SessionStats
from repro.serving.workers import ProcessExecutionTier, TierStats

__all__ = [
    "AsyncInterfaceService",
    "AsyncLoadGenerator",
    "AsyncSession",
    "InterfaceService",
    "LoadGenerator",
    "LoadReport",
    "OpResult",
    "ProcessExecutionTier",
    "ServiceConfig",
    "ServiceStats",
    "Session",
    "SessionStats",
    "TierStats",
    "WorkloadMix",
]
