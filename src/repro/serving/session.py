"""Per-user serving sessions: a pinned snapshot plus live interface state.

A :class:`Session` is the unit of isolation the serving layer hands each
user.  It pins a :class:`~repro.engine.catalog.CatalogSnapshot` at creation,
and every read the session performs — ad-hoc queries, interface generation,
widget/interaction events — runs against that pinned version, so a user's
view of the data is *repeatable* while writers keep ingesting into the live
catalog.  :meth:`Session.refresh` re-pins at the catalog's current version
(the serving equivalent of starting a new read transaction).

Sessions are thread-safe: one internal lock serializes state mutations
(binding updates, interface attachment, snapshot refresh) and the session's
own interface-event executions, while ad-hoc ``execute`` calls run against
the immutable snapshot without holding it.  The session lock sits *above*
the catalog locks in the serving hierarchy — holding it while pinning a
snapshot or executing a query is legal, and nothing in the engine ever
acquires a session lock (see ``docs/SERVING.md``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.engine.catalog import Catalog, CatalogSnapshot
from repro.engine.options import ExecOptions, coerce_options
from repro.engine.table import QueryResult
from repro.errors import SessionError
from repro.interface.state import EventRecord, InterfaceState
from repro.pipeline import GenerationResult

#: Bound on the per-session latency sample reservoir (newest samples win).
LATENCY_SAMPLE_CAPACITY = 1024


@dataclass
class SessionStats:
    """Per-session operation counters (telemetry, not part of any result).

    ``latencies`` is a bounded reservoir of the most recent samples — a
    long-lived session must not grow memory per operation.
    """

    queries: int = 0
    events: int = 0
    generations: int = 0
    refreshes: int = 0
    failures: int = 0
    total_seconds: float = 0.0
    latencies: deque = field(default_factory=lambda: deque(maxlen=LATENCY_SAMPLE_CAPACITY))


class Session:
    """One user's isolated view of the serving catalog.

    Args:
        session_id: Unique id assigned by the service.
        user: Opaque user label (admission control groups by it in logs only).
        catalog: The live catalog the session pins snapshots of.
    """

    def __init__(self, session_id: str, user: str, catalog: Catalog) -> None:
        self.session_id = session_id
        self.user = user
        self._catalog = catalog
        self._lock = threading.RLock()
        self._snapshot: CatalogSnapshot = catalog.snapshot()
        self._state: InterfaceState | None = None
        self._generation: GenerationResult | None = None
        self._closed = False
        self.stats = SessionStats()

    # ------------------------------------------------------------------ #
    # Snapshot lifecycle
    # ------------------------------------------------------------------ #

    @property
    def snapshot(self) -> CatalogSnapshot:
        """The currently pinned snapshot (immutable; safe to read lock-free)."""
        with self._lock:
            self._ensure_open()
            return self._snapshot

    def pinned_version(self) -> tuple:
        """The data-version fingerprint the session currently reads at."""
        return self.snapshot.data_version()

    def refresh(self) -> CatalogSnapshot:
        """Re-pin at the catalog's current version and rebind interface state.

        An attached interface survives a refresh: its Difftree bindings are
        carried over onto a fresh :class:`InterfaceState` against the new
        snapshot, so widgets keep their positions while the charts see the
        newly ingested data.

        Refreshing is what makes the incremental-maintenance plane pay off:
        the re-pinned snapshot's first read of a maintainable query folds the
        rows appended since the previous pin forward (see ``engine/ivm.py``)
        instead of recomputing, so the post-refresh re-render costs O(delta).
        """
        with self._lock:
            self._ensure_open()
            self._snapshot = self._catalog.snapshot()
            self.stats.refreshes += 1
            if self._state is not None:
                rebound = InterfaceState(self._state.interface, self._snapshot)
                for tree_index, bindings in self._state.bindings.items():
                    rebound.bindings[tree_index] = dict(bindings)
                self._state = rebound
            return self._snapshot

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def execute(
        self,
        query: str,
        options: ExecOptions | bool | None = None,
        runner=None,
        *,
        use_cache: bool | None = None,
        deadline: float | None = None,
    ) -> QueryResult:
        """Run one SQL query against the pinned snapshot.

        ``options`` carries the execution knobs (:class:`ExecOptions`); the
        legacy ``use_cache=``/``deadline=`` keywords still work but emit a
        :class:`DeprecationWarning`.  ``runner`` overrides *where* the query
        executes without changing what it reads: a ``(snapshot, query,
        options) -> QueryResult`` callable (the process execution tier passes
        one that ships the work to a worker process).  Isolation is unchanged
        either way — the pinned snapshot is the single source of truth.
        """
        resolved = coerce_options(
            options, "Session.execute", use_cache=use_cache, deadline=deadline
        ).pinned()
        snapshot = self.snapshot
        started = time.perf_counter()
        try:
            if runner is None:
                result = snapshot.execute(query, resolved)
            else:
                result = runner(snapshot, query, resolved)
        except Exception:
            self._note(started, "failures")
            raise
        self._note(started, "queries")
        return result

    # ------------------------------------------------------------------ #
    # Interface lifecycle
    # ------------------------------------------------------------------ #

    def attach(self, result: GenerationResult) -> InterfaceState:
        """Attach a generated interface, making the session live."""
        with self._lock:
            self._ensure_open()
            self._generation = result
            self._state = InterfaceState(result.interface, self._snapshot)
            self.stats.generations += 1
            return self._state

    @property
    def generation(self) -> GenerationResult | None:
        with self._lock:
            return self._generation

    @property
    def state(self) -> InterfaceState:
        with self._lock:
            self._ensure_open()
            if self._state is None:
                raise SessionError(
                    f"Session {self.session_id} has no attached interface; generate one first"
                )
            return self._state

    def set_widget(self, widget_id: str, value: Any) -> EventRecord:
        """Apply a widget event to the attached interface (serialized)."""
        with self._lock:
            record = self.state.set_widget(widget_id, value)
            self.stats.events += 1
            return record

    def data_for(self, vis_id: str) -> QueryResult:
        """Execute (with memoization) the query feeding one visualization."""
        started = time.perf_counter()
        with self._lock:
            result = self.state.data_for(vis_id)
        self._note(started, "queries")
        return result

    def refresh_all(self) -> dict[str, QueryResult]:
        """Execute every visualization's current query."""
        started = time.perf_counter()
        with self._lock:
            results = self.state.refresh_all()
        self._note(started, "queries")
        return results

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._state = None

    def _ensure_open(self) -> None:
        if self._closed:
            raise SessionError(f"Session {self.session_id} is closed")

    def _note(self, started: float, counter: str) -> None:
        elapsed = time.perf_counter() - started
        with self._lock:
            setattr(self.stats, counter, getattr(self.stats, counter) + 1)
            self.stats.total_seconds += elapsed
            self.stats.latencies.append(elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Session({self.session_id!r}, user={self.user!r}, closed={self.closed})"
