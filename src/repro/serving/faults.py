"""Deterministic fault injection for the serving layer.

Fault tolerance that cannot be tested is folklore.  This module turns the
failure modes the serving stack claims to survive — a worker process dying
mid-task, a snapshot payload arriving corrupted or late, the executor
blowing up mid-query — into a **seeded, replayable plan**:

* :class:`FaultPlan` is an immutable description of *which* faults fire and
  *when*, in terms of deterministic per-site ordinals (the Nth dispatch to
  worker ``i``, the Kth snapshot ship, the Mth top-level executor run) plus
  an optional seeded kill *rate* for soak-style chaos runs.
* :class:`FaultInjector` is the runtime: thread-safe ordinal counters plus
  the hooks the serving code calls.  Hooks are injected via config
  (``ServiceConfig.fault_plan`` / ``ProcessExecutionTier(faults=…)``) and
  are **strictly no-op by default** — a tier built without a plan never
  touches this module on the hot path.

Because every fault site is keyed by a counter that advances the same way
on every run (and the only randomness is ``random.Random(plan.seed)``), a
chaos-suite failure reproduces from its seed alone: re-run the same plan
and the same worker dies at the same task.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.errors import ReproError


class InjectedFault(ReproError):
    """An error raised deliberately by the fault-injection plane.

    Distinct from every organic error type so tests can tell "the fault we
    planted" from "a bug the fault uncovered".
    """


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable description of the faults to inject.

    All ordinals are 1-based counts of events *at that site* (per-worker
    dispatches, snapshot ships, top-level executor runs), so a plan reads
    like a script: "kill worker 0 at its 2nd task, corrupt the 1st ship".
    The default instance injects nothing.
    """

    seed: int = 0
    #: worker index → 1-based dispatch ordinals at which the worker process
    #: is killed right before the task is sent to it.
    kill_worker_at_task: Mapping[int, tuple[int, ...]] = field(default_factory=dict)
    #: Probability (seeded) of killing the target worker before any dispatch.
    #: For elevated-rate soak runs; exact victims depend on thread timing,
    #: but the decision stream is reproducible from ``seed``.
    kill_rate: float = 0.0
    #: Milliseconds to sleep before a snapshot ship leaves the frontend.
    delay_ship_ms: float = 0.0
    #: 1-based ship ordinals the delay applies to (``None`` = every ship
    #: when ``delay_ship_ms > 0``).
    delay_ships: frozenset[int] | None = None
    #: 1-based ship ordinals whose payload bytes are flipped in flight (the
    #: CRC is computed before the flip, so the worker must detect it).
    corrupt_ships: frozenset[int] = frozenset()
    #: 1-based top-level executor-run ordinals at which the installed
    #: executor hook raises :class:`InjectedFault`.
    executor_raise_at: frozenset[int] = frozenset()

    def enabled(self) -> bool:
        """True when this plan can fire at least one fault."""
        return bool(
            self.kill_worker_at_task
            or self.kill_rate > 0.0
            or self.delay_ship_ms > 0.0
            or self.corrupt_ships
            or self.executor_raise_at
        )

    def injector(self) -> "FaultInjector":
        """Build the runtime for this plan (fresh counters, fresh RNG)."""
        return FaultInjector(self)


class FaultInjector:
    """Thread-safe runtime counters + hooks for one :class:`FaultPlan`.

    One injector instance is shared by every site of one service (tier
    dispatchers, ship path, executor hook) so ordinals are global per site
    kind, and ``counters()`` gives the chaos suite a single audit trail of
    what actually fired.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._rng = random.Random(plan.seed)
        self._dispatches: dict[int, int] = {}
        self._ships = 0
        self._executes = 0
        self._kills = 0
        self._delays = 0
        self._corruptions = 0
        self._executor_raises = 0

    # ------------------------------------------------------------------ #
    # Hooks (called by serving code when a plan is configured)
    # ------------------------------------------------------------------ #

    def before_dispatch(self, worker_index: int, process: Any) -> None:
        """Maybe kill ``process`` right before a task is sent to it.

        Called by the tier's dispatcher thread with the target worker's
        process handle; the kill lands before the send, so the dispatcher
        observes it as the organic died-mid-task path (EOF on the pipe).
        """
        with self._lock:
            ordinal = self._dispatches.get(worker_index, 0) + 1
            self._dispatches[worker_index] = ordinal
            planned = ordinal in self.plan.kill_worker_at_task.get(worker_index, ())
            if not planned and self.plan.kill_rate > 0.0:
                planned = self._rng.random() < self.plan.kill_rate
            if planned:
                self._kills += 1
        if planned:
            process.kill()
            process.join(timeout=5)

    def on_ship(self, payload: tuple[bytes, int]) -> tuple[bytes, int]:
        """Maybe delay and/or corrupt a snapshot payload in flight.

        Takes and returns the wire form ``(pickled_bytes, crc32)``.  A
        corruption flips one byte of a *copy* while keeping the original
        CRC — exactly what a bad transport would produce — so the worker's
        integrity check must catch it and trigger a re-ship.
        """
        data, crc = payload
        with self._lock:
            self._ships += 1
            ordinal = self._ships
            delay = 0.0
            if self.plan.delay_ship_ms > 0.0 and (
                self.plan.delay_ships is None or ordinal in self.plan.delay_ships
            ):
                delay = self.plan.delay_ship_ms / 1000.0
                self._delays += 1
            corrupt = ordinal in self.plan.corrupt_ships
            if corrupt:
                self._corruptions += 1
        if delay:
            time.sleep(delay)
        if corrupt:
            mangled = bytearray(data)
            mangled[len(mangled) // 2] ^= 0xFF
            return bytes(mangled), crc
        return data, crc

    def executor_hook(self) -> Callable[[], None]:
        """A hook for :func:`repro.engine.executor.install_fault_hook`.

        The returned callable counts top-level executor runs *in the
        process it is installed in* (the frontend: thread-tier execution,
        degraded-mode fallback) and raises :class:`InjectedFault` at the
        planned ordinals.
        """

        def hook() -> None:
            with self._lock:
                self._executes += 1
                fire = self._executes in self.plan.executor_raise_at
                if fire:
                    self._executor_raises += 1
            if fire:
                raise InjectedFault(
                    f"Planned executor fault at query ordinal {self._executes}"
                )

        return hook

    # ------------------------------------------------------------------ #
    # Audit
    # ------------------------------------------------------------------ #

    def counters(self) -> dict[str, int]:
        """What actually fired, for chaos-suite assertions and logs."""
        with self._lock:
            return {
                "workers_killed": self._kills,
                "ships_delayed": self._delays,
                "ships_corrupted": self._corruptions,
                "executor_raises": self._executor_raises,
                "dispatches_seen": sum(self._dispatches.values()),
                "ships_seen": self._ships,
                "executes_seen": self._executes,
            }
