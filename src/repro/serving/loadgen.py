"""Deterministic load generator for the serving layer.

Replays a mixed read / write / generate workload against an
:class:`~repro.serving.service.InterfaceService` from N simulated clients,
each running in its own thread behind a start barrier (so the storm begins
simultaneously), and reports per-operation latencies.

The generator is deterministic per ``(seed, client)``: each client draws its
operation sequence from its own ``random.Random``, so a run is reproducible
regardless of thread scheduling — only the *interleaving* varies, which is
exactly what the concurrency tests want to vary.

Used by ``benchmarks/bench_perf_serving.py`` (throughput / p50 / p95 for
``BENCH_serving.json``) and by the stress tests in
``tests/test_serving_concurrency.py``.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import AdmissionError
from repro.pipeline import PipelineConfig
from repro.serving.service import InterfaceService


@dataclass(frozen=True)
class WorkloadMix:
    """Relative weights of the three operation classes."""

    read: float = 0.7
    write: float = 0.2
    generate: float = 0.1

    def pick(self, rng: random.Random) -> str:
        total = self.read + self.write + self.generate
        roll = rng.random() * total
        if roll < self.read:
            return "read"
        if roll < self.read + self.write:
            return "write"
        return "generate"


@dataclass
class OpResult:
    """Outcome of one client operation."""

    client: int
    kind: str  # "read" | "write" | "generate"
    seconds: float
    ok: bool
    error: str | None = None
    #: Exception class name behind ``error`` (``None`` on clean success) —
    #: the chaos suite asserts every caller-visible failure is *typed*
    #: (e.g. QueryTimeoutError / OverloadError / DeadlineExceededError),
    #: which a formatted message string cannot prove.
    error_type: str | None = None


@dataclass
class LoadReport:
    """Aggregated outcome of one load run."""

    clients: int
    ops: list[OpResult] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    def of_kind(self, kind: str) -> list[OpResult]:
        return [op for op in self.ops if op.kind == kind]

    @property
    def failures(self) -> list[OpResult]:
        return [op for op in self.ops if not op.ok]

    @property
    def ops_per_sec(self) -> float:
        return len(self.ops) / self.elapsed_seconds if self.elapsed_seconds else 0.0

    def latency_percentile(self, kind: str | None, fraction: float) -> float | None:
        """Latency percentile (seconds) of one op class (or all ops).

        Returns ``None`` when the class has no samples — a mixed workload
        can legitimately roll zero ops of one class, and 0.0 would read as
        "infinitely fast" to anything comparing latencies.
        """
        pool = self.ops if kind is None else self.of_kind(kind)
        if not pool:
            return None
        ordered = sorted(op.seconds for op in pool)
        index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
        return ordered[index]

    def as_dict(self) -> dict:
        """Machine-readable summary (the shape ``BENCH_serving.json`` stores).

        Latency keys of an op class with zero samples are emitted as null
        (never 0.0): the perf gate treats null as "no measurement", while a
        literal 0.0 would silently pass any lower-is-better comparison.
        """
        summary: dict = {
            "clients": self.clients,
            "operations": len(self.ops),
            "failures": len(self.failures),
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "serving_ops_per_sec": round(self.ops_per_sec, 2),
        }
        for kind in ("read", "write", "generate"):
            pool = self.of_kind(kind)
            summary[f"{kind}_ops"] = len(pool)
            for label, fraction in (("p50", 0.50), ("p95", 0.95)):
                value = self.latency_percentile(kind, fraction)
                summary[f"{kind}_{label}_ms"] = (
                    None if value is None else round(value * 1000, 2)
                )
        return summary


class LoadGenerator:
    """Drives an :class:`InterfaceService` with a reproducible mixed workload.

    Args:
        service: The service under load.
        read_queries: SQL strings read ops sample from.
        generate_logs: Query-log variants generate ops sample from (kept
            small — generation is the heavyweight op class).
        write_table: Table name write ops append to.
        write_row: ``(client, sequence) -> row`` factory for appended rows.
        mix: Operation-class weights.
        generation_config: Pipeline configuration for generate ops (defaults
            to a CI-friendly greedy search).
        seed: Base seed; client ``i`` uses ``seed + i``.
    """

    def __init__(
        self,
        service: InterfaceService,
        read_queries: Sequence[str],
        generate_logs: Sequence[Sequence[str]],
        write_table: str,
        write_row: Callable[[int, int], Sequence[object]],
        mix: WorkloadMix | None = None,
        generation_config: PipelineConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.service = service
        self.read_queries = list(read_queries)
        self.generate_logs = [list(log) for log in generate_logs]
        self.write_table = write_table
        self.write_row = write_row
        self.mix = mix or WorkloadMix()
        self.generation_config = generation_config or PipelineConfig(
            method="greedy", greedy_max_steps=4
        )
        self.seed = seed

    def run(self, clients: int, ops_per_client: int) -> LoadReport:
        """Run the storm: one session per client, barrier-synchronized start."""
        report = LoadReport(clients=clients)
        results_lock = threading.Lock()
        barrier = threading.Barrier(clients)

        def client_loop(client: int) -> None:
            rng = random.Random(self.seed + client)
            local: list[OpResult] = []
            try:
                session = self.service.create_session(user=f"client-{client}")
            except Exception as exc:  # noqa: BLE001 - break the barrier, don't hang it
                barrier.abort()
                with results_lock:
                    report.ops.append(
                        OpResult(
                            client,
                            "session",
                            0.0,
                            ok=False,
                            error=str(exc),
                            error_type=type(exc).__name__,
                        )
                    )
                return
            try:
                barrier.wait()
            except threading.BrokenBarrierError:
                # Another client failed to open its session and aborted the
                # storm; release this client's slot and report cleanly
                # instead of dying with the barrier.
                self.service.close_session(session.session_id)
                with results_lock:
                    report.ops.append(
                        OpResult(client, "session", 0.0, ok=False, error="barrier broken")
                    )
                return
            try:
                for sequence in range(ops_per_client):
                    kind = self.mix.pick(rng)
                    started = time.perf_counter()
                    try:
                        self._one_op(kind, client, sequence, session, rng)
                        local.append(
                            OpResult(client, kind, time.perf_counter() - started, ok=True)
                        )
                    except AdmissionError as exc:
                        # Backpressure is an expected outcome under storm
                        # load, not a failure: record and keep going.
                        local.append(
                            OpResult(
                                client,
                                kind,
                                time.perf_counter() - started,
                                ok=True,
                                error=f"admission: {exc}",
                                error_type=type(exc).__name__,
                            )
                        )
                    except Exception as exc:  # noqa: BLE001 - report, don't die
                        local.append(
                            OpResult(
                                client,
                                kind,
                                time.perf_counter() - started,
                                ok=False,
                                error=f"{type(exc).__name__}: {exc}",
                                error_type=type(exc).__name__,
                            )
                        )
            finally:
                self.service.close_session(session.session_id)
            with results_lock:
                report.ops.extend(local)

        threads = [
            threading.Thread(target=client_loop, args=(client,), name=f"loadgen-{client}")
            for client in range(clients)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        report.elapsed_seconds = time.perf_counter() - started
        return report

    def _one_op(
        self, kind: str, client: int, sequence: int, session, rng: random.Random
    ) -> None:
        if kind == "read":
            self.service.execute(session.session_id, rng.choice(self.read_queries))
        elif kind == "write":
            rows = [self.write_row(client, sequence)]
            self.service.ingest(self.write_table, rows)
            session.refresh()
        else:
            log = rng.choice(self.generate_logs)
            self.service.generate(session.session_id, log, self.generation_config)


class AsyncLoadGenerator:
    """Drives an :class:`AsyncInterfaceService` with N simulated users.

    Where :class:`LoadGenerator` spends one OS thread per client (and tops
    out around the thread-spawn budget), this generator runs each user as an
    asyncio task on one event loop — hundreds to thousands of concurrent
    users cost hundreds of coroutines, not threads.  User ``i`` connects as
    tenant ``tenant-{i}`` (spreading users across the frontend's shards via
    its stable hash) and draws its operation sequence from ``seed + i``, so
    a run is reproducible the same way the threaded generator is.

    Failed session opens and backpressure (:class:`AdmissionError`) are
    recorded the same way as in :class:`LoadGenerator`: rejected sessions as
    failed ``"session"`` ops, backpressured ops as ok-with-error.
    """

    def __init__(
        self,
        frontend,
        read_queries: Sequence[str],
        generate_logs: Sequence[Sequence[str]],
        write_table: str,
        write_row: Callable[[int, int], Sequence[object]],
        mix: WorkloadMix | None = None,
        generation_config: PipelineConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.frontend = frontend
        self.read_queries = list(read_queries)
        self.generate_logs = [list(log) for log in generate_logs]
        self.write_table = write_table
        self.write_row = write_row
        self.mix = mix or WorkloadMix()
        self.generation_config = generation_config or PipelineConfig(
            method="greedy", greedy_max_steps=4
        )
        self.seed = seed

    async def run(self, users: int, ops_per_user: int) -> LoadReport:
        """Run the storm: sessions open first (a soft barrier), then all ops."""
        report = LoadReport(clients=users)
        handles: list = [None] * users

        async def open_one(user: int) -> None:
            try:
                handles[user] = await self.frontend.open_session(f"tenant-{user}")
            except Exception as exc:  # noqa: BLE001 - record, don't sink the storm
                report.ops.append(
                    OpResult(
                        user,
                        "session",
                        0.0,
                        ok=False,
                        error=str(exc),
                        error_type=type(exc).__name__,
                    )
                )

        started = time.perf_counter()
        await asyncio.gather(*(open_one(user) for user in range(users)))

        async def user_loop(user: int) -> None:
            handle = handles[user]
            if handle is None:
                return
            rng = random.Random(self.seed + user)
            local: list[OpResult] = []
            try:
                for sequence in range(ops_per_user):
                    kind = self.mix.pick(rng)
                    op_started = time.perf_counter()
                    try:
                        await self._one_op(kind, user, sequence, handle, rng)
                        local.append(
                            OpResult(user, kind, time.perf_counter() - op_started, ok=True)
                        )
                    except AdmissionError as exc:
                        local.append(
                            OpResult(
                                user,
                                kind,
                                time.perf_counter() - op_started,
                                ok=True,
                                error=f"admission: {exc}",
                                error_type=type(exc).__name__,
                            )
                        )
                    except Exception as exc:  # noqa: BLE001 - report, don't die
                        local.append(
                            OpResult(
                                user,
                                kind,
                                time.perf_counter() - op_started,
                                ok=False,
                                error=f"{type(exc).__name__}: {exc}",
                                error_type=type(exc).__name__,
                            )
                        )
            finally:
                try:
                    await self.frontend.close_session(handle)
                except Exception:  # noqa: BLE001 - best-effort cleanup
                    pass
            # The event loop is single-threaded; no lock needed to append.
            report.ops.extend(local)

        await asyncio.gather(*(user_loop(user) for user in range(users)))
        report.elapsed_seconds = time.perf_counter() - started
        return report

    def run_sync(self, users: int, ops_per_user: int) -> LoadReport:
        """Convenience wrapper for benches/tests not already inside a loop."""
        return asyncio.run(self.run(users, ops_per_user))

    async def _one_op(self, kind: str, user: int, sequence: int, handle, rng) -> None:
        if kind == "read":
            await self.frontend.execute(handle, rng.choice(self.read_queries))
        elif kind == "write":
            rows = [self.write_row(user, sequence)]
            await self.frontend.ingest(handle, self.write_table, rows)
            await self.frontend.refresh(handle)
        else:
            log = rng.choice(self.generate_logs)
            await self.frontend.generate(handle, log, self.generation_config)
