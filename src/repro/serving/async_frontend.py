"""Asyncio session frontend over the thread/process serving stack.

:class:`AsyncInterfaceService` lets one event loop drive hundreds to
thousands of simulated users against :class:`InterfaceService` shards
without a thread per user:

* **Bridging** — the sync service already returns ``concurrent.futures``
  futures from its ``submit_*`` methods; the async frontend wraps them with
  :func:`asyncio.wrap_future`, so an awaiting coroutine costs no thread
  while the work runs on the service pool (thread tier) or in a worker
  process (process tier).  Blocking calls that have no future form (session
  open, snapshot refresh) hop through :func:`asyncio.to_thread`.
* **Per-tenant catalog sharding** — each shard is a full
  ``InterfaceService`` over its own :class:`Catalog`; a tenant is pinned to
  a shard by a *stable* hash (``zlib.crc32``, never the salted builtin
  ``hash``), so a tenant's sessions always see the same catalog.  All
  shards share one :class:`ProcessExecutionTier` — worker snapshot caches
  key by ``(catalog_id, fingerprint)``, so S shards cost S payload entries,
  not S worker pools.

Sessions, admission control and writes stay in the frontend process;
workers stay stateless and read-only (see ``docs/SERVING.md``).
"""

from __future__ import annotations

import asyncio
import zlib
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.engine.catalog import Catalog
from repro.engine.options import ExecOptions, coerce_options
from repro.engine.table import QueryResult
from repro.errors import AdmissionError
from repro.pipeline import GenerationResult, PipelineConfig
from repro.serving.service import InterfaceService, ServiceConfig
from repro.serving.workers import CircuitBreaker, ProcessExecutionTier

__all__ = ["AsyncInterfaceService", "AsyncSession"]


@dataclass
class AsyncSession:
    """A tenant's live session handle: shard routing plus the sync session."""

    tenant: str
    shard: int
    session_id: str


class AsyncInterfaceService:
    """Asyncio facade over one or more :class:`InterfaceService` shards.

    Args:
        catalogs: One :class:`Catalog` per shard.  ``config.shards`` must
            match (a single catalog may be passed bare for one shard).
        config: Shared service configuration.  With
            ``execution_tier="process"`` the frontend creates **one**
            process tier and injects it into every shard.
    """

    def __init__(
        self,
        catalogs: Catalog | Sequence[Catalog],
        config: ServiceConfig | None = None,
    ) -> None:
        if isinstance(catalogs, Catalog):
            catalogs = [catalogs]
        catalogs = list(catalogs)
        self.config = config or ServiceConfig(shards=len(catalogs))
        if self.config.shards != len(catalogs):
            raise AdmissionError(
                f"ServiceConfig.shards={self.config.shards} but {len(catalogs)} "
                f"catalogs were provided (one catalog per shard)"
            )
        # One shared tier for every shard: must exist before any shard spawns
        # frontend threads (fork-safety), and shutdown stays with this owner.
        self._tier: ProcessExecutionTier | None = None
        plan = self.config.fault_plan
        faults = plan.injector() if plan is not None and plan.enabled() else None
        if self.config.execution_tier == "process":
            # The breaker is shared with the tier: every shard feeds and
            # consults the same one, so a flapping tier degrades all shards
            # together instead of each rediscovering the failure rate.
            self._tier = ProcessExecutionTier(
                processes=self.config.worker_processes,
                start_method=self.config.worker_start_method,
                retry_policy=self.config.retry_policy,
                breaker=CircuitBreaker(
                    failure_threshold=self.config.breaker_failure_threshold,
                    window_seconds=self.config.breaker_window_seconds,
                    cooldown_seconds=self.config.breaker_cooldown_seconds,
                ),
                faults=faults,
            )
        self._shards = [
            InterfaceService(catalog, self.config, process_tier=self._tier)
            for catalog in catalogs
        ]
        self._closed = False

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    @property
    def shards(self) -> int:
        return len(self._shards)

    def shard_for(self, tenant: str) -> int:
        """Stable tenant -> shard routing (crc32, identical across runs)."""
        return zlib.crc32(tenant.encode("utf-8")) % len(self._shards)

    def shard_service(self, shard: int) -> InterfaceService:
        return self._shards[shard]

    def _service(self, handle: AsyncSession) -> InterfaceService:
        return self._shards[handle.shard]

    # ------------------------------------------------------------------ #
    # Session lifecycle
    # ------------------------------------------------------------------ #

    async def open_session(self, tenant: str) -> AsyncSession:
        """Open a session on the tenant's shard (admission-checked there)."""
        shard = self.shard_for(tenant)
        session = await asyncio.to_thread(self._shards[shard].create_session, tenant)
        return AsyncSession(tenant=tenant, shard=shard, session_id=session.session_id)

    async def close_session(self, handle: AsyncSession) -> None:
        await asyncio.to_thread(self._service(handle).close_session, handle.session_id)

    async def refresh(self, handle: AsyncSession) -> None:
        """Re-pin the session at its shard catalog's current version."""
        service = self._service(handle)
        session = service.session(handle.session_id)
        await asyncio.to_thread(session.refresh)

    # ------------------------------------------------------------------ #
    # Operations (future-bridged: no thread is held while awaiting)
    # ------------------------------------------------------------------ #

    async def execute(
        self,
        handle: AsyncSession,
        query: str,
        options: ExecOptions | bool | None = None,
        *,
        use_cache: bool | None = None,
        deadline_ms: float | None = None,
    ) -> QueryResult:
        resolved = coerce_options(
            options,
            "AsyncFrontend.execute",
            use_cache=use_cache,
            deadline_ms=deadline_ms,
        )
        future = self._service(handle).submit_execute(handle.session_id, query, resolved)
        return await asyncio.wrap_future(future)

    async def generate(
        self,
        handle: AsyncSession,
        queries: Sequence[str],
        config: PipelineConfig | None = None,
        deadline_ms: float | None = None,
    ) -> GenerationResult:
        future = self._service(handle).submit_generate(
            handle.session_id, queries, config, deadline_ms=deadline_ms
        )
        return await asyncio.wrap_future(future)

    async def ingest(
        self, handle: AsyncSession, table_name: str, rows: Iterable[Sequence[Any]]
    ) -> int:
        future = self._service(handle).submit_ingest(table_name, rows)
        return await asyncio.wrap_future(future)

    # ------------------------------------------------------------------ #
    # Stats / lifecycle
    # ------------------------------------------------------------------ #

    def stats_snapshot(self) -> dict[str, Any]:
        """Aggregated counters over every shard (sums; percentiles per shard)."""
        per_shard = [service.stats_snapshot() for service in self._shards]
        totals: dict[str, Any] = {"shards": len(per_shard)}
        for key in (
            "submitted",
            "completed",
            "failed",
            "rejected",
            "shed",
            "degraded",
            "expired",
            "sessions_opened",
            "sessions_rejected",
        ):
            totals[key] = sum(snap.get(key, 0) for snap in per_shard)
        # The process tier is shared, so its counters are *global* — take
        # them once instead of summing the same numbers S times.
        tier_keys = (
            "snapshot_ships",
            "worker_snapshot_cache_hits",
            "workers_respawned",
            "respawn_escalations",
            "tasks_retried",
            "tasks_expired",
            "ship_integrity_retries",
            "breaker_state",
            "breaker_trips",
            "worker_processes",
            "process_queue_wait_p50_ms",
            "process_queue_wait_p95_ms",
        )
        for key in tier_keys:
            if key in per_shard[0]:
                totals[key] = per_shard[0][key]
        totals["per_shard"] = per_shard
        return totals

    async def close(self) -> None:
        await asyncio.to_thread(self.close_sync)

    def close_sync(self) -> None:
        if self._closed:
            return
        self._closed = True
        for service in self._shards:
            # Shards do not own the shared tier; shut it down once below.
            service.shutdown(wait=True)
        if self._tier is not None:
            self._tier.shutdown(wait=True)

    async def __aenter__(self) -> "AsyncInterfaceService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
