"""The process-pool execution tier: GIL-free workers over shipped snapshots.

The thread-pool serving layer (PR 5) cannot scale CPU-bound work — every
engine operation is pure Python, so eight worker threads still execute one
bytecode at a time.  :class:`ProcessExecutionTier` moves the two CPU-heavy
operation classes into a pool of **worker processes**:

* ad-hoc query execution (``Session.execute`` → canonical SQL + fingerprint),
* interface generation / per-tree candidate profiling (query log + pipeline
  config + fingerprint, or per-tree default-instantiation SQL + tree
  signature + fingerprint).

The design leans entirely on PR 5's snapshot contract:
:class:`~repro.engine.catalog.CatalogSnapshot` is immutable and
version-fingerprinted, so it crosses the process boundary **once per
``(catalog_id, fingerprint)``** instead of once per request.  Each worker
caches unpickled snapshots in a small LRU keyed by that pair; a data-version
bump simply introduces a new fingerprint, and the stale snapshot falls out of
the LRU lazily — no invalidation protocol, no shared memory, no locks in the
workers at all.  Workers are stateless and read-only by construction: every
task names the snapshot it runs against, sessions/admission/writes stay in
the frontend, and nothing a worker computes ever flows back into catalog
state (results return as picklable columnar ``QueryResult`` /
``GenerationResult`` values).

Frontend threading model: one dispatcher thread per worker process pulls
tasks off one shared queue (natural least-loaded balancing), performs the
ship-if-needed handshake over the worker's pipe, and blocks in ``recv`` —
which releases the GIL, so N workers genuinely execute N tasks in parallel.
A worker that dies mid-task is respawned transparently and the task —
idempotent by the snapshot contract — is retried with jittered exponential
backoff within its remaining deadline; only exhausted retries surface as
:class:`~repro.errors.WorkerError`.

Fault-tolerance plane (PR 8): task descriptors carry absolute monotonic
deadlines (expired queued tasks are dropped with
:class:`~repro.errors.DeadlineExceededError` before they waste a worker);
snapshot payloads ship as ``(bytes, crc32)`` and a worker that receives a
corrupt payload answers ``need_snapshot``, folding transport corruption
into the existing re-ship handshake; a :class:`CircuitBreaker` watches the
worker failure rate so the serving layer can stop using a flapping tier;
and a seeded :class:`~repro.serving.faults.FaultInjector` can be plugged
in to make all of the above deterministically testable.

What may cross the boundary (see ``docs/SERVING.md``): pickled snapshots
(tables + fingerprint + catalog id — never the caches, never lock-bearing
objects), task descriptors built from canonical SQL text / query logs /
pipeline configs, and columnar results.  What must not: live ``Catalog``
objects, sessions, futures, executors, or anything holding a lock.
"""

from __future__ import annotations

import pickle
import random
import threading
import time
import zlib
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

import multiprocessing

from repro.engine.catalog import CatalogSnapshot, DetachedParser
from repro.engine.options import ExecOptions, coerce_options
from repro.engine.query_cache import QueryCache
from repro.errors import DeadlineExceededError, QueryTimeoutError, WorkerError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.faults import FaultInjector

#: Snapshots each worker keeps alive, LRU-evicted ((catalog_id, fingerprint)
#: keyed).  Small on purpose: the common case is one live fingerprint per
#: catalog plus a short tail of recently superseded versions still pinned by
#: open sessions.
SNAPSHOT_CACHE_CAPACITY = 8

#: Pickled-snapshot payloads the frontend memoizes (one pickle per
#: fingerprint, shared by every worker it ships to).
PAYLOAD_MEMO_CAPACITY = 16

#: Bound on the queue-wait sample reservoir (newest samples win).
QUEUE_WAIT_SAMPLE_CAPACITY = 4096

#: Ceiling on the auto-sized worker count.  Every worker is a full
#: interpreter plus a snapshot LRU; past a handful of processes the ship
#: fan-out and memory cost dominate any extra parallelism for this
#: workload shape.
MAX_AUTO_WORKER_PROCESSES = 8


def default_worker_processes(configured: int | None = None) -> int:
    """Resolve a worker-process count from config or the machine.

    ``configured`` wins when given (explicit overrides must keep working);
    otherwise size to ``os.cpu_count()`` clamped to
    ``[1, MAX_AUTO_WORKER_PROCESSES]`` — a fixed default either oversizes
    small containers (spawn cost, memory) or undersizes big hosts (idle
    cores).
    """
    if configured is not None:
        return configured
    import os

    return max(1, min(os.cpu_count() or 1, MAX_AUTO_WORKER_PROCESSES))


# ---------------------------------------------------------------------- #
# Worker side (runs in the child process; must stay import-light and
# lock-free — the child is single-threaded by design)
# ---------------------------------------------------------------------- #


def _run_task(
    kind: str, snapshot: CatalogSnapshot, body: tuple, deadline: float | None = None
) -> Any:
    """Execute one task body against a (worker-cached) snapshot.

    Kept as a plain function so the in-process tests can drive the exact
    code the workers run without spawning a subprocess.  ``deadline`` is an
    absolute ``time.monotonic()`` instant (comparable across processes on
    the same host): execute/profile arm the executor's cooperative
    cancellation checkpoints with it; generation — which has no internal
    checkpoints — refuses to start past it.
    """
    if kind == "execute":
        sql, options = body
        if not isinstance(options, ExecOptions):
            # Legacy transport body shape: (sql, use_cache flag).
            options = ExecOptions(use_cache=bool(options))
        if options.deadline is None and deadline is not None:
            options = options.replace(deadline=deadline)
        return snapshot.execute(sql, options)
    if kind == "profile":
        sqls = body[0]
        counts: list[int] = []
        for sql in sqls:
            try:
                counts.append(snapshot.execute(sql, ExecOptions(deadline=deadline)).row_count)
            except QueryTimeoutError:
                # A timeout is the caller's deadline, not an odd
                # instantiation — surface it instead of scoring -1.
                raise
            except Exception:  # noqa: BLE001 - odd instantiations must not kill search
                counts.append(-1)
        return counts
    if kind == "generate":
        if deadline is not None and time.monotonic() > deadline:
            raise DeadlineExceededError("Generation deadline elapsed before the task started")
        from repro.pipeline import generate_interface

        queries, config = body
        return generate_interface(list(queries), snapshot, config)
    raise WorkerError(f"Unknown worker task kind {kind!r}")


class _WorkerState:
    """Per-process snapshot cache + shared execution caches.

    Snapshots are cached by ``(catalog_id, fingerprint)``; the result cache
    and parse memo are shared across fingerprints (result keys embed the
    pinned version, parsing is version-independent), and compiled-plan caches
    are shared **per schema version** — a plan bakes in table-set analysis,
    so it survives data-version bumps but not register/drop/replace.
    """

    def __init__(self, capacity: int = SNAPSHOT_CACHE_CAPACITY) -> None:
        self.capacity = capacity
        self.snapshots: OrderedDict[tuple, CatalogSnapshot] = OrderedDict()
        self.query_cache = QueryCache(capacity=512)
        self.parse = DetachedParser()
        self.plan_caches: dict[tuple, dict] = {}

    def lookup(self, key: tuple) -> CatalogSnapshot | None:
        snapshot = self.snapshots.get(key)
        if snapshot is not None:
            self.snapshots.move_to_end(key)
        return snapshot

    def admit(self, key: tuple, payload: bytes) -> CatalogSnapshot:
        snapshot: CatalogSnapshot = pickle.loads(payload)
        plan_key = (key[0], snapshot.schema_version())
        snapshot.attach_caches(
            plan_cache=self.plan_caches.setdefault(plan_key, {}),
            query_cache=self.query_cache,
            parse=self.parse,
        )
        self.snapshots[key] = snapshot
        self.snapshots.move_to_end(key)
        while len(self.snapshots) > self.capacity:
            evicted_key, _ = self.snapshots.popitem(last=False)
            self._drop_unreferenced_plan_cache(evicted_key)
        return snapshot

    def _drop_unreferenced_plan_cache(self, evicted_key: tuple) -> None:
        live = {(key[0], snap.schema_version()) for key, snap in self.snapshots.items()}
        self.plan_caches = {k: v for k, v in self.plan_caches.items() if k in live}

    def cached_keys(self) -> list[tuple]:
        return list(self.snapshots.keys())


def _worker_main(conn, snapshot_cache_capacity: int) -> None:
    """The worker process main loop: recv task, run, send result.

    Protocol (all messages are picklable tuples):

    * parent → worker:
      ``("task", task_id, kind, key, body, payload|None, deadline|None)``
      or ``("stop",)``, where ``payload`` is ``(pickled_bytes, crc32)``.
    * worker → parent: ``(task_id, "ok", result, snapshot_cache_hit)``,
      ``(task_id, "need_snapshot")`` when the parent's shipped-set mirror
      drifted **or** the payload failed its CRC check (parent re-sends
      with a fresh payload), or
      ``(task_id, "error", exc_type_name, message)``.
    """
    state = _WorkerState(capacity=snapshot_cache_capacity)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message[0] == "stop":
            return
        _, task_id, kind, key, body, payload, deadline = message
        try:
            if kind == "ping":
                conn.send((task_id, "ok", None, True))
                continue
            if kind == "cache_info":
                conn.send((task_id, "ok", state.cached_keys(), True))
                continue
            snapshot = state.lookup(key) if key is not None else None
            hit = snapshot is not None
            if snapshot is None:
                if payload is None:
                    conn.send((task_id, "need_snapshot"))
                    continue
                data, crc = payload
                if zlib.crc32(data) != crc:
                    # Corrupted in flight: recover through the same
                    # handshake as mirror drift — ask for a re-ship.
                    conn.send((task_id, "need_snapshot"))
                    continue
                snapshot = state.admit(key, data)
            result = _run_task(kind, snapshot, body, deadline)
            conn.send((task_id, "ok", result, hit))
        except Exception as exc:  # noqa: BLE001 - the loop must survive any task
            try:
                conn.send((task_id, "error", type(exc).__name__, str(exc)))
            except Exception:  # noqa: BLE001 - parent went away mid-send
                return


# ---------------------------------------------------------------------- #
# Frontend side
# ---------------------------------------------------------------------- #


class _Future:
    """A minimal thread-safe future (set once, many waiters)."""

    __slots__ = ("_event", "_result", "_exception")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result: Any = None
        self._exception: BaseException | None = None

    def set_result(self, result: Any) -> None:
        self._result = result
        self._event.set()

    def set_exception(self, exception: BaseException) -> None:
        self._exception = exception
        self._event.set()

    def result(self, timeout: float | None = None) -> Any:
        if not self._event.wait(timeout):
            # A caller-side wait timeout says nothing about worker health:
            # the task may still complete behind the caller's back, and the
            # worker must not be treated as failed (no respawn, no breaker
            # strike, no placement poisoning) — hence a distinct type from
            # WorkerError.
            raise DeadlineExceededError(
                f"Timed out after {timeout}s waiting for a process-tier task"
            )
        if self._exception is not None:
            raise self._exception
        return self._result


@dataclass
class _Task:
    kind: str
    key: tuple | None
    body: tuple
    snapshot: CatalogSnapshot | None
    future: _Future
    submitted_at: float
    #: Absolute ``time.monotonic()`` instant past which the task must not
    #: start (queued tasks are dropped, executing tasks are cancelled at
    #: executor checkpoints).  ``None`` = no deadline.
    deadline: float | None = None
    #: Completed attempts that ended in a worker death (retry bookkeeping).
    attempts: int = 0


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with jittered exponential backoff for dead workers.

    Applies only to transport-level failures (the worker process died
    mid-task) — every task kind runs read-only against an immutable
    snapshot, so re-running one on a respawned worker is safe by
    construction.  In-worker task errors (bad SQL, type errors, timeouts)
    are deterministic and never retried.
    """

    max_attempts: int = 3
    base_delay_ms: float = 5.0
    max_delay_ms: float = 100.0
    #: Fractional jitter: each backoff is scaled by ``1 + jitter * U(0, 1)``
    #: from the tier's seeded RNG, decorrelating retry storms.
    jitter: float = 0.5
    #: Seed for the tier's retry RNG (deterministic backoff sequences).
    seed: int = 0

    def backoff_seconds(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1-based), in seconds."""
        delay_ms = min(self.max_delay_ms, self.base_delay_ms * (2 ** (attempt - 1)))
        return delay_ms * (1.0 + self.jitter * rng.random()) / 1000.0


class CircuitBreaker:
    """A respawn-rate circuit breaker over a sliding window.

    States: ``closed`` (normal) → ``open`` (``failure_threshold`` worker
    failures inside ``window_seconds``; the serving layer stops sending
    work to the tier) → ``half_open`` (after ``cooldown_seconds`` one
    probe request is let through) → ``closed`` on probe success, back to
    ``open`` on probe failure.  ``clock`` is injectable so tests can walk
    the window and cooldown without sleeping.
    """

    def __init__(
        self,
        failure_threshold: int = 4,
        window_seconds: float = 30.0,
        cooldown_seconds: float = 5.0,
        clock=time.monotonic,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.window_seconds = window_seconds
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._failures: deque[float] = deque()
        self._state = "closed"
        self._opened_at = 0.0
        self._probe_inflight = False
        self.trips = 0

    def record_failure(self) -> bool:
        """Record one worker failure; returns True when this one trips open."""
        with self._lock:
            if self._state == "open":
                return False
            now = self._clock()
            if self._state == "half_open":
                # A non-probe failure while probing is still bad news.
                self._trip(now)
                return True
            self._failures.append(now)
            self._prune(now)
            if len(self._failures) >= self.failure_threshold:
                self._trip(now)
                return True
            return False

    def acquire(self) -> str:
        """Admission verdict for one request: ``closed``/``probe``/``rejected``.

        ``closed`` — use the tier normally.  ``probe`` — the breaker is
        half-open and this caller carries the recovery probe: it must report
        back via :meth:`record_success` or :meth:`record_probe_failure`.
        ``rejected`` — the tier is open (or a probe is already in flight);
        the caller must degrade.
        """
        with self._lock:
            if self._state == "closed":
                return "closed"
            now = self._clock()
            if self._state == "open":
                if now - self._opened_at < self.cooldown_seconds:
                    return "rejected"
                self._state = "half_open"
                self._probe_inflight = False
            if self._probe_inflight:
                return "rejected"
            self._probe_inflight = True
            return "probe"

    def record_success(self) -> None:
        """A probe came back healthy: close the breaker."""
        with self._lock:
            if self._state == "half_open":
                self._state = "closed"
                self._probe_inflight = False
                self._failures.clear()

    def record_probe_failure(self) -> None:
        """The probe failed: reopen and restart the cooldown."""
        with self._lock:
            if self._state == "half_open":
                self._trip(self._clock())

    def state(self) -> str:
        with self._lock:
            return self._state

    def _trip(self, now: float) -> None:
        """Transition to open (lock held)."""
        self._state = "open"
        self._opened_at = now
        self._probe_inflight = False
        self._failures.clear()
        self.trips += 1

    def _prune(self, now: float) -> None:
        while self._failures and self._failures[0] <= now - self.window_seconds:
            self._failures.popleft()


@dataclass
class TierStats:
    """Frontend-side counters of one :class:`ProcessExecutionTier`."""

    tasks_dispatched: int = 0
    tasks_failed: int = 0
    tasks_expired: int = 0
    tasks_retried: int = 0
    snapshot_ships: int = 0
    ship_integrity_retries: int = 0
    worker_snapshot_cache_hits: int = 0
    workers_respawned: int = 0
    respawn_escalations: int = 0
    queue_waits: deque = field(
        default_factory=lambda: deque(maxlen=QUEUE_WAIT_SAMPLE_CAPACITY)
    )


class _WorkerHandle:
    """One worker process, its pipe, and the parent's shipped-key mirror."""

    def __init__(self, index: int, process, conn, capacity: int) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.capacity = capacity
        #: Mirror of the worker's snapshot LRU (same capacity, same update
        #: rule), letting the parent predict whether a payload must ship.
        #: Best-effort: on drift the worker answers ``need_snapshot`` and the
        #: parent re-sends with the payload.
        self.shipped: OrderedDict[tuple, None] = OrderedDict()
        #: Serializes pipe use between the dispatcher thread and debug calls.
        self.io_lock = threading.Lock()
        #: This worker's private task queue plus an in-flight flag; both are
        #: guarded by the tier's dispatch condition, and together they give
        #: the placement policy its load signal (``pending``).
        self.queue: deque = deque()
        self.busy = False

    def pending(self) -> int:
        """Queued plus in-flight task count (dispatch condition held)."""
        return len(self.queue) + (1 if self.busy else 0)

    def note_shipped(self, key: tuple) -> None:
        self.shipped[key] = None
        self.shipped.move_to_end(key)
        while len(self.shipped) > self.capacity:
            self.shipped.popitem(last=False)

    def note_used(self, key: tuple) -> None:
        if key in self.shipped:
            self.shipped.move_to_end(key)


class ProcessExecutionTier:
    """A pool of worker processes executing read-only tasks over snapshots.

    Args:
        processes: Worker process count.  ``None`` (the default) sizes the
            pool from the machine via :func:`default_worker_processes`.
        start_method: ``multiprocessing`` start method.  ``spawn`` (the
            default) is safe regardless of the frontend's thread activity;
            ``fork`` starts faster but must only be used when no other
            threads can hold locks at tier construction time.
        snapshot_cache_capacity: Per-worker snapshot LRU size.
        retry_policy: Backoff policy for tasks whose worker died mid-flight
            (default :class:`RetryPolicy`); ``None`` disables retries.
        breaker: Optional :class:`CircuitBreaker` fed a failure per worker
            death.  The tier only *feeds* it; enforcement (degrading to
            in-frontend execution) is the serving layer's job.
        faults: Optional :class:`~repro.serving.faults.FaultInjector`
            whose hooks fire on dispatch and ship.  ``None`` (the default)
            keeps every fault site a no-op.
    """

    def __init__(
        self,
        processes: int | None = None,
        start_method: str = "spawn",
        snapshot_cache_capacity: int = SNAPSHOT_CACHE_CAPACITY,
        retry_policy: RetryPolicy | None = RetryPolicy(),
        breaker: CircuitBreaker | None = None,
        faults: "FaultInjector | None" = None,
    ) -> None:
        processes = default_worker_processes(processes)
        if processes <= 0:
            raise WorkerError("ProcessExecutionTier needs at least one worker process")
        self.processes = processes
        self.snapshot_cache_capacity = snapshot_cache_capacity
        self._context = multiprocessing.get_context(start_method)
        # Placement policy, decided at submit time (see ``_place``):
        #
        # * Two worker classes keep latency classes apart — "light" tasks
        #   (execute, profile: ~1 ms) run on a small reserved set, "heavy"
        #   ones (generate: tens of ms) on the rest — so read p95 never
        #   inherits generation latency by queueing behind it.
        # * Within a class, placement is *sticky*: a task prefers a worker
        #   whose snapshot LRU already holds its (catalog, fingerprint) key,
        #   avoiding a re-ship and reusing that worker's warm result/plan
        #   caches.  An idle keyless worker beats a busy key-holding one —
        #   a ship costs ~2 ms while waiting behind a generation costs tens.
        self._dispatch_cond = threading.Condition()
        self._stop_dispatch = False
        self._light_reserved = max(1, processes // 4) if processes > 1 else 0
        self._task_ids = iter(range(1, 2**62))
        self._closed = False
        self._lock = threading.Lock()
        self._payloads: OrderedDict[tuple, tuple[bytes, int]] = OrderedDict()
        self.retry_policy = retry_policy
        self._retry_rng = random.Random(retry_policy.seed if retry_policy else 0)
        self.breaker = breaker
        self._faults = faults
        self.stats = TierStats()
        self._handles: list[_WorkerHandle] = [
            self._spawn_worker(index) for index in range(processes)
        ]
        self._warm_up()
        self._threads = [
            threading.Thread(
                target=self._dispatch_loop,
                args=(index,),
                name=f"tier-dispatch-{index}",
                daemon=True,
            )
            for index in range(processes)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------ #
    # Submission API
    # ------------------------------------------------------------------ #

    def submit_execute(
        self,
        snapshot: CatalogSnapshot,
        sql: str,
        options: ExecOptions | bool | None = None,
        *,
        use_cache: bool | None = None,
        deadline: float | None = None,
    ) -> _Future:
        """Run one SQL query against the snapshot, on some worker process.

        ``options`` (an :class:`ExecOptions`) crosses the pipe with the task
        body; the legacy ``use_cache=``/``deadline=`` keywords still work but
        emit a :class:`DeprecationWarning`.  The deadline additionally rides
        outside the body so the dispatch loop can drop queued tasks and cap
        retry backoff without unpickling the options.
        """
        resolved = coerce_options(
            options,
            "ProcessExecutionTier.submit_execute",
            use_cache=use_cache,
            deadline=deadline,
        ).pinned()
        return self._submit("execute", snapshot, (sql, resolved), resolved.deadline)

    def submit_profile(
        self,
        snapshot: CatalogSnapshot,
        sqls: Sequence[str],
        deadline: float | None = None,
    ) -> _Future:
        """Execute per-tree default-instantiation queries; resolves to row counts.

        This is the picklable form of the search layer's per-tree profile
        fan-out: the frontend instantiates each changed tree's default
        binding to canonical SQL (cheap AST work) and ships only the SQL —
        the CPU-heavy execution happens GIL-free in the worker.
        """
        return self._submit("profile", snapshot, (list(sqls),), deadline)

    def submit_generate(
        self,
        snapshot: CatalogSnapshot,
        queries: Sequence[str],
        config,
        deadline: float | None = None,
    ) -> _Future:
        """Run a whole interface generation against the snapshot on a worker.

        Generation is the coarsest candidate-evaluation grain: the full
        search (mapping, costing, layout, per-tree profiling) runs inside one
        worker process, so concurrent sessions' generations parallelize
        across cores instead of interleaving under the GIL.  Determinism is
        unaffected — the pipeline is a pure function of (snapshot, queries,
        config), proven by ``Interface.fingerprint()`` equality.
        """
        return self._submit("generate", snapshot, (list(queries), config), deadline)

    def execute(
        self,
        snapshot: CatalogSnapshot,
        sql: str,
        options: ExecOptions | bool | None = None,
    ):
        return self.submit_execute(snapshot, sql, options).result()

    def _submit(
        self,
        kind: str,
        snapshot: CatalogSnapshot,
        body: tuple,
        deadline: float | None = None,
    ) -> _Future:
        with self._lock:
            if self._closed:
                raise WorkerError("ProcessExecutionTier is shut down")
        key = (snapshot.catalog_id, snapshot.data_version())
        task = _Task(
            kind=kind,
            key=key,
            body=body,
            snapshot=snapshot,
            future=_Future(),
            submitted_at=time.perf_counter(),
            deadline=deadline,
        )
        with self._dispatch_cond:
            self._place(task).queue.append(task)
            self._dispatch_cond.notify_all()
        return task.future

    def _place(self, task: _Task) -> _WorkerHandle:
        """Pick the worker for a task (dispatch condition held).

        Candidates are the task's worker class (reserved workers for light
        kinds, the rest for generations).  Within the class, the queue is
        cost-scored: a worker's load is its pending task count, plus a
        miss penalty when it does not hold the task's snapshot key.  The
        penalty encodes the real ratio of ship cost to task cost — a ship
        (~2 ms) is about one light task, so light work sticks to key
        holders unless they are a full task behind; it is negligible next
        to a generation (tens of ms), so heavy work balances by load and
        uses key holding only as a tiebreak.  The ``shipped`` mirrors
        consulted here are best-effort — a stale read only costs an extra
        ship or a ``need_snapshot`` round trip, never correctness.
        """
        if task.kind == "generate" and self._light_reserved < len(self._handles):
            candidates = self._handles[self._light_reserved :]
        elif task.kind != "generate" and self._light_reserved > 0:
            candidates = self._handles[: self._light_reserved]
        else:
            candidates = self._handles
        penalty = 0.05 if task.kind == "generate" else 1.0

        def score(handle: _WorkerHandle) -> float:
            miss = 0.0 if (task.key is not None and task.key in handle.shipped) else penalty
            return handle.pending() + miss

        return min(candidates, key=score)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    def _spawn_worker(self, index: int) -> _WorkerHandle:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(child_conn, self.snapshot_cache_capacity),
            name=f"repro-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(index, process, parent_conn, self.snapshot_cache_capacity)

    def _warm_up(self) -> None:
        """Block until every worker finished its interpreter bootstrap.

        A spawned worker only becomes useful after re-importing the engine;
        pinging all workers up front (sends first, then receives — the
        imports overlap) moves that one-time cost out of the first N tasks'
        latency.  Runs before the dispatcher threads start, so the pipes
        need no locking yet.
        """
        for handle in self._handles:
            handle.conn.send(("task", 0, "ping", None, (), None, None))
        for handle in self._handles:
            reply = handle.conn.recv()
            if reply[1] != "ok":  # pragma: no cover - defensive
                raise WorkerError(f"Worker {handle.index} failed its warm-up ping")

    def _payload_for(self, task: _Task) -> tuple[bytes, int]:
        """The ``(pickled_bytes, crc32)`` wire payload for a task's snapshot.

        The CRC is computed once at pickle time and memoized with the
        bytes, so ship-integrity checking adds nothing to the per-ship hot
        path beyond the worker-side verify.
        """
        with self._lock:
            payload = self._payloads.get(task.key)
            if payload is not None:
                self._payloads.move_to_end(task.key)
                return payload
        data = pickle.dumps(task.snapshot, protocol=pickle.HIGHEST_PROTOCOL)
        payload = (data, zlib.crc32(data))
        with self._lock:
            self._payloads[task.key] = payload
            self._payloads.move_to_end(task.key)
            while len(self._payloads) > PAYLOAD_MEMO_CAPACITY:
                self._payloads.popitem(last=False)
        return payload

    def _next_task(self, index: int) -> _Task | None:
        """Pop the next task from worker ``index``'s queue (None = shut down)."""
        with self._dispatch_cond:
            self._handles[index].busy = False
            while True:
                # Re-read the handle every pass: a respawn initiated outside
                # this dispatcher (e.g. an operator escalation) swaps
                # ``self._handles[index]`` while this thread waits, and new
                # tasks land on the replacement's queue.
                handle = self._handles[index]
                if handle.queue:
                    handle.busy = True
                    return handle.queue.popleft()
                if self._stop_dispatch:
                    return None
                self._dispatch_cond.wait()

    def _dispatch_loop(self, index: int) -> None:
        while True:
            task = self._next_task(index)
            if task is None:
                return
            handle = self._handles[index]
            if task.deadline is not None and time.monotonic() >= task.deadline:
                # Past-deadline work is dropped before it wastes a worker:
                # the caller stopped waiting, so executing it helps no one.
                with self._lock:
                    self.stats.tasks_expired += 1
                task.future.set_exception(
                    DeadlineExceededError(
                        "Task deadline elapsed while queued; dropped before dispatch"
                    )
                )
                continue
            with self._lock:
                self.stats.queue_waits.append(time.perf_counter() - task.submitted_at)
            if self._faults is not None:
                self._faults.before_dispatch(handle.index, handle.process)
            try:
                result, hit = self._round_trip(handle, task)
            except _TaskError as exc:
                # The task failed *inside* a healthy worker (bad SQL, type
                # error, ...): deterministic, so no respawn, no retry, no
                # breaker strike.
                with self._lock:
                    self.stats.tasks_failed += 1
                task.future.set_exception(exc)
                continue
            except WorkerError as exc:
                # Transport-level: the worker process died mid-task.
                with self._lock:
                    self.stats.tasks_failed += 1
                    closed = self._closed
                if not closed:
                    handle = self._respawn(index)
                    if self.breaker is not None:
                        self.breaker.record_failure()
                    if self._maybe_retry(task):
                        continue
                task.future.set_exception(self._final_failure(task, exc))
                continue
            except Exception as exc:  # noqa: BLE001 - never kill the dispatcher
                with self._lock:
                    self.stats.tasks_failed += 1
                task.future.set_exception(exc)
                continue
            with self._lock:
                self.stats.tasks_dispatched += 1
                if hit:
                    self.stats.worker_snapshot_cache_hits += 1
            task.future.set_result(result)

    def _maybe_retry(self, task: _Task) -> bool:
        """Requeue a task whose worker died, if policy and deadline allow.

        Tasks are idempotent (read-only over immutable snapshots), so the
        only questions are attempt budget and whether the jittered backoff
        still fits inside the task's remaining deadline.  The backoff sleep
        runs on this dispatcher thread — its worker was just respawned and
        has no other task to run anyway.
        """
        policy = self.retry_policy
        if policy is None:
            return False
        task.attempts += 1
        if task.attempts >= policy.max_attempts:
            return False
        with self._lock:
            backoff = policy.backoff_seconds(task.attempts, self._retry_rng)
        if task.deadline is not None and time.monotonic() + backoff >= task.deadline:
            return False
        time.sleep(backoff)
        with self._lock:
            self.stats.tasks_retried += 1
        with self._dispatch_cond:
            if self._stop_dispatch:
                return False
            self._place(task).queue.append(task)
            self._dispatch_cond.notify_all()
        return True

    def _final_failure(self, task: _Task, exc: WorkerError) -> Exception:
        """The exception a task surfaces once its retries are exhausted."""
        if task.deadline is not None and time.monotonic() >= task.deadline:
            failure = DeadlineExceededError(
                f"Task deadline elapsed after {task.attempts} worker failure(s)"
            )
            failure.__cause__ = exc
            return failure
        return exc

    def _round_trip(self, handle: _WorkerHandle, task: _Task) -> tuple[Any, bool]:
        """One send/recv exchange, shipping the snapshot payload when needed."""
        task_id = next(self._task_ids)
        with handle.io_lock:
            payload = None
            if task.key is not None and task.key not in handle.shipped:
                payload = self._payload_for(task)
            reply = self._exchange(handle, (task_id, task, self._shipped_form(payload)))
            if reply[1] == "need_snapshot":
                # Either the shipped-set mirror drifted (e.g. across a
                # respawn the caller raced) or the payload failed its CRC
                # check in the worker; both recover by re-sending a fresh
                # payload.
                if payload is not None:
                    with self._lock:
                        self.stats.ship_integrity_retries += 1
                payload = self._payload_for(task)
                reply = self._exchange(handle, (task_id, task, self._shipped_form(payload)))
                if reply[1] == "need_snapshot":
                    raise _TaskError(
                        f"Worker {handle.index} rejected the snapshot payload twice "
                        "(persistent ship corruption)"
                    )
            if payload is not None and task.key is not None:
                with self._lock:
                    self.stats.snapshot_ships += 1
        if reply[1] == "error":
            _, _, exc_type, message = reply
            raise _map_worker_error(exc_type, message)
        shipped = payload is not None
        if task.key is not None:
            if shipped:
                handle.note_shipped(task.key)
            else:
                handle.note_used(task.key)
        return reply[2], reply[3] and not shipped

    def _shipped_form(self, payload: tuple[bytes, int] | None):
        """The payload as it goes on the wire (fault hook applied, if any)."""
        if payload is not None and self._faults is not None:
            return self._faults.on_ship(payload)
        return payload

    def _exchange(self, handle: _WorkerHandle, envelope: tuple) -> tuple:
        task_id, task, payload = envelope
        try:
            handle.conn.send(
                ("task", task_id, task.kind, task.key, task.body, payload, task.deadline)
            )
            while True:
                reply = handle.conn.recv()
                if reply[0] == task_id:
                    return reply
        except (EOFError, OSError, BrokenPipeError) as exc:
            raise WorkerError(
                f"Worker {handle.index} died mid-task ({type(exc).__name__}); "
                f"the task is lost and the worker will be respawned"
            ) from exc

    def _respawn(self, index: int) -> _WorkerHandle:
        old = self._handles[index]
        try:
            old.conn.close()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        if old.process.is_alive():
            old.process.terminate()
        old.process.join(timeout=5)
        if old.process.is_alive():
            # SIGTERM was ignored or the join timed out: escalate to
            # SIGKILL and re-join so the dead worker can never linger as a
            # zombie holding memory and a pipe end.
            old.process.kill()
            old.process.join(timeout=5)
            with self._lock:
                self.stats.respawn_escalations += 1
        handle = self._spawn_worker(index)
        with self._dispatch_cond:
            # Queued tasks survive the respawn; the shipped-key mirror does
            # not (the fresh worker's snapshot cache is empty).
            handle.queue.extend(old.queue)
            handle.busy = old.busy
            self._handles[index] = handle
        with self._lock:
            self.stats.workers_respawned += 1
        return handle

    # ------------------------------------------------------------------ #
    # Introspection / stats
    # ------------------------------------------------------------------ #

    def worker_cached_fingerprints(self, index: int) -> list[tuple]:
        """The (catalog_id, fingerprint) keys worker ``index`` currently caches.

        Debug/test API: exchanges a ``cache_info`` message directly with the
        worker (serialized against the dispatcher by the handle's pipe lock).
        """
        handle = self._handles[index]
        task = _Task(
            kind="cache_info",
            key=None,
            body=(),
            snapshot=None,
            future=_Future(),
            submitted_at=time.perf_counter(),
        )
        task_id = next(self._task_ids)
        with handle.io_lock:
            reply = self._exchange(handle, (task_id, task, None))
        if reply[1] == "error":
            raise WorkerError(f"cache_info failed: {reply[2]}: {reply[3]}")
        return reply[2]

    def queue_wait_percentiles(self) -> dict[str, float | None]:
        """p50/p95 dispatch queue wait in milliseconds (None when idle)."""
        with self._lock:
            samples = sorted(self.stats.queue_waits)
        if not samples:
            return {"queue_wait_p50_ms": None, "queue_wait_p95_ms": None}

        def pick(fraction: float) -> float:
            index = min(len(samples) - 1, max(0, round(fraction * (len(samples) - 1))))
            return round(samples[index] * 1000, 3)

        return {"queue_wait_p50_ms": pick(0.50), "queue_wait_p95_ms": pick(0.95)}

    def stats_snapshot(self) -> dict[str, Any]:
        with self._lock:
            data = {
                "tasks_dispatched": self.stats.tasks_dispatched,
                "tasks_failed": self.stats.tasks_failed,
                "tasks_expired": self.stats.tasks_expired,
                "tasks_retried": self.stats.tasks_retried,
                "snapshot_ships": self.stats.snapshot_ships,
                "ship_integrity_retries": self.stats.ship_integrity_retries,
                "worker_snapshot_cache_hits": self.stats.worker_snapshot_cache_hits,
                "workers_respawned": self.stats.workers_respawned,
                "respawn_escalations": self.stats.respawn_escalations,
                "workers": len(self._handles),
            }
        if self.breaker is not None:
            data["breaker_state"] = self.breaker.state()
            data["breaker_trips"] = self.breaker.trips
        data.update(self.queue_wait_percentiles())
        return data

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def shutdown(self, wait: bool = True) -> None:
        """Stop dispatchers and workers (idempotent).

        With ``wait=True`` queued tasks drain first (dispatchers only exit
        once both lanes are empty); with ``wait=False`` workers are
        terminated and any in-flight task fails with :class:`WorkerError`.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        with self._dispatch_cond:
            self._stop_dispatch = True
            self._dispatch_cond.notify_all()
        if not wait:
            for handle in self._handles:
                if handle.process.is_alive():
                    handle.process.terminate()
        for thread in self._threads:
            thread.join(timeout=30)
        for handle in self._handles:
            try:
                with handle.io_lock:
                    handle.conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
            handle.process.join(timeout=5)
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                handle.process.terminate()
                handle.process.join(timeout=5)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    def __enter__(self) -> "ProcessExecutionTier":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessExecutionTier(processes={self.processes})"


class _TaskError(WorkerError):
    """A task failed inside the worker (the original exception's text survives)."""


def _map_worker_error(exc_type: str, message: str) -> Exception:
    """Rehydrate a worker-side error reply into the right frontend type.

    Deadline outcomes must survive the process boundary typed — a caller
    distinguishing "my query timed out" from "the tier is broken" cannot do
    it from a string.  Everything else stays a :class:`_TaskError` carrying
    the original type name and text.
    """
    if exc_type == "QueryTimeoutError":
        return QueryTimeoutError(message)
    if exc_type == "DeadlineExceededError":
        return DeadlineExceededError(message)
    return _TaskError(f"{exc_type}: {message}")
