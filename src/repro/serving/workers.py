"""The process-pool execution tier: GIL-free workers over shipped snapshots.

The thread-pool serving layer (PR 5) cannot scale CPU-bound work — every
engine operation is pure Python, so eight worker threads still execute one
bytecode at a time.  :class:`ProcessExecutionTier` moves the two CPU-heavy
operation classes into a pool of **worker processes**:

* ad-hoc query execution (``Session.execute`` → canonical SQL + fingerprint),
* interface generation / per-tree candidate profiling (query log + pipeline
  config + fingerprint, or per-tree default-instantiation SQL + tree
  signature + fingerprint).

The design leans entirely on PR 5's snapshot contract:
:class:`~repro.engine.catalog.CatalogSnapshot` is immutable and
version-fingerprinted, so it crosses the process boundary **once per
``(catalog_id, fingerprint)``** instead of once per request.  Each worker
caches unpickled snapshots in a small LRU keyed by that pair; a data-version
bump simply introduces a new fingerprint, and the stale snapshot falls out of
the LRU lazily — no invalidation protocol, no shared memory, no locks in the
workers at all.  Workers are stateless and read-only by construction: every
task names the snapshot it runs against, sessions/admission/writes stay in
the frontend, and nothing a worker computes ever flows back into catalog
state (results return as picklable columnar ``QueryResult`` /
``GenerationResult`` values).

Frontend threading model: one dispatcher thread per worker process pulls
tasks off one shared queue (natural least-loaded balancing), performs the
ship-if-needed handshake over the worker's pipe, and blocks in ``recv`` —
which releases the GIL, so N workers genuinely execute N tasks in parallel.
A worker that dies mid-task fails that task with
:class:`~repro.errors.WorkerError` and is respawned transparently.

What may cross the boundary (see ``docs/SERVING.md``): pickled snapshots
(tables + fingerprint + catalog id — never the caches, never lock-bearing
objects), task descriptors built from canonical SQL text / query logs /
pipeline configs, and columnar results.  What must not: live ``Catalog``
objects, sessions, futures, executors, or anything holding a lock.
"""

from __future__ import annotations

import pickle
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Sequence

import multiprocessing

from repro.engine.catalog import CatalogSnapshot, DetachedParser
from repro.engine.query_cache import QueryCache
from repro.errors import WorkerError

#: Snapshots each worker keeps alive, LRU-evicted ((catalog_id, fingerprint)
#: keyed).  Small on purpose: the common case is one live fingerprint per
#: catalog plus a short tail of recently superseded versions still pinned by
#: open sessions.
SNAPSHOT_CACHE_CAPACITY = 8

#: Pickled-snapshot payloads the frontend memoizes (one pickle per
#: fingerprint, shared by every worker it ships to).
PAYLOAD_MEMO_CAPACITY = 16

#: Bound on the queue-wait sample reservoir (newest samples win).
QUEUE_WAIT_SAMPLE_CAPACITY = 4096

#: Ceiling on the auto-sized worker count.  Every worker is a full
#: interpreter plus a snapshot LRU; past a handful of processes the ship
#: fan-out and memory cost dominate any extra parallelism for this
#: workload shape.
MAX_AUTO_WORKER_PROCESSES = 8


def default_worker_processes(configured: int | None = None) -> int:
    """Resolve a worker-process count from config or the machine.

    ``configured`` wins when given (explicit overrides must keep working);
    otherwise size to ``os.cpu_count()`` clamped to
    ``[1, MAX_AUTO_WORKER_PROCESSES]`` — a fixed default either oversizes
    small containers (spawn cost, memory) or undersizes big hosts (idle
    cores).
    """
    if configured is not None:
        return configured
    import os

    return max(1, min(os.cpu_count() or 1, MAX_AUTO_WORKER_PROCESSES))


# ---------------------------------------------------------------------- #
# Worker side (runs in the child process; must stay import-light and
# lock-free — the child is single-threaded by design)
# ---------------------------------------------------------------------- #


def _run_task(kind: str, snapshot: CatalogSnapshot, body: tuple) -> Any:
    """Execute one task body against a (worker-cached) snapshot.

    Kept as a plain function so the in-process tests can drive the exact
    code the workers run without spawning a subprocess.
    """
    if kind == "execute":
        sql, use_cache = body
        return snapshot.execute(sql, use_cache=use_cache)
    if kind == "profile":
        sqls = body[0]
        counts: list[int] = []
        for sql in sqls:
            try:
                counts.append(snapshot.execute(sql).row_count)
            except Exception:  # noqa: BLE001 - odd instantiations must not kill search
                counts.append(-1)
        return counts
    if kind == "generate":
        from repro.pipeline import generate_interface

        queries, config = body
        return generate_interface(list(queries), snapshot, config)
    raise WorkerError(f"Unknown worker task kind {kind!r}")


class _WorkerState:
    """Per-process snapshot cache + shared execution caches.

    Snapshots are cached by ``(catalog_id, fingerprint)``; the result cache
    and parse memo are shared across fingerprints (result keys embed the
    pinned version, parsing is version-independent), and compiled-plan caches
    are shared **per schema version** — a plan bakes in table-set analysis,
    so it survives data-version bumps but not register/drop/replace.
    """

    def __init__(self, capacity: int = SNAPSHOT_CACHE_CAPACITY) -> None:
        self.capacity = capacity
        self.snapshots: OrderedDict[tuple, CatalogSnapshot] = OrderedDict()
        self.query_cache = QueryCache(capacity=512)
        self.parse = DetachedParser()
        self.plan_caches: dict[tuple, dict] = {}

    def lookup(self, key: tuple) -> CatalogSnapshot | None:
        snapshot = self.snapshots.get(key)
        if snapshot is not None:
            self.snapshots.move_to_end(key)
        return snapshot

    def admit(self, key: tuple, payload: bytes) -> CatalogSnapshot:
        snapshot: CatalogSnapshot = pickle.loads(payload)
        plan_key = (key[0], snapshot.schema_version())
        snapshot.attach_caches(
            plan_cache=self.plan_caches.setdefault(plan_key, {}),
            query_cache=self.query_cache,
            parse=self.parse,
        )
        self.snapshots[key] = snapshot
        self.snapshots.move_to_end(key)
        while len(self.snapshots) > self.capacity:
            evicted_key, _ = self.snapshots.popitem(last=False)
            self._drop_unreferenced_plan_cache(evicted_key)
        return snapshot

    def _drop_unreferenced_plan_cache(self, evicted_key: tuple) -> None:
        live = {(key[0], snap.schema_version()) for key, snap in self.snapshots.items()}
        self.plan_caches = {k: v for k, v in self.plan_caches.items() if k in live}

    def cached_keys(self) -> list[tuple]:
        return list(self.snapshots.keys())


def _worker_main(conn, snapshot_cache_capacity: int) -> None:
    """The worker process main loop: recv task, run, send result.

    Protocol (all messages are picklable tuples):

    * parent → worker: ``("task", task_id, kind, key, body, payload|None)``
      or ``("stop",)``.
    * worker → parent: ``(task_id, "ok", result, snapshot_cache_hit)``,
      ``(task_id, "need_snapshot")`` when the parent's shipped-set mirror
      drifted (parent re-sends with the payload), or
      ``(task_id, "error", exc_type_name, message)``.
    """
    state = _WorkerState(capacity=snapshot_cache_capacity)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message[0] == "stop":
            return
        _, task_id, kind, key, body, payload = message
        try:
            if kind == "ping":
                conn.send((task_id, "ok", None, True))
                continue
            if kind == "cache_info":
                conn.send((task_id, "ok", state.cached_keys(), True))
                continue
            snapshot = state.lookup(key) if key is not None else None
            hit = snapshot is not None
            if snapshot is None:
                if payload is None:
                    conn.send((task_id, "need_snapshot"))
                    continue
                snapshot = state.admit(key, payload)
            result = _run_task(kind, snapshot, body)
            conn.send((task_id, "ok", result, hit))
        except Exception as exc:  # noqa: BLE001 - the loop must survive any task
            try:
                conn.send((task_id, "error", type(exc).__name__, str(exc)))
            except Exception:  # noqa: BLE001 - parent went away mid-send
                return


# ---------------------------------------------------------------------- #
# Frontend side
# ---------------------------------------------------------------------- #


class _Future:
    """A minimal thread-safe future (set once, many waiters)."""

    __slots__ = ("_event", "_result", "_exception")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result: Any = None
        self._exception: BaseException | None = None

    def set_result(self, result: Any) -> None:
        self._result = result
        self._event.set()

    def set_exception(self, exception: BaseException) -> None:
        self._exception = exception
        self._event.set()

    def result(self, timeout: float | None = None) -> Any:
        if not self._event.wait(timeout):
            raise WorkerError("Timed out waiting for a process-tier task")
        if self._exception is not None:
            raise self._exception
        return self._result


@dataclass
class _Task:
    kind: str
    key: tuple | None
    body: tuple
    snapshot: CatalogSnapshot | None
    future: _Future
    submitted_at: float


@dataclass
class TierStats:
    """Frontend-side counters of one :class:`ProcessExecutionTier`."""

    tasks_dispatched: int = 0
    tasks_failed: int = 0
    snapshot_ships: int = 0
    worker_snapshot_cache_hits: int = 0
    workers_respawned: int = 0
    queue_waits: deque = field(
        default_factory=lambda: deque(maxlen=QUEUE_WAIT_SAMPLE_CAPACITY)
    )


class _WorkerHandle:
    """One worker process, its pipe, and the parent's shipped-key mirror."""

    def __init__(self, index: int, process, conn, capacity: int) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.capacity = capacity
        #: Mirror of the worker's snapshot LRU (same capacity, same update
        #: rule), letting the parent predict whether a payload must ship.
        #: Best-effort: on drift the worker answers ``need_snapshot`` and the
        #: parent re-sends with the payload.
        self.shipped: OrderedDict[tuple, None] = OrderedDict()
        #: Serializes pipe use between the dispatcher thread and debug calls.
        self.io_lock = threading.Lock()
        #: This worker's private task queue plus an in-flight flag; both are
        #: guarded by the tier's dispatch condition, and together they give
        #: the placement policy its load signal (``pending``).
        self.queue: deque = deque()
        self.busy = False

    def pending(self) -> int:
        """Queued plus in-flight task count (dispatch condition held)."""
        return len(self.queue) + (1 if self.busy else 0)

    def note_shipped(self, key: tuple) -> None:
        self.shipped[key] = None
        self.shipped.move_to_end(key)
        while len(self.shipped) > self.capacity:
            self.shipped.popitem(last=False)

    def note_used(self, key: tuple) -> None:
        if key in self.shipped:
            self.shipped.move_to_end(key)


class ProcessExecutionTier:
    """A pool of worker processes executing read-only tasks over snapshots.

    Args:
        processes: Worker process count.  ``None`` (the default) sizes the
            pool from the machine via :func:`default_worker_processes`.
        start_method: ``multiprocessing`` start method.  ``spawn`` (the
            default) is safe regardless of the frontend's thread activity;
            ``fork`` starts faster but must only be used when no other
            threads can hold locks at tier construction time.
        snapshot_cache_capacity: Per-worker snapshot LRU size.
    """

    def __init__(
        self,
        processes: int | None = None,
        start_method: str = "spawn",
        snapshot_cache_capacity: int = SNAPSHOT_CACHE_CAPACITY,
    ) -> None:
        processes = default_worker_processes(processes)
        if processes <= 0:
            raise WorkerError("ProcessExecutionTier needs at least one worker process")
        self.processes = processes
        self.snapshot_cache_capacity = snapshot_cache_capacity
        self._context = multiprocessing.get_context(start_method)
        # Placement policy, decided at submit time (see ``_place``):
        #
        # * Two worker classes keep latency classes apart — "light" tasks
        #   (execute, profile: ~1 ms) run on a small reserved set, "heavy"
        #   ones (generate: tens of ms) on the rest — so read p95 never
        #   inherits generation latency by queueing behind it.
        # * Within a class, placement is *sticky*: a task prefers a worker
        #   whose snapshot LRU already holds its (catalog, fingerprint) key,
        #   avoiding a re-ship and reusing that worker's warm result/plan
        #   caches.  An idle keyless worker beats a busy key-holding one —
        #   a ship costs ~2 ms while waiting behind a generation costs tens.
        self._dispatch_cond = threading.Condition()
        self._stop_dispatch = False
        self._light_reserved = max(1, processes // 4) if processes > 1 else 0
        self._task_ids = iter(range(1, 2**62))
        self._closed = False
        self._lock = threading.Lock()
        self._payloads: OrderedDict[tuple, bytes] = OrderedDict()
        self.stats = TierStats()
        self._handles: list[_WorkerHandle] = [
            self._spawn_worker(index) for index in range(processes)
        ]
        self._warm_up()
        self._threads = [
            threading.Thread(
                target=self._dispatch_loop,
                args=(index,),
                name=f"tier-dispatch-{index}",
                daemon=True,
            )
            for index in range(processes)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------ #
    # Submission API
    # ------------------------------------------------------------------ #

    def submit_execute(
        self, snapshot: CatalogSnapshot, sql: str, use_cache: bool = True
    ) -> _Future:
        """Run one SQL query against the snapshot, on some worker process."""
        return self._submit("execute", snapshot, (sql, use_cache))

    def submit_profile(self, snapshot: CatalogSnapshot, sqls: Sequence[str]) -> _Future:
        """Execute per-tree default-instantiation queries; resolves to row counts.

        This is the picklable form of the search layer's per-tree profile
        fan-out: the frontend instantiates each changed tree's default
        binding to canonical SQL (cheap AST work) and ships only the SQL —
        the CPU-heavy execution happens GIL-free in the worker.
        """
        return self._submit("profile", snapshot, (list(sqls),))

    def submit_generate(
        self, snapshot: CatalogSnapshot, queries: Sequence[str], config
    ) -> _Future:
        """Run a whole interface generation against the snapshot on a worker.

        Generation is the coarsest candidate-evaluation grain: the full
        search (mapping, costing, layout, per-tree profiling) runs inside one
        worker process, so concurrent sessions' generations parallelize
        across cores instead of interleaving under the GIL.  Determinism is
        unaffected — the pipeline is a pure function of (snapshot, queries,
        config), proven by ``Interface.fingerprint()`` equality.
        """
        return self._submit("generate", snapshot, (list(queries), config))

    def execute(self, snapshot: CatalogSnapshot, sql: str, use_cache: bool = True):
        return self.submit_execute(snapshot, sql, use_cache).result()

    def _submit(self, kind: str, snapshot: CatalogSnapshot, body: tuple) -> _Future:
        with self._lock:
            if self._closed:
                raise WorkerError("ProcessExecutionTier is shut down")
        key = (snapshot.catalog_id, snapshot.data_version())
        task = _Task(
            kind=kind,
            key=key,
            body=body,
            snapshot=snapshot,
            future=_Future(),
            submitted_at=time.perf_counter(),
        )
        with self._dispatch_cond:
            self._place(task).queue.append(task)
            self._dispatch_cond.notify_all()
        return task.future

    def _place(self, task: _Task) -> _WorkerHandle:
        """Pick the worker for a task (dispatch condition held).

        Candidates are the task's worker class (reserved workers for light
        kinds, the rest for generations).  Within the class, the queue is
        cost-scored: a worker's load is its pending task count, plus a
        miss penalty when it does not hold the task's snapshot key.  The
        penalty encodes the real ratio of ship cost to task cost — a ship
        (~2 ms) is about one light task, so light work sticks to key
        holders unless they are a full task behind; it is negligible next
        to a generation (tens of ms), so heavy work balances by load and
        uses key holding only as a tiebreak.  The ``shipped`` mirrors
        consulted here are best-effort — a stale read only costs an extra
        ship or a ``need_snapshot`` round trip, never correctness.
        """
        if task.kind == "generate" and self._light_reserved < len(self._handles):
            candidates = self._handles[self._light_reserved :]
        elif task.kind != "generate" and self._light_reserved > 0:
            candidates = self._handles[: self._light_reserved]
        else:
            candidates = self._handles
        penalty = 0.05 if task.kind == "generate" else 1.0

        def score(handle: _WorkerHandle) -> float:
            miss = 0.0 if (task.key is not None and task.key in handle.shipped) else penalty
            return handle.pending() + miss

        return min(candidates, key=score)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    def _spawn_worker(self, index: int) -> _WorkerHandle:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(child_conn, self.snapshot_cache_capacity),
            name=f"repro-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(index, process, parent_conn, self.snapshot_cache_capacity)

    def _warm_up(self) -> None:
        """Block until every worker finished its interpreter bootstrap.

        A spawned worker only becomes useful after re-importing the engine;
        pinging all workers up front (sends first, then receives — the
        imports overlap) moves that one-time cost out of the first N tasks'
        latency.  Runs before the dispatcher threads start, so the pipes
        need no locking yet.
        """
        for handle in self._handles:
            handle.conn.send(("task", 0, "ping", None, (), None))
        for handle in self._handles:
            reply = handle.conn.recv()
            if reply[1] != "ok":  # pragma: no cover - defensive
                raise WorkerError(f"Worker {handle.index} failed its warm-up ping")

    def _payload_for(self, task: _Task) -> bytes:
        with self._lock:
            payload = self._payloads.get(task.key)
            if payload is not None:
                self._payloads.move_to_end(task.key)
                return payload
        data = pickle.dumps(task.snapshot, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            self._payloads[task.key] = data
            self._payloads.move_to_end(task.key)
            while len(self._payloads) > PAYLOAD_MEMO_CAPACITY:
                self._payloads.popitem(last=False)
        return data

    def _next_task(self, index: int) -> _Task | None:
        """Pop the next task from worker ``index``'s queue (None = shut down)."""
        handle = self._handles[index]
        with self._dispatch_cond:
            handle.busy = False
            while True:
                if handle.queue:
                    handle.busy = True
                    return handle.queue.popleft()
                if self._stop_dispatch:
                    return None
                self._dispatch_cond.wait()

    def _dispatch_loop(self, index: int) -> None:
        while True:
            task = self._next_task(index)
            if task is None:
                return
            handle = self._handles[index]
            with self._lock:
                self.stats.queue_waits.append(time.perf_counter() - task.submitted_at)
            try:
                result, hit = self._round_trip(handle, task)
            except WorkerError as exc:
                with self._lock:
                    self.stats.tasks_failed += 1
                    closed = self._closed
                task.future.set_exception(exc)
                if not closed:
                    handle = self._respawn(index)
                continue
            except Exception as exc:  # noqa: BLE001 - never kill the dispatcher
                with self._lock:
                    self.stats.tasks_failed += 1
                task.future.set_exception(exc)
                continue
            with self._lock:
                self.stats.tasks_dispatched += 1
                if hit:
                    self.stats.worker_snapshot_cache_hits += 1
            task.future.set_result(result)

    def _round_trip(self, handle: _WorkerHandle, task: _Task) -> tuple[Any, bool]:
        """One send/recv exchange, shipping the snapshot payload when needed."""
        task_id = next(self._task_ids)
        with handle.io_lock:
            payload = None
            if task.key is not None and task.key not in handle.shipped:
                payload = self._payload_for(task)
            reply = self._exchange(handle, (task_id, task, payload))
            if reply[1] == "need_snapshot":
                # The shipped-set mirror drifted (e.g. across a respawn the
                # caller raced); re-send with the payload.
                payload = self._payload_for(task)
                reply = self._exchange(handle, (task_id, task, payload))
            if payload is not None and task.key is not None:
                with self._lock:
                    self.stats.snapshot_ships += 1
        if reply[1] == "error":
            _, _, exc_type, message = reply
            raise _TaskError(f"{exc_type}: {message}")
        shipped = payload is not None
        if task.key is not None:
            if shipped:
                handle.note_shipped(task.key)
            else:
                handle.note_used(task.key)
        return reply[2], reply[3] and not shipped

    def _exchange(self, handle: _WorkerHandle, envelope: tuple) -> tuple:
        task_id, task, payload = envelope
        try:
            handle.conn.send(("task", task_id, task.kind, task.key, task.body, payload))
            while True:
                reply = handle.conn.recv()
                if reply[0] == task_id:
                    return reply
        except (EOFError, OSError, BrokenPipeError) as exc:
            raise WorkerError(
                f"Worker {handle.index} died mid-task ({type(exc).__name__}); "
                f"the task is lost and the worker will be respawned"
            ) from exc

    def _respawn(self, index: int) -> _WorkerHandle:
        old = self._handles[index]
        try:
            old.conn.close()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        if old.process.is_alive():
            old.process.terminate()
        old.process.join(timeout=5)
        handle = self._spawn_worker(index)
        with self._dispatch_cond:
            # Queued tasks survive the respawn; the shipped-key mirror does
            # not (the fresh worker's snapshot cache is empty).
            handle.queue.extend(old.queue)
            handle.busy = old.busy
            self._handles[index] = handle
        with self._lock:
            self.stats.workers_respawned += 1
        return handle

    # ------------------------------------------------------------------ #
    # Introspection / stats
    # ------------------------------------------------------------------ #

    def worker_cached_fingerprints(self, index: int) -> list[tuple]:
        """The (catalog_id, fingerprint) keys worker ``index`` currently caches.

        Debug/test API: exchanges a ``cache_info`` message directly with the
        worker (serialized against the dispatcher by the handle's pipe lock).
        """
        handle = self._handles[index]
        task = _Task(
            kind="cache_info",
            key=None,
            body=(),
            snapshot=None,
            future=_Future(),
            submitted_at=time.perf_counter(),
        )
        task_id = next(self._task_ids)
        with handle.io_lock:
            reply = self._exchange(handle, (task_id, task, None))
        if reply[1] == "error":
            raise WorkerError(f"cache_info failed: {reply[2]}: {reply[3]}")
        return reply[2]

    def queue_wait_percentiles(self) -> dict[str, float | None]:
        """p50/p95 dispatch queue wait in milliseconds (None when idle)."""
        with self._lock:
            samples = sorted(self.stats.queue_waits)
        if not samples:
            return {"queue_wait_p50_ms": None, "queue_wait_p95_ms": None}

        def pick(fraction: float) -> float:
            index = min(len(samples) - 1, max(0, round(fraction * (len(samples) - 1))))
            return round(samples[index] * 1000, 3)

        return {"queue_wait_p50_ms": pick(0.50), "queue_wait_p95_ms": pick(0.95)}

    def stats_snapshot(self) -> dict[str, Any]:
        with self._lock:
            data = {
                "tasks_dispatched": self.stats.tasks_dispatched,
                "tasks_failed": self.stats.tasks_failed,
                "snapshot_ships": self.stats.snapshot_ships,
                "worker_snapshot_cache_hits": self.stats.worker_snapshot_cache_hits,
                "workers_respawned": self.stats.workers_respawned,
                "workers": len(self._handles),
            }
        data.update(self.queue_wait_percentiles())
        return data

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def shutdown(self, wait: bool = True) -> None:
        """Stop dispatchers and workers (idempotent).

        With ``wait=True`` queued tasks drain first (dispatchers only exit
        once both lanes are empty); with ``wait=False`` workers are
        terminated and any in-flight task fails with :class:`WorkerError`.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        with self._dispatch_cond:
            self._stop_dispatch = True
            self._dispatch_cond.notify_all()
        if not wait:
            for handle in self._handles:
                if handle.process.is_alive():
                    handle.process.terminate()
        for thread in self._threads:
            thread.join(timeout=30)
        for handle in self._handles:
            try:
                with handle.io_lock:
                    handle.conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
            handle.process.join(timeout=5)
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                handle.process.terminate()
                handle.process.join(timeout=5)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    def __enter__(self) -> "ProcessExecutionTier":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessExecutionTier(processes={self.processes})"


class _TaskError(WorkerError):
    """A task failed inside the worker (the original exception's text survives)."""
