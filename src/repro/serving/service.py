"""The multi-session serving service: admission control + bounded worker pool.

:class:`InterfaceService` turns the single-threaded pipeline into a
concurrent service.  It owns

* the live :class:`~repro.engine.catalog.Catalog` (all writes go through the
  catalog's copy-on-write path, so readers pinned at older versions are never
  torn),
* a bounded **worker pool** (``concurrent.futures.ThreadPoolExecutor``) that
  runs ad-hoc query execution, interface generation and dataset ingest
  concurrently,
* a dedicated **profile pool** the search layer fans per-tree candidate
  profiling out on — deliberately separate from the worker pool, because a
  generation task blocking on futures scheduled into its *own* saturated pool
  would deadlock,
* **admission control**: a hard cap on live sessions and on in-flight
  submitted tasks; past either cap, :class:`~repro.errors.AdmissionError` is
  raised instead of queueing unboundedly.

Lock hierarchy (top to bottom; a thread may only acquire downwards):

1. ``InterfaceService._lock`` — session registry and in-flight accounting,
2. ``Session._lock`` — per-session state (held across that session's own
   query execution: serializing one session's reads is intended),
3. ``Catalog._write_lock`` — copy-on-write writers (ingest),
4. ``Catalog._lock`` — table-map swaps, version reads, snapshot pinning,
5. cache-internal locks (``QueryCache``).

The ordering is rooted by the engine never calling back up into the serving
layer: catalog and cache locks are always acquired at the *bottom* of a call
chain, so no task body or callback acquires upwards, which is what makes the
layer deadlock-free by construction (see ``docs/SERVING.md``).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.engine.catalog import Catalog
from repro.engine.options import ExecOptions, coerce_options
from repro.engine.table import QueryResult
from repro.errors import (
    AdmissionError,
    DeadlineExceededError,
    OverloadError,
    SessionError,
    WorkerError,
)
from repro.pipeline import GenerationResult, PipelineConfig, generate_interface
from repro.serving.faults import FaultPlan
from repro.serving.session import Session
from repro.serving.workers import (
    QUEUE_WAIT_SAMPLE_CAPACITY,
    CircuitBreaker,
    ProcessExecutionTier,
    RetryPolicy,
)

#: Extra slack granted on top of a task's deadline when blocking on its
#: future: the deadline is enforced *inside* the tier (queued-task drops,
#: executor checkpoints), so the frontend wait only needs to cover delivery
#: of the typed deadline error, not race it.
DEADLINE_GRACE_SECONDS = 1.0


@dataclass
class ServiceConfig:
    """Sizing and admission knobs of one :class:`InterfaceService`."""

    #: Worker threads running queries, generations and ingest.  In the
    #: process tier these threads only *marshal* work (they block GIL-free on
    #: worker pipes), so size this at least as large as ``worker_processes``.
    max_workers: int = 4
    #: Threads of the dedicated per-tree profile pool (0 disables fan-out).
    profile_workers: int = 2
    #: Hard cap on concurrently open sessions.
    max_sessions: int = 16
    #: Hard cap on submitted-but-unfinished tasks across all sessions.
    max_pending: int = 64
    #: Default pipeline configuration for ``submit_generate``.
    generation: PipelineConfig = field(default_factory=PipelineConfig)
    #: Where CPU-heavy ops execute: ``"thread"`` (PR 5 behaviour — queries
    #: and generations run on the worker threads, GIL-bound) or ``"process"``
    #: (they dispatch to a :class:`ProcessExecutionTier`; sessions, admission
    #: control and writes stay in the frontend either way).
    execution_tier: str = "thread"
    #: Worker process count of the process tier (ignored for ``"thread"``).
    #: ``None`` sizes the pool from ``os.cpu_count()`` (clamped; see
    #: :func:`repro.serving.workers.default_worker_processes`) — a hardcoded
    #: default either starves big hosts or oversizes small containers.  An
    #: explicit integer still wins unchanged.
    worker_processes: int | None = None
    #: ``multiprocessing`` start method for the process tier.
    worker_start_method: str = "spawn"
    #: Shard count the async frontend partitions tenants across (each shard
    #: is one InterfaceService over its own catalog; tenants on different
    #: shards never contend on one ``Catalog._write_lock``).  Ignored by a
    #: directly constructed single service.
    shards: int = 1
    #: Default deadline applied to every submitted task, in milliseconds
    #: (``None`` = no deadline).  Per-request ``deadline_ms`` overrides win.
    #: Deadlines are absolute: computed once at submission and enforced at
    #: every stage (frontend queue, tier dispatch queue, executor
    #: checkpoints), so queue time counts against them.
    default_deadline_ms: float | None = None
    #: Fraction of ``max_pending`` past which generate-class submissions are
    #: shed with :class:`~repro.errors.OverloadError` — heavy work is
    #: rejected *before* it can starve light reads of the remaining slots.
    shed_watermark: float = 0.75
    #: Retry policy for process-tier tasks whose worker died mid-flight.
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    #: Circuit-breaker tuning for the process tier: trip open after
    #: ``breaker_failure_threshold`` worker failures inside
    #: ``breaker_window_seconds``; probe for recovery after
    #: ``breaker_cooldown_seconds``.  While open, work transparently falls
    #: back to in-frontend thread execution.
    breaker_failure_threshold: int = 4
    breaker_window_seconds: float = 30.0
    breaker_cooldown_seconds: float = 5.0
    #: Deterministic fault-injection plan (chaos testing only; ``None``
    #: keeps every fault site a no-op).
    fault_plan: FaultPlan | None = None


@dataclass
class ServiceStats:
    """Service-wide counters (reads are snapshots; writes are lock-guarded).

    ``snapshot_ships`` / ``worker_snapshot_cache_hits`` mirror the process
    tier (always 0 in the thread tier): how many times a pickled snapshot
    actually crossed a process boundary versus how many tasks found their
    fingerprint already cached in the worker.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    #: Generate-class submissions rejected by the load-shedding watermark.
    shed: int = 0
    #: Requests served by the in-frontend fallback because the process
    #: tier's circuit breaker was open.
    degraded: int = 0
    #: Tasks dropped in the frontend because their deadline elapsed while
    #: queued (the process tier counts its own drops in ``tasks_expired``).
    expired: int = 0
    sessions_opened: int = 0
    sessions_rejected: int = 0
    snapshot_ships: int = 0
    worker_snapshot_cache_hits: int = 0


class InterfaceService:
    """A thread-safe, multi-session facade over the generation pipeline."""

    def __init__(
        self,
        catalog: Catalog,
        config: ServiceConfig | None = None,
        process_tier: ProcessExecutionTier | None = None,
    ) -> None:
        self.catalog = catalog
        self.config = config or ServiceConfig()
        if self.config.max_workers <= 0:
            raise AdmissionError("InterfaceService needs at least one worker")
        if self.config.execution_tier not in ("thread", "process"):
            raise AdmissionError(
                f"Unknown execution tier {self.config.execution_tier!r} "
                f"(expected 'thread' or 'process')"
            )
        # The process tier must exist before any frontend thread is spawned
        # (a 'fork' start method is only safe while the process is still
        # single-threaded).  A shared tier may be injected — the async
        # frontend passes one tier to all of its shards so S shards do not
        # spawn S * worker_processes processes.
        # Fault plane: one injector instance shared by every site of this
        # service (tier dispatchers, ship path, executor hook) so the plan's
        # ordinals are global and its counters audit the whole run.  None —
        # the default — keeps every site a no-op.
        plan = self.config.fault_plan
        self._fault_injector = plan.injector() if plan is not None and plan.enabled() else None
        self._previous_executor_hook = None
        self._executor_hook_installed = False
        if self._fault_injector is not None and plan.executor_raise_at:
            from repro.engine.executor import install_fault_hook

            self._previous_executor_hook = install_fault_hook(
                self._fault_injector.executor_hook()
            )
            self._executor_hook_installed = True
        self._process_tier: ProcessExecutionTier | None = None
        self._owns_process_tier = False
        if self.config.execution_tier == "process":
            if process_tier is not None:
                self._process_tier = process_tier
            else:
                self._process_tier = ProcessExecutionTier(
                    processes=self.config.worker_processes,
                    start_method=self.config.worker_start_method,
                    retry_policy=self.config.retry_policy,
                    breaker=CircuitBreaker(
                        failure_threshold=self.config.breaker_failure_threshold,
                        window_seconds=self.config.breaker_window_seconds,
                        cooldown_seconds=self.config.breaker_cooldown_seconds,
                    ),
                    faults=self._fault_injector,
                )
                self._owns_process_tier = True
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.max_workers, thread_name_prefix="serve"
        )
        self._profile_pool = (
            ThreadPoolExecutor(
                max_workers=self.config.profile_workers, thread_name_prefix="profile"
            )
            if self.config.profile_workers > 0 and self._process_tier is None
            else None
        )
        self._queue_waits: deque = deque(maxlen=QUEUE_WAIT_SAMPLE_CAPACITY)
        self._sessions: dict[str, Session] = {}
        self._lock = threading.Lock()
        #: Admission slots reserved by in-progress create_session calls (the
        #: session is constructed outside the registry lock — catalog locks
        #: rank above service locks — so the slot is held by this counter
        #: until the session lands in the registry).
        self._reserved_sessions = 0
        self._inflight = 0
        self._ids = itertools.count(1)
        self._closed = False
        self.stats = ServiceStats()

    # ------------------------------------------------------------------ #
    # Session lifecycle / admission control
    # ------------------------------------------------------------------ #

    def create_session(self, user: str = "anonymous") -> Session:
        """Open a session, pinning a snapshot at the current data version.

        Raises :class:`AdmissionError` once ``max_sessions`` sessions are
        live — callers are expected to retry after closing one, not to queue.
        """
        with self._lock:
            self._ensure_open()
            if len(self._sessions) + self._reserved_sessions >= self.config.max_sessions:
                self.stats.sessions_rejected += 1
                raise AdmissionError(
                    f"Session limit reached ({self.config.max_sessions}); "
                    f"close a session before opening another"
                )
            self._reserved_sessions += 1
            session_id = f"s{next(self._ids)}"
            self.stats.sessions_opened += 1
        # Pinning reads the catalog lock; done outside the registry lock so
        # concurrent creators and submitters never queue behind a snapshot
        # pin.  The reserved counter keeps concurrent creators from
        # overshooting the cap in the meantime.
        try:
            session = Session(session_id=session_id, user=user, catalog=self.catalog)
        except BaseException:
            with self._lock:
                self._reserved_sessions -= 1
            raise
        with self._lock:
            self._reserved_sessions -= 1
            self._ensure_open()
            self._sessions[session_id] = session
        return session

    def session(self, session_id: str) -> Session:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise SessionError(f"Unknown session {session_id!r}")
        return session

    def close_session(self, session_id: str) -> None:
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            raise SessionError(f"Unknown session {session_id!r}")
        session.close()

    def session_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    # ------------------------------------------------------------------ #
    # Task submission
    # ------------------------------------------------------------------ #

    def submit_execute(
        self,
        session_id: str,
        query: str,
        options: ExecOptions | bool | None = None,
        *,
        use_cache: bool | None = None,
        deadline_ms: float | None = None,
    ) -> "Future[QueryResult]":
        """Run one SQL query on the session's pinned snapshot.

        Thread tier: the query executes on the worker pool.  Process tier:
        the worker-pool thread only marshals — it ships ``(canonical SQL,
        fingerprint)`` to a worker process (plus the snapshot itself iff that
        worker has never seen this fingerprint) and blocks GIL-free on the
        pipe, so concurrent queries execute truly in parallel.

        ``options`` carries the execution knobs (:class:`ExecOptions`); the
        legacy ``use_cache=``/``deadline_ms=`` keywords still work but emit
        a :class:`DeprecationWarning`.  A relative ``deadline_ms`` budget
        (or, absent one, ``ServiceConfig.default_deadline_ms``) is resolved
        to an absolute deadline at submission; past it the request resolves
        to a typed error (:class:`~repro.errors.QueryTimeoutError` if
        cancelled mid-execution,
        :class:`~repro.errors.DeadlineExceededError` if dropped in a queue).
        """
        resolved = coerce_options(
            options,
            "InterfaceService.submit_execute",
            use_cache=use_cache,
            deadline_ms=deadline_ms,
        )
        if resolved.deadline is None and resolved.deadline_ms is None:
            resolved = resolved.replace(deadline=self._deadline_from(None))
        resolved = resolved.pinned()
        session = self.session(session_id)
        runner = self._tier_runner()
        return self._submit(
            lambda: session.execute(query, resolved, runner=runner),
            deadline=resolved.deadline,
        )

    def _deadline_from(self, deadline_ms: float | None) -> float | None:
        """Resolve a per-request override + config default to an absolute deadline."""
        ms = deadline_ms if deadline_ms is not None else self.config.default_deadline_ms
        if ms is None:
            return None
        return time.monotonic() + ms / 1000.0

    def _tier_runner(self):
        """The session-execute runner for the configured execution tier."""
        tier = self._process_tier
        if tier is None:
            return None

        def run(snapshot, query, options):
            # Read fast path: hot queries are served from the frontend's
            # shared result cache at thread-tier cost; only misses pay the
            # worker round-trip, and their answers are published back so
            # every session pinned at this version hits next time.
            if options.use_cache:
                cached = snapshot.cached_result(query)
                if cached is not None:
                    return cached
            result = self._tier_call(
                tier,
                lambda: tier.submit_execute(snapshot, query, options),
                lambda: snapshot.execute(query, options),
                options.resolved_deadline(),
            )
            if options.use_cache:
                snapshot.store_result(query, result)
            return result

        return run

    def _tier_call(self, tier, submit, fallback, deadline):
        """One process-tier dispatch under the circuit-breaker protocol.

        Breaker closed: dispatch normally.  Open: serve via ``fallback`` —
        in-frontend execution at thread-tier cost (degraded mode: correct
        answers, reduced parallelism).  Half-open: this call may carry the
        recovery probe, in which case it must report the tier's health back.
        Only transport-class failures (worker death, deadline blown inside
        the tier) count against a probe — a typed engine error still proves
        the tier can run work.
        """
        breaker = tier.breaker
        ticket = breaker.acquire() if breaker is not None else "closed"
        if ticket == "rejected":
            with self._lock:
                self.stats.degraded += 1
            return fallback()
        try:
            timeout = None
            if deadline is not None:
                timeout = max(0.0, deadline - time.monotonic()) + DEADLINE_GRACE_SECONDS
            result = submit().result(timeout)
        except (WorkerError, DeadlineExceededError):
            if ticket == "probe":
                breaker.record_probe_failure()
            raise
        except Exception:
            if ticket == "probe":
                breaker.record_success()
            raise
        if ticket == "probe":
            breaker.record_success()
        return result

    def execute(
        self,
        session_id: str,
        query: str,
        options: ExecOptions | bool | None = None,
        *,
        use_cache: bool | None = None,
        deadline_ms: float | None = None,
    ) -> QueryResult:
        resolved = coerce_options(
            options,
            "InterfaceService.execute",
            use_cache=use_cache,
            deadline_ms=deadline_ms,
        )
        return self.submit_execute(session_id, query, resolved).result()

    def submit_generate(
        self,
        session_id: str,
        queries: Sequence[str],
        config: PipelineConfig | None = None,
        deadline_ms: float | None = None,
    ) -> "Future[GenerationResult]":
        """Generate an interface for the session's query log, on the pool.

        The generation runs against the session's pinned snapshot (one
        consistent data version end to end) with per-tree profiling fanned
        out across the dedicated profile pool, and attaches the resulting
        interface to the session on completion.

        Generation is the shedding class: past the queue-depth watermark it
        is rejected with :class:`~repro.errors.OverloadError` before it can
        starve light reads (see ``ServiceConfig.shed_watermark``).
        """
        session = self.session(session_id)
        generation_config = config or self.config.generation
        tier = self._process_tier
        deadline = self._deadline_from(deadline_ms)

        if tier is not None:

            def run() -> GenerationResult:
                # The whole generation is one picklable task descriptor
                # (query log + config + fingerprint); the search, mapping,
                # costing and per-tree profiling all run inside one worker
                # process, so concurrent sessions' generations use separate
                # cores instead of interleaving under the GIL.  Breaker
                # open: the generation runs serially in the frontend —
                # slower, still correct (the pipeline is a pure function of
                # snapshot + queries + config).
                result = self._tier_call(
                    tier,
                    lambda: tier.submit_generate(
                        session.snapshot, list(queries), generation_config, deadline=deadline
                    ),
                    lambda: generate_interface(
                        list(queries), session.snapshot, generation_config
                    ),
                    deadline,
                )
                session.attach(result)
                return result

        else:

            def run() -> GenerationResult:
                result = generate_interface(
                    list(queries),
                    session.snapshot,
                    generation_config,
                    profile_executor=self._profile_pool,
                )
                session.attach(result)
                return result

        return self._submit(run, heavy=True, deadline=deadline)

    def generate(
        self,
        session_id: str,
        queries: Sequence[str],
        config: PipelineConfig | None = None,
        deadline_ms: float | None = None,
    ) -> GenerationResult:
        return self.submit_generate(session_id, queries, config, deadline_ms=deadline_ms).result()

    def submit_ingest(
        self, table_name: str, rows: Iterable[Sequence[Any]]
    ) -> "Future[int]":
        """Append rows to a live table via the catalog's copy-on-write path.

        Sessions pinned at older versions keep their view; they observe the
        new rows after :meth:`Session.refresh`.
        """
        materialized = [list(row) for row in rows]
        return self._submit(lambda: self.catalog.append_rows(table_name, materialized))

    def ingest(self, table_name: str, rows: Iterable[Sequence[Any]]) -> int:
        return self.submit_ingest(table_name, rows).result()

    def _submit(
        self,
        task: Callable[[], Any],
        heavy: bool = False,
        deadline: float | None = None,
    ) -> Future:
        """Admission-checked submission onto the worker pool.

        ``heavy`` marks generate-class work, which is load-shed at the
        queue-depth watermark — strictly below the hard ``max_pending`` cap,
        so heavy work runs out of headroom while light reads still admit.
        """
        with self._lock:
            self._ensure_open()
            if heavy and 0 < self.config.shed_watermark < 1:
                watermark = max(1, int(self.config.shed_watermark * self.config.max_pending))
                if self._inflight >= watermark:
                    self.stats.shed += 1
                    raise OverloadError(
                        f"Load shedding: {self._inflight} tasks in flight is past the "
                        f"heavy-work watermark ({watermark} of {self.config.max_pending})"
                    )
            if self._inflight >= self.config.max_pending:
                self.stats.rejected += 1
                raise AdmissionError(
                    f"Task backlog limit reached ({self.config.max_pending} in flight)"
                )
            self._inflight += 1
            self.stats.submitted += 1
        submitted_at = time.perf_counter()

        def timed_task():
            # Frontend queue wait: submission -> a pool thread picking the
            # task up.  (The process tier separately samples its own
            # dispatch-queue wait; both surface in stats_snapshot().)
            with self._lock:
                self._queue_waits.append(time.perf_counter() - submitted_at)
            if deadline is not None and time.monotonic() >= deadline:
                # The deadline elapsed while the task sat in the frontend
                # queue — drop it before it wastes a worker.
                with self._lock:
                    self.stats.expired += 1
                raise DeadlineExceededError(
                    "Task deadline elapsed in the frontend queue; dropped before execution"
                )
            return task()

        try:
            future = self._pool.submit(timed_task)
        except BaseException:
            with self._lock:
                self._inflight -= 1
                self.stats.submitted -= 1
            raise
        future.add_done_callback(self._task_done)
        return future

    def _task_done(self, future: Future) -> None:
        with self._lock:
            self._inflight -= 1
            if future.cancelled() or future.exception() is not None:
                self.stats.failed += 1
            else:
                self.stats.completed += 1

    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    # ------------------------------------------------------------------ #
    # Stats
    # ------------------------------------------------------------------ #

    @property
    def process_tier(self) -> ProcessExecutionTier | None:
        """The process execution tier, or None in the thread tier."""
        return self._process_tier

    @property
    def fault_injector(self):
        """The live fault-injection runtime, or None (chaos tests audit it)."""
        return self._fault_injector

    def stats_snapshot(self) -> dict[str, Any]:
        """Machine-readable service statistics (what the bench JSON stores).

        Includes the admission counters, per-tier queue-wait percentiles
        (``frontend_queue_wait_*`` always; ``process_queue_wait_*`` in the
        process tier), and the snapshot-transport counters mirrored from the
        process tier.
        """
        with self._lock:
            data: dict[str, Any] = {
                "submitted": self.stats.submitted,
                "completed": self.stats.completed,
                "failed": self.stats.failed,
                "rejected": self.stats.rejected,
                "shed": self.stats.shed,
                "degraded": self.stats.degraded,
                "expired": self.stats.expired,
                "sessions_opened": self.stats.sessions_opened,
                "sessions_rejected": self.stats.sessions_rejected,
                "execution_tier": self.config.execution_tier,
            }
            waits = sorted(self._queue_waits)
        for name, fraction in (("p50", 0.50), ("p95", 0.95)):
            key = f"frontend_queue_wait_{name}_ms"
            if waits:
                index = min(len(waits) - 1, max(0, round(fraction * (len(waits) - 1))))
                data[key] = round(waits[index] * 1000, 3)
            else:
                data[key] = None
        tier = self._process_tier
        if tier is not None:
            tier_stats = tier.stats_snapshot()
            with self._lock:
                self.stats.snapshot_ships = tier_stats["snapshot_ships"]
                self.stats.worker_snapshot_cache_hits = tier_stats[
                    "worker_snapshot_cache_hits"
                ]
            data["snapshot_ships"] = tier_stats["snapshot_ships"]
            data["worker_snapshot_cache_hits"] = tier_stats["worker_snapshot_cache_hits"]
            data["workers_respawned"] = tier_stats["workers_respawned"]
            data["respawn_escalations"] = tier_stats["respawn_escalations"]
            data["tasks_retried"] = tier_stats["tasks_retried"]
            data["tasks_expired"] = tier_stats["tasks_expired"]
            data["ship_integrity_retries"] = tier_stats["ship_integrity_retries"]
            if "breaker_state" in tier_stats:
                data["breaker_state"] = tier_stats["breaker_state"]
                data["breaker_trips"] = tier_stats["breaker_trips"]
            # The *resolved* pool size — with worker_processes=None this is
            # what default_worker_processes() picked for the machine.
            data["worker_processes"] = tier_stats["workers"]
            data["process_queue_wait_p50_ms"] = tier_stats["queue_wait_p50_ms"]
            data["process_queue_wait_p95_ms"] = tier_stats["queue_wait_p95_ms"]
        else:
            data["snapshot_ships"] = 0
            data["worker_snapshot_cache_hits"] = 0
            data["worker_processes"] = None
        # Incremental-maintenance counters from the catalog's result cache:
        # folds answered a probe by applying appended deltas, fallbacks had
        # to recompute cold.  The effective hit rate counts folds as hits —
        # the number a refresh-heavy dashboard workload actually experiences.
        cache_stats = self.catalog.cache_stats()
        data["ivm_folds"] = cache_stats.get("ivm_folds", 0)
        data["ivm_fallbacks"] = cache_stats.get("ivm_fallbacks", 0)
        data["query_cache_hit_rate"] = cache_stats.get("hit_rate")
        data["query_cache_effective_hit_rate"] = cache_stats.get("effective_hit_rate")
        return data

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def _ensure_open(self) -> None:
        if self._closed:
            raise SessionError("InterfaceService is shut down")

    def shutdown(self, wait: bool = True) -> None:
        """Stop the service (idempotent).

        New submissions and sessions are rejected immediately; with
        ``wait=True`` the pools drain in-flight tasks *before* the sessions
        are closed, so already-submitted work completes normally instead of
        failing against a closed session.  ``wait=False`` abandons in-flight
        work (tasks may then fail with :class:`SessionError`).
        """
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=wait)
        if self._profile_pool is not None:
            self._profile_pool.shutdown(wait=wait)
        if self._process_tier is not None and self._owns_process_tier:
            self._process_tier.shutdown(wait=wait)
        if self._executor_hook_installed:
            from repro.engine.executor import install_fault_hook

            install_fault_hook(self._previous_executor_hook)
            self._executor_hook_installed = False
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.close()

    def __enter__(self) -> "InterfaceService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InterfaceService(sessions={self.session_count()}, "
            f"inflight={self.inflight()}, workers={self.config.max_workers})"
        )
