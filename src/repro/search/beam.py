"""Beam search over Difftree forests.

A width-``k`` beam sits between greedy hill climbing and bounded exhaustive
enumeration: at every depth it expands *all* actions of the ``k`` best frontier
states, keeps the ``k`` cheapest distinct successors, and remembers the best
state seen anywhere.  Unlike greedy it can cross a temporarily-worse
intermediate state (a merge that only pays off after a subsequent factoring)
as long as that state stays within the beam; unlike exhaustive search its
frontier is bounded, so the work per depth is ``O(k · branching)``.

Beam search is the strategy that benefits most from incremental evaluation:
sibling candidates in one frontier expansion share all but one or two trees
with their parent, so per-tree caches turn a frontier sweep into mostly
O(changed trees) work.

Being new code with no reproducibility debt, beam uses *exact* state
identity: its visited-set keys on :func:`precise_forest_signature` (the
legacy fingerprint collides structurally different choice trees), and
successor evaluations bypass the legacy-keyed forest memo (per-tree caches
still apply; the visited-set already guarantees each distinct state is
evaluated at most once).

Determinism: candidates are ranked by (cost, discovery order), so a fixed
query log always yields the same interface — there is no randomness at all.
"""

from __future__ import annotations

from repro.difftree.signatures import precise_forest_signature
from repro.errors import SearchError
from repro.search.space import SearchResult, SearchSpace

#: Default number of frontier states kept per depth.
DEFAULT_BEAM_WIDTH = 4


def beam_search(
    space: SearchSpace,
    width: int = DEFAULT_BEAM_WIDTH,
    max_depth: int = 8,
) -> SearchResult:
    """Run beam search from the space's initial state."""
    if width < 1:
        raise SearchError("Beam search requires a beam width of at least 1")
    if max_depth < 0:
        raise SearchError("Beam search requires a non-negative depth")

    initial = space.initial_state
    best_forest = initial
    best_evaluation = space.evaluate(initial)
    best_cost = best_evaluation.total_cost
    best_trace: list[str] = []

    visited = {precise_forest_signature(initial)}
    # Frontier entries: (cost, discovery order, forest, trace).
    beam = [(best_cost, 0, initial, [])]

    for _depth in range(max_depth):
        candidates = []
        discovered = 0
        for _cost, _order, forest, trace in beam:
            space.stats.states_expanded += 1
            for action in space.actions(forest):
                successor = space.apply(forest, action)
                signature = precise_forest_signature(successor)
                if signature in visited:
                    continue
                visited.add(signature)
                evaluation = space.evaluate(
                    successor, changed=action.touched, use_cache=False
                )
                candidates.append(
                    (
                        evaluation.total_cost,
                        discovered,
                        successor,
                        trace + [action.description],
                        evaluation,
                    )
                )
                discovered += 1
        if not candidates:
            break
        candidates.sort(key=lambda entry: (entry[0], entry[1]))
        beam = [entry[:4] for entry in candidates[:width]]
        frontier = candidates[0]
        if frontier[0] < best_cost:
            best_cost = frontier[0]
            best_forest = frontier[2]
            best_trace = frontier[3]
            best_evaluation = frontier[4]

    # Build the result from the held evaluation: a final evaluate() round
    # trip could hand back a legacy-fingerprint-colliding neighbour's entry.
    return SearchResult(
        interface=best_evaluation.interface,
        cost=best_evaluation.cost,
        forest=best_forest,
        stats=space.stats,
        strategy="beam",
        action_trace=best_trace,
    )
