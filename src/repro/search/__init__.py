"""Search strategies over Difftree forests: MCTS, greedy, beam, exhaustive."""

from repro.search.beam import DEFAULT_BEAM_WIDTH, beam_search
from repro.search.exhaustive import exhaustive_search
from repro.search.greedy import greedy_search
from repro.search.mcts import DEFAULT_EXPLORATION, MctsNode, MctsSearcher, mcts_search
from repro.search.space import Action, Evaluation, SearchResult, SearchSpace, SearchStats

__all__ = [
    "DEFAULT_BEAM_WIDTH",
    "beam_search",
    "exhaustive_search",
    "greedy_search",
    "DEFAULT_EXPLORATION",
    "MctsNode",
    "MctsSearcher",
    "mcts_search",
    "Action",
    "Evaluation",
    "SearchResult",
    "SearchSpace",
    "SearchStats",
]
