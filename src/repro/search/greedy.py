"""Greedy hill-climbing baseline over the interface search space.

At every step the searcher evaluates all neighbours of the current state and
moves to the cheapest one, stopping when no neighbour improves the cost.  It
is the natural ablation baseline for MCTS: cheaper per step, but it gets stuck
in local minima when an improvement requires a temporarily worse intermediate
state (e.g. a merge that only pays off after a subsequent factoring).
"""

from __future__ import annotations

from repro.search.space import SearchResult, SearchSpace


def greedy_search(space: SearchSpace, max_steps: int = 12) -> SearchResult:
    """Run greedy hill climbing from the space's initial state."""
    current = space.initial_state
    current_cost = space.evaluate(current).total_cost
    trace: list[str] = []

    for _ in range(max_steps):
        best_action = None
        best_forest = None
        best_cost = current_cost
        for action in space.actions(current):
            candidate = space.apply(current, action)
            cost = space.evaluate(candidate, changed=action.touched).total_cost
            if cost < best_cost:
                best_cost = cost
                best_action = action
                best_forest = candidate
        if best_action is None or best_forest is None:
            break
        current = best_forest
        current_cost = best_cost
        trace.append(best_action.description)
        space.stats.states_expanded += 1

    return space.result(current, strategy="greedy", action_trace=trace)
