"""Bounded exhaustive enumeration over the interface search space.

Breadth-first enumeration of every state reachable within ``max_depth``
actions (capped at ``max_states`` distinct states).  It is the ground-truth
baseline for small query logs: MCTS should find interfaces of (nearly) the
same cost while evaluating far fewer candidates — which is exactly the shape
the search-ablation benchmark reports.
"""

from __future__ import annotations

from collections import deque

from repro.search.space import SearchResult, SearchSpace


def exhaustive_search(
    space: SearchSpace, max_depth: int = 3, max_states: int = 400
) -> SearchResult:
    """Enumerate all states up to ``max_depth`` actions and return the cheapest."""
    initial = space.initial_state
    best_forest = initial
    best_cost = space.evaluate(initial).total_cost
    best_trace: list[str] = []

    visited = {initial.signature()}
    queue: deque[tuple[object, int, list[str]]] = deque([(initial, 0, [])])
    explored = 0

    while queue and explored < max_states:
        forest, depth, trace = queue.popleft()
        if depth >= max_depth:
            continue
        for action in space.actions(forest):  # type: ignore[arg-type]
            candidate = space.apply(forest, action)  # type: ignore[arg-type]
            signature = candidate.signature()
            if signature in visited:
                continue
            visited.add(signature)
            explored += 1
            space.stats.states_expanded += 1
            candidate_trace = trace + [action.description]
            cost = space.evaluate(candidate, changed=action.touched).total_cost
            if cost < best_cost:
                best_cost = cost
                best_forest = candidate
                best_trace = candidate_trace
            queue.append((candidate, depth + 1, candidate_trace))
            if explored >= max_states:
                break

    return space.result(best_forest, strategy="exhaustive", action_trace=best_trace)
