"""Monte Carlo Tree Search over Difftree forests.

PI2 explores the enormous space of Difftree structures with MCTS (Coulom
2006), balancing exploitation of good structures with exploration of new ones
(Section 2, step 4).  This implementation uses the standard UCT selection
rule.  Rewards are derived from the interface cost: lower cost → higher
reward, normalized as ``1 / (1 + cost)`` so the reward stays in (0, 1].

The searcher keeps the best (lowest-cost) interface seen anywhere — including
during rollouts — which is what the pipeline returns.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.difftree.builder import DifftreeForest
from repro.errors import SearchError
from repro.search.space import Action, SearchResult, SearchSpace

#: Default exploration constant of the UCT rule.
DEFAULT_EXPLORATION = 1.2


@dataclass
class MctsNode:
    """One node of the MCTS tree: a forest state plus visit statistics."""

    forest: DifftreeForest
    parent: "MctsNode | None" = None
    action_from_parent: Action | None = None
    children: list["MctsNode"] = field(default_factory=list)
    untried_actions: list[Action] | None = None
    visits: int = 0
    total_reward: float = 0.0
    depth: int = 0

    def is_fully_expanded(self) -> bool:
        return self.untried_actions is not None and not self.untried_actions

    def mean_reward(self) -> float:
        if self.visits == 0:
            return 0.0
        return self.total_reward / self.visits

    def uct_score(self, exploration: float) -> float:
        if self.visits == 0:
            return float("inf")
        assert self.parent is not None
        exploit = self.mean_reward()
        explore = exploration * math.sqrt(math.log(self.parent.visits) / self.visits)
        return exploit + explore


class MctsSearcher:
    """UCT Monte Carlo Tree Search over the interface-generation search space."""

    def __init__(
        self,
        space: SearchSpace,
        iterations: int = 60,
        rollout_depth: int = 2,
        max_depth: int = 6,
        exploration: float = DEFAULT_EXPLORATION,
        seed: int = 0,
    ) -> None:
        if iterations < 1:
            raise SearchError("MCTS requires at least one iteration")
        self.space = space
        self.iterations = iterations
        self.rollout_depth = rollout_depth
        self.max_depth = max_depth
        self.exploration = exploration
        self.rng = random.Random(seed)
        self.best_forest: DifftreeForest | None = None
        self.best_cost = float("inf")
        self.best_trace: list[str] = []

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def search(self) -> SearchResult:
        root = MctsNode(forest=self.space.initial_state, depth=0)
        self._observe(root.forest, [])

        for _ in range(self.iterations):
            node, trace = self._select(root)
            node, trace = self._expand(node, trace)
            reward = self._rollout(node, trace)
            self._backpropagate(node, reward)

        assert self.best_forest is not None
        result = self.space.result(self.best_forest, strategy="mcts", action_trace=self.best_trace)
        return result

    # ------------------------------------------------------------------ #
    # MCTS phases
    # ------------------------------------------------------------------ #

    def _select(self, node: MctsNode) -> tuple[MctsNode, list[str]]:
        trace: list[str] = []
        while node.is_fully_expanded() and node.children:
            node = max(node.children, key=lambda child: child.uct_score(self.exploration))
            if node.action_from_parent is not None:
                trace.append(node.action_from_parent.description)
        return node, trace

    def _expand(self, node: MctsNode, trace: list[str]) -> tuple[MctsNode, list[str]]:
        if node.depth >= self.max_depth:
            return node, trace
        if node.untried_actions is None:
            node.untried_actions = self.space.actions(node.forest)
            self.rng.shuffle(node.untried_actions)
            self.space.stats.states_expanded += 1
        if not node.untried_actions:
            return node, trace
        action = node.untried_actions.pop()
        child_forest = self.space.apply(node.forest, action)
        child = MctsNode(
            forest=child_forest,
            parent=node,
            action_from_parent=action,
            depth=node.depth + 1,
        )
        node.children.append(child)
        child_trace = trace + [action.description]
        self._observe(child_forest, child_trace, changed=action.touched)
        return child, child_trace

    def _rollout(self, node: MctsNode, trace: list[str]) -> float:
        forest = node.forest
        rollout_trace = list(trace)
        for _ in range(self.rollout_depth):
            actions = self.space.actions(forest)
            if not actions:
                break
            action = self.rng.choice(actions)
            forest = self.space.apply(forest, action)
            rollout_trace.append(action.description)
            self._observe(forest, rollout_trace, changed=action.touched)
        evaluation = self.space.evaluate(forest)
        return 1.0 / (1.0 + evaluation.total_cost)

    def _backpropagate(self, node: MctsNode | None, reward: float) -> None:
        while node is not None:
            node.visits += 1
            node.total_reward += reward
            node = node.parent

    # ------------------------------------------------------------------ #
    # Best-state tracking
    # ------------------------------------------------------------------ #

    def _observe(
        self,
        forest: DifftreeForest,
        trace: list[str],
        changed: tuple[int, ...] | None = None,
    ) -> None:
        evaluation = self.space.evaluate(forest, changed=changed)
        if evaluation.total_cost < self.best_cost:
            self.best_cost = evaluation.total_cost
            self.best_forest = forest
            self.best_trace = list(trace)


def mcts_search(
    space: SearchSpace,
    iterations: int = 60,
    rollout_depth: int = 2,
    max_depth: int = 6,
    exploration: float = DEFAULT_EXPLORATION,
    seed: int = 0,
) -> SearchResult:
    """Convenience wrapper running one MCTS search."""
    searcher = MctsSearcher(
        space,
        iterations=iterations,
        rollout_depth=rollout_depth,
        max_depth=max_depth,
        exploration=exploration,
        seed=seed,
    )
    return searcher.search()
