"""The search space over Difftree forests.

A search *state* is a :class:`~repro.difftree.builder.DifftreeForest`.  The
actions available in a state are

* ``merge(i, j)`` — merge two trees of the forest into one (reduces chart
  count, introduces choice nodes),
* every applicable tree transformation from
  :mod:`repro.difftree.transformations` (factoring shared structure above an
  ANY node, flipping an OPT default).

Evaluating a state maps the forest to a candidate interface (the mapping step)
and scores it with the cost model; evaluations are memoized by forest
signature, so the different search strategies can be compared on the number of
*distinct* candidates they explore.

Evaluation is **incremental**: every action touches one or two trees (its
:attr:`Action.touched` delta) while the rest of the forest is structure-shared
with the parent state, so all per-tree work — profiling, chart templates,
widget mapping pieces, coverage checks, and default-query data profiling — is
cached by interned per-tree signature (:mod:`repro.difftree.signatures`) and
reused for unchanged trees.  Only the genuinely tree-coupled steps (layout,
the duplicate-chart penalty, id renumbering) run globally per candidate, which
makes one evaluation O(changed trees) instead of O(forest).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cost.model import CostBreakdown, CostModel
from repro.difftree.builder import DifftreeForest, build_forest
from repro.difftree.canonical import queries_share_source, structural_similarity
from repro.difftree.signatures import LruDict, structural_signature, tree_signature
from repro.difftree.transformations import applicable_transformations
from repro.errors import SearchError
from repro.interface.interface import Interface
from repro.mapping.schema_matching import MappingCaches, MappingConfig, map_forest_to_interface
from repro.sql.schema import TableSchema

#: Bound on the signature-keyed transformation cache (entries, LRU-evicted).
TRANSFORMATION_CACHE_CAPACITY = 512
#: Bound on the per-tree data-profile (row count) cache.
ROWS_CACHE_CAPACITY = 4096


@dataclass(frozen=True)
class Action:
    """One applicable state transition.

    ``touched`` is the action's *delta*: the indices (in the **result**
    forest) of the trees the action created.  Every other tree of the result
    is shared by object identity with the source forest, which is what the
    per-tree evaluation caches exploit.  Strategies thread the delta through
    :meth:`SearchSpace.evaluate` so the incremental-reuse accounting in
    :class:`SearchStats` reflects what each strategy actually re-evaluated.
    """

    kind: str  # "merge" | "transform"
    description: str
    apply: Callable[[DifftreeForest], DifftreeForest] = field(compare=False)
    touched: tuple[int, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.description


@dataclass
class Evaluation:
    """The mapped interface and its cost for one state.

    ``data_rows`` holds, per Difftree, the row count of the tree's default
    instantiation executed against the catalog (None when the space was built
    without a catalog, or -1 when that tree's query failed to execute).
    """

    interface: Interface
    cost: CostBreakdown
    data_rows: tuple[int, ...] | None = None

    @property
    def total_cost(self) -> float:
        return self.cost.total


@dataclass
class SearchStats:
    """Bookkeeping shared by all search strategies.

    ``queries_executed`` counts queries the engine *actually executed* during
    data profiling; ``query_cache_hits`` counts profiling queries answered by
    the catalog's canonical-query result cache (both sourced from
    ``Catalog.cache_stats()`` deltas).  ``profile_cache_hits`` counts trees
    whose row counts were reused from the per-tree profile cache without
    touching the catalog at all.  ``tree_evals_reused`` / ``tree_evals_computed``
    account per-tree incremental reuse across candidate evaluations,
    observed from the per-tree profile cache rather than inferred from
    action deltas.
    """

    evaluations: int = 0
    cache_hits: int = 0
    states_expanded: int = 0
    elapsed_seconds: float = 0.0
    queries_executed: int = 0
    query_cache_hits: int = 0
    profile_cache_hits: int = 0
    tree_evals_reused: int = 0
    tree_evals_computed: int = 0


@dataclass
class SearchResult:
    """The outcome of a search run."""

    interface: Interface
    cost: CostBreakdown
    forest: DifftreeForest
    stats: SearchStats
    strategy: str = ""
    action_trace: list[str] = field(default_factory=list)

    @property
    def total_cost(self) -> float:
        return self.cost.total


class SearchSpace:
    """Action enumeration and cached evaluation over Difftree forests."""

    def __init__(
        self,
        queries: Sequence[str],
        table_schemas: dict[str, TableSchema],
        mapping_config: MappingConfig | None = None,
        cost_model: CostModel | None = None,
        initial_strategy: str = "per_query",
        catalog=None,
        profile_executor=None,
    ) -> None:
        if not queries:
            raise SearchError("Cannot search over an empty query log")
        self.table_schemas = table_schemas
        #: Optional live catalog (or a pinned
        #: :class:`~repro.engine.catalog.CatalogSnapshot`, which the serving
        #: layer passes so one generation run sees one consistent data
        #: version).  When present, every candidate evaluation also executes
        #: each tree's default instantiation through the catalog's
        #: canonical-query cache — sibling candidates share most trees, so
        #: the repeated queries are cache hits and the search gets real data
        #: profiles (row counts) almost for free.
        self.catalog = catalog
        #: Optional ``concurrent.futures`` executor.  When set, the per-tree
        #: default-query executions a candidate evaluation actually misses on
        #: (the signature-cache decomposition already de-duplicates the rest)
        #: are fanned out across its workers.  Results are deterministic —
        #: row counts do not depend on completion order — but the executor
        #: must not be the pool the evaluation itself runs on (a saturated
        #: pool waiting on itself deadlocks); the serving layer dedicates a
        #: separate profile pool.
        self.profile_executor = profile_executor
        self.mapping_config = mapping_config or MappingConfig()
        self.cost_model = cost_model or CostModel()
        self.initial_state = build_forest(queries, strategy=initial_strategy)
        self._cache: dict[tuple, Evaluation] = {}
        #: Per-tree mapping caches (profiles, chart templates, widget pieces),
        #: keyed by interned tree signature — see MappingCaches.
        self.mapping_caches = MappingCaches()
        #: Per-tree default-instantiation row counts, keyed by
        #: (tree signature, catalog data version) so catalog mutations
        #: invalidate entries implicitly.
        self._rows_cache = LruDict(ROWS_CACHE_CAPACITY)
        #: Applicable transformations per tree, keyed by tree signature and
        #: LRU-bounded (the transformations close over choice ids only, so
        #: they are reusable across equal-signature trees).
        self._transformation_cache = LruDict(TRANSFORMATION_CACHE_CAPACITY)
        self._pair_similarity: dict[tuple[int, int], float] = {}
        self.stats = SearchStats()
        self.min_merge_similarity = 0.3
        self._precompute_similarities()

    def _precompute_similarities(self) -> None:
        queries = self.initial_state.queries
        self._pair_shares_source: dict[tuple[int, int], bool] = {}
        for i in range(len(queries)):
            for j in range(i + 1, len(queries)):
                self._pair_similarity[(i, j)] = structural_similarity(queries[i], queries[j])
                self._pair_shares_source[(i, j)] = queries_share_source(queries[i], queries[j])

    def _members_similar(self, members_a: list[int], members_b: list[int]) -> bool:
        """True when some query pair across the two trees is similar enough to merge."""
        best = 0.0
        for i in members_a:
            for j in members_b:
                key = (min(i, j), max(i, j))
                best = max(best, self._pair_similarity.get(key, 0.0))
        return best >= self.min_merge_similarity

    # ------------------------------------------------------------------ #
    # Actions
    # ------------------------------------------------------------------ #

    def actions(self, forest: DifftreeForest) -> list[Action]:
        """All actions applicable in the given state."""
        actions: list[Action] = []
        for first in range(forest.tree_count):
            for second in range(first + 1, forest.tree_count):
                first_members = forest.members[first]
                second_members = forest.members[second]
                key = (min(first_members[0], second_members[0]), max(first_members[0], second_members[0]))
                if not self._pair_shares_source.get(key, True):
                    continue
                if not self._members_similar(first_members, second_members):
                    continue
                actions.append(
                    Action(
                        kind="merge",
                        description=f"merge(t{first}, t{second})",
                        apply=lambda f, i=first, j=second: f.merge_trees(i, j),
                        # The merged tree lands at min(i, j) in the result.
                        touched=(min(first, second),),
                    )
                )
        for tree_index, tree in enumerate(forest.trees):
            for transformation in self._transformations_for(tree):
                actions.append(
                    Action(
                        kind="transform",
                        description=f"t{tree_index}:{transformation.describe()}",
                        apply=lambda f, idx=tree_index, tr=transformation: f.replace_tree(
                            idx, tr(f.trees[idx])
                        ),
                        touched=(tree_index,),
                    )
                )
        return actions

    def apply(self, forest: DifftreeForest, action: Action) -> DifftreeForest:
        return action.apply(forest)

    def _transformations_for(self, tree):
        """Applicable transformations of one tree, cached by tree signature.

        Transformation instances close over choice ids (not tree objects), so
        equal-signature trees — which have equal choice ids at equal positions
        — share one entry.  The cache is LRU-bounded: it can no longer hold
        every tree a long search ever saw alive.
        """
        key = tree_signature(tree)
        cached = self._transformation_cache.get(key)
        if cached is not None:
            return cached
        transformations = applicable_transformations(tree)
        self._transformation_cache.put(key, transformations)
        return transformations

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def evaluate(
        self,
        forest: DifftreeForest,
        changed: tuple[int, ...] | None = None,
        use_cache: bool = True,
    ) -> Evaluation:
        """Map the forest to an interface and cost it (memoized).

        ``changed`` is the action delta that produced this forest (see
        :attr:`Action.touched`); trees outside the delta are structure-shared
        with an already-evaluated neighbour, which is what makes the per-tree
        caches hit.  The delta is the caller's contract, not a directive —
        reuse is *observed* from the profile cache, so the
        ``tree_evals_reused`` / ``tree_evals_computed`` counters reflect what
        actually happened (a changed chart context, say, forces widget-piece
        recomputation regardless of the delta).

        ``use_cache=False`` bypasses the forest-level memo (but not the
        per-tree caches) — the beam strategy and the differential test
        harness use it where the memo's historical fingerprint granularity
        would get in the way.
        """
        key = forest.signature()
        if use_cache and key in self._cache:
            self.stats.cache_hits += 1
            return self._cache[key]
        started = time.perf_counter()
        profile_stats = self.mapping_caches.profiles
        hits_before = profile_stats.hits
        misses_before = profile_stats.misses
        interface = map_forest_to_interface(
            forest,
            self.table_schemas,
            self.mapping_config,
            caches=self.mapping_caches,
        )
        cost = self.cost_model.evaluate(interface, forest.queries)
        evaluation = Evaluation(
            interface=interface, cost=cost, data_rows=self._profile_data(forest)
        )
        if use_cache:
            self._cache[key] = evaluation
        self.stats.evaluations += 1
        self.stats.tree_evals_reused += profile_stats.hits - hits_before
        self.stats.tree_evals_computed += profile_stats.misses - misses_before
        self.stats.elapsed_seconds += time.perf_counter() - started
        return evaluation

    def _profile_data(self, forest: DifftreeForest) -> tuple[int, ...] | None:
        """Row counts of each tree's default instantiation, incrementally.

        Per-tree results are cached by (tree signature, catalog data version),
        so a candidate evaluation only executes the trees its action changed —
        and those usually hit the catalog's canonical-query result cache in
        turn.  Execution/hit counts are attributed from the catalog's cache
        statistics so ``SearchStats`` separates real executions from result-
        cache hits.
        """
        if self.catalog is None:
            return None
        from repro.difftree.instantiate import instantiate_and_execute

        version = self.catalog.data_version()
        cache_stats = self.catalog.query_cache.stats
        row_counts: list[int | None] = [None] * forest.tree_count
        missed: list[tuple[int, object, tuple]] = []
        for index, tree in enumerate(forest.trees):
            # Default instantiations never depend on choice ids, so row
            # counts are shared across replayed merges too.
            key = (structural_signature(tree), version)
            cached = self._rows_cache.get(key)
            if cached is not None:
                self.stats.profile_cache_hits += 1
                row_counts[index] = cached
            else:
                missed.append((index, tree, key))
        if missed:
            hits_before = cache_stats.hits
            executed_before = cache_stats.misses + cache_stats.bypassed

            def run(tree) -> int:
                try:
                    return instantiate_and_execute(tree, self.catalog).row_count
                except Exception:  # noqa: BLE001 - odd instantiations must not kill search
                    return -1

            pool = self.profile_executor
            if pool is not None and len(missed) > 1:
                # Fan the cache-missing trees out across the pool.  Duplicate
                # signatures within one batch execute redundantly (the serial
                # path would hit the rows cache on the second), but the
                # engine's result cache makes the repeat nearly free and the
                # counts are identical either way.
                if hasattr(pool, "submit_profile"):
                    counts = self._profile_via_tier(pool, [tree for _, tree, _ in missed])
                else:
                    counts = list(pool.map(run, [tree for _, tree, _ in missed]))
            else:
                counts = [run(tree) for _, tree, _ in missed]
            for (index, _tree, key), count in zip(missed, counts):
                self._rows_cache.put(key, count)
                row_counts[index] = count
            # Bulk attribution: under a shared serving catalog these counters
            # can include concurrent sessions' traffic — they are telemetry,
            # not part of the evaluation result.
            self.stats.query_cache_hits += cache_stats.hits - hits_before
            self.stats.queries_executed += (
                cache_stats.misses + cache_stats.bypassed - executed_before
            )
        return tuple(row_counts)

    def _profile_via_tier(self, tier, trees) -> list[int]:
        """Profile trees through a process execution tier (duck-typed).

        The picklable task descriptor is canonical SQL plus the snapshot the
        tier keys by fingerprint: the frontend does the cheap AST work
        (default-binding instantiation, SQL rendering) and ships only text;
        the CPU-heavy execution runs GIL-free in a worker.  A tree whose
        default binding cannot instantiate to executable SQL profiles as -1
        without crossing the boundary — the same failure value the serial
        path produces, so cached row counts are tier-independent.
        """
        from repro.difftree.instantiate import instantiate
        from repro.sql.ast_nodes import Select, SetOperation
        from repro.sql.printer import to_sql

        counts = [-1] * len(trees)
        sqls: list[str] = []
        slots: list[int] = []
        for position, tree in enumerate(trees):
            try:
                query = instantiate(tree)
                if not isinstance(query, (Select, SetOperation)):
                    continue
                sqls.append(to_sql(query))
            except Exception:  # noqa: BLE001 - odd instantiations must not kill search
                continue
            slots.append(position)
        if sqls:
            profiled = tier.submit_profile(self.catalog, sqls).result()
            for position, count in zip(slots, profiled):
                counts[position] = count
        return counts

    def cache_info(self) -> dict:
        """Hit/size statistics of every per-tree cache (for benches/debugging)."""
        info = self.mapping_caches.stats()
        info["rows"] = self._rows_cache.stats()
        info["transformations"] = self._transformation_cache.stats()
        info["evaluations"] = {"entries": len(self._cache)}
        return info

    def result(
        self, forest: DifftreeForest, strategy: str, action_trace: list[str] | None = None
    ) -> SearchResult:
        evaluation = self.evaluate(forest)
        return SearchResult(
            interface=evaluation.interface,
            cost=evaluation.cost,
            forest=forest,
            stats=self.stats,
            strategy=strategy,
            action_trace=action_trace or [],
        )
