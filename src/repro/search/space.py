"""The search space over Difftree forests.

A search *state* is a :class:`~repro.difftree.builder.DifftreeForest`.  The
actions available in a state are

* ``merge(i, j)`` — merge two trees of the forest into one (reduces chart
  count, introduces choice nodes),
* every applicable tree transformation from
  :mod:`repro.difftree.transformations` (factoring shared structure above an
  ANY node, flipping an OPT default).

Evaluating a state maps the forest to a candidate interface (the mapping step)
and scores it with the cost model; evaluations are memoized by forest
signature, so the different search strategies can be compared on the number of
*distinct* candidates they explore.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cost.model import CostBreakdown, CostModel
from repro.difftree.builder import DifftreeForest, build_forest
from repro.difftree.canonical import queries_share_source, structural_similarity
from repro.difftree.transformations import applicable_transformations
from repro.errors import SearchError
from repro.interface.interface import Interface
from repro.mapping.schema_matching import MappingConfig, map_forest_to_interface
from repro.sql.schema import TableSchema


@dataclass(frozen=True)
class Action:
    """One applicable state transition."""

    kind: str  # "merge" | "transform"
    description: str
    apply: Callable[[DifftreeForest], DifftreeForest] = field(compare=False)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.description


@dataclass
class Evaluation:
    """The mapped interface and its cost for one state.

    ``data_rows`` holds, per Difftree, the row count of the tree's default
    instantiation executed against the catalog (None when the space was built
    without a catalog, or -1 when that tree's query failed to execute).
    """

    interface: Interface
    cost: CostBreakdown
    data_rows: tuple[int, ...] | None = None

    @property
    def total_cost(self) -> float:
        return self.cost.total


@dataclass
class SearchStats:
    """Bookkeeping shared by all search strategies."""

    evaluations: int = 0
    cache_hits: int = 0
    states_expanded: int = 0
    elapsed_seconds: float = 0.0
    queries_executed: int = 0


@dataclass
class SearchResult:
    """The outcome of a search run."""

    interface: Interface
    cost: CostBreakdown
    forest: DifftreeForest
    stats: SearchStats
    strategy: str = ""
    action_trace: list[str] = field(default_factory=list)

    @property
    def total_cost(self) -> float:
        return self.cost.total


class SearchSpace:
    """Action enumeration and cached evaluation over Difftree forests."""

    def __init__(
        self,
        queries: Sequence[str],
        table_schemas: dict[str, TableSchema],
        mapping_config: MappingConfig | None = None,
        cost_model: CostModel | None = None,
        initial_strategy: str = "per_query",
        catalog=None,
    ) -> None:
        if not queries:
            raise SearchError("Cannot search over an empty query log")
        self.table_schemas = table_schemas
        #: Optional live catalog.  When present, every candidate evaluation
        #: also executes each tree's default instantiation through the
        #: catalog's canonical-query cache — sibling candidates share most
        #: trees, so the repeated queries are cache hits and the search gets
        #: real data profiles (row counts) almost for free.
        self.catalog = catalog
        self.mapping_config = mapping_config or MappingConfig()
        self.cost_model = cost_model or CostModel()
        self.initial_state = build_forest(queries, strategy=initial_strategy)
        self._cache: dict[tuple, Evaluation] = {}
        self._profile_cache: dict = {}
        self._transformation_cache: dict = {}
        self._pair_similarity: dict[tuple[int, int], float] = {}
        self.stats = SearchStats()
        self.min_merge_similarity = 0.3
        self._precompute_similarities()

    def _precompute_similarities(self) -> None:
        queries = self.initial_state.queries
        self._pair_shares_source: dict[tuple[int, int], bool] = {}
        for i in range(len(queries)):
            for j in range(i + 1, len(queries)):
                self._pair_similarity[(i, j)] = structural_similarity(queries[i], queries[j])
                self._pair_shares_source[(i, j)] = queries_share_source(queries[i], queries[j])

    def _members_similar(self, members_a: list[int], members_b: list[int]) -> bool:
        """True when some query pair across the two trees is similar enough to merge."""
        best = 0.0
        for i in members_a:
            for j in members_b:
                key = (min(i, j), max(i, j))
                best = max(best, self._pair_similarity.get(key, 0.0))
        return best >= self.min_merge_similarity

    # ------------------------------------------------------------------ #
    # Actions
    # ------------------------------------------------------------------ #

    def actions(self, forest: DifftreeForest) -> list[Action]:
        """All actions applicable in the given state."""
        actions: list[Action] = []
        for first in range(forest.tree_count):
            for second in range(first + 1, forest.tree_count):
                first_members = forest.members[first]
                second_members = forest.members[second]
                key = (min(first_members[0], second_members[0]), max(first_members[0], second_members[0]))
                if not self._pair_shares_source.get(key, True):
                    continue
                if not self._members_similar(first_members, second_members):
                    continue
                actions.append(
                    Action(
                        kind="merge",
                        description=f"merge(t{first}, t{second})",
                        apply=lambda f, i=first, j=second: f.merge_trees(i, j),
                    )
                )
        for tree_index, tree in enumerate(forest.trees):
            for transformation in self._transformations_for(tree):
                actions.append(
                    Action(
                        kind="transform",
                        description=f"t{tree_index}:{transformation.describe()}",
                        apply=lambda f, idx=tree_index, tr=transformation: f.replace_tree(
                            idx, tr(f.trees[idx])
                        ),
                    )
                )
        return actions

    def apply(self, forest: DifftreeForest, action: Action) -> DifftreeForest:
        return action.apply(forest)

    def _transformations_for(self, tree):
        """Applicable transformations of one tree, cached by tree identity."""
        key = id(tree)
        cached = self._transformation_cache.get(key)
        if cached is not None and cached[0] is tree:
            return cached[1]
        transformations = applicable_transformations(tree)
        self._transformation_cache[key] = (tree, transformations)
        return transformations

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def evaluate(self, forest: DifftreeForest) -> Evaluation:
        """Map the forest to an interface and cost it (memoized)."""
        key = forest.signature()
        if key in self._cache:
            self.stats.cache_hits += 1
            return self._cache[key]
        started = time.perf_counter()
        interface = map_forest_to_interface(
            forest, self.table_schemas, self.mapping_config, profile_cache=self._profile_cache
        )
        cost = self.cost_model.evaluate(interface, forest.queries)
        evaluation = Evaluation(
            interface=interface, cost=cost, data_rows=self._profile_data(forest)
        )
        self._cache[key] = evaluation
        self.stats.evaluations += 1
        self.stats.elapsed_seconds += time.perf_counter() - started
        return evaluation

    def _profile_data(self, forest: DifftreeForest) -> tuple[int, ...] | None:
        """Execute each tree's default instantiation through the query cache."""
        if self.catalog is None:
            return None
        from repro.difftree.instantiate import instantiate_and_execute

        row_counts: list[int] = []
        for tree in forest.trees:
            try:
                result = instantiate_and_execute(tree, self.catalog)
                row_counts.append(result.row_count)
            except Exception:  # noqa: BLE001 - odd instantiations must not kill search
                row_counts.append(-1)
            self.stats.queries_executed += 1
        return tuple(row_counts)

    def result(
        self, forest: DifftreeForest, strategy: str, action_trace: list[str] | None = None
    ) -> SearchResult:
        evaluation = self.evaluate(forest)
        return SearchResult(
            interface=evaluation.interface,
            cost=evaluation.cost,
            forest=forest,
            stats=self.stats,
            strategy=strategy,
            action_trace=action_trace or [],
        )
