"""Synthetic Sloan Digital Sky Survey (SDSS) photometric object catalog.

Example 1 of the paper uses two queries from the SDSS query log that retrieve
astronomical objects inside a celestial region defined by right-ascension
(``ra``) and declination (``dec``) ranges.  The real catalog is hundreds of
millions of objects; this generator produces a deterministic sample with the
same columns the example queries touch (object id, ra, dec, magnitudes in the
u/g/r/i/z bands, object class and redshift) and a handful of over-dense
"cluster" regions so that panning/zooming over ra/dec shows visible structure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.engine.table import Table

#: (ra center, dec center, object count weight) of synthetic galaxy clusters.
CLUSTER_CENTERS: tuple[tuple[float, float, float], ...] = (
    (150.0, 2.0, 0.25),
    (185.0, 15.0, 0.2),
    (210.0, 25.0, 0.15),
    (120.0, 40.0, 0.1),
)

OBJECT_CLASSES: tuple[str, ...] = ("GALAXY", "STAR", "QSO")


@dataclass(frozen=True)
class SdssConfig:
    """Generation parameters for the synthetic SDSS sample."""

    object_count: int = 4000
    seed: int = 42
    ra_min: float = 100.0
    ra_max: float = 250.0
    dec_min: float = -5.0
    dec_max: float = 60.0


def generate_photo_obj(config: SdssConfig | None = None) -> Table:
    """Generate the ``photoobj`` table of celestial objects."""
    config = config or SdssConfig()
    rng = random.Random(config.seed)
    names = ["objid", "ra", "dec", "u", "g", "r", "i", "z", "class", "redshift"]
    columns: dict[str, list[object]] = {name: [] for name in names}
    cluster_weight = sum(weight for _ra, _dec, weight in CLUSTER_CENTERS)
    for object_id in range(1, config.object_count + 1):
        draw = rng.random()
        if draw < cluster_weight:
            # Pick a cluster proportionally to its weight and scatter around it.
            threshold = 0.0
            center = CLUSTER_CENTERS[0]
            for candidate in CLUSTER_CENTERS:
                threshold += candidate[2]
                if draw < threshold:
                    center = candidate
                    break
            ra = rng.gauss(center[0], 3.0)
            dec = rng.gauss(center[1], 2.0)
            object_class = "GALAXY" if rng.random() < 0.8 else "QSO"
        else:
            ra = rng.uniform(config.ra_min, config.ra_max)
            dec = rng.uniform(config.dec_min, config.dec_max)
            object_class = OBJECT_CLASSES[rng.randrange(len(OBJECT_CLASSES))]
        ra = min(max(ra, config.ra_min), config.ra_max)
        dec = min(max(dec, config.dec_min), config.dec_max)
        base_magnitude = rng.uniform(14.0, 22.0)
        redshift = abs(rng.gauss(0.15, 0.1)) if object_class != "STAR" else 0.0
        columns["objid"].append(object_id)
        columns["ra"].append(round(ra, 4))
        columns["dec"].append(round(dec, 4))
        columns["u"].append(round(base_magnitude + rng.gauss(0.4, 0.1), 3))
        columns["g"].append(round(base_magnitude + rng.gauss(0.1, 0.1), 3))
        columns["r"].append(round(base_magnitude, 3))
        columns["i"].append(round(base_magnitude - rng.gauss(0.1, 0.1), 3))
        columns["z"].append(round(base_magnitude - rng.gauss(0.2, 0.1), 3))
        columns["class"].append(object_class)
        columns["redshift"].append(round(redshift, 4))
    return Table.from_columns("photoobj", columns, adopt=True)


def sdss_query_log() -> list[str]:
    """The two region queries of Example 1 (Figure 1).

    Both retrieve objects within an ra/dec bounding box; the second pans and
    zooms the region, which is exactly the structural difference PI2 maps to a
    pan/zoom interaction on a scatter plot.
    """
    q1 = (
        "SELECT ra, dec, r FROM photoobj "
        "WHERE ra BETWEEN 140.0 AND 160.0 AND dec BETWEEN -2.0 AND 6.0"
    )
    q2 = (
        "SELECT ra, dec, r FROM photoobj "
        "WHERE ra BETWEEN 175.0 AND 195.0 AND dec BETWEEN 10.0 AND 20.0"
    )
    return [q1, q2]


def sdss_extended_query_log() -> list[str]:
    """A longer SDSS session adding a class breakdown and a magnitude cut."""
    q3 = (
        "SELECT class, count(*) AS n FROM photoobj "
        "WHERE ra BETWEEN 140.0 AND 160.0 AND dec BETWEEN -2.0 AND 6.0 "
        "GROUP BY class"
    )
    q4 = (
        "SELECT ra, dec, r FROM photoobj "
        "WHERE ra BETWEEN 140.0 AND 160.0 AND dec BETWEEN -2.0 AND 6.0 AND r < 20.0"
    )
    return sdss_query_log() + [q3, q4]
