"""Deterministic synthetic datasets for the three demo scenarios."""

from repro.datasets.covid import (
    CovidConfig,
    covid_query_log,
    covid_region_variant_queries,
    generate_covid_cases,
    generate_state_regions,
)
from repro.datasets.loader import (
    demo_scenarios,
    load_covid_catalog,
    load_sdss_catalog,
    load_sp500_catalog,
)
from repro.datasets.sdss import (
    SdssConfig,
    generate_photo_obj,
    sdss_extended_query_log,
    sdss_query_log,
)
from repro.datasets.sp500 import (
    Sp500Config,
    generate_prices,
    generate_sectors,
    sp500_query_log,
    sp500_window_query_log,
)

__all__ = [
    "CovidConfig",
    "covid_query_log",
    "covid_region_variant_queries",
    "generate_covid_cases",
    "generate_state_regions",
    "SdssConfig",
    "generate_photo_obj",
    "sdss_query_log",
    "sdss_extended_query_log",
    "Sp500Config",
    "generate_prices",
    "generate_sectors",
    "sp500_query_log",
    "sp500_window_query_log",
    "demo_scenarios",
    "load_covid_catalog",
    "load_sdss_catalog",
    "load_sp500_catalog",
]
