"""Synthetic S&P 500 daily price dataset.

The demonstration offers an S&P 500 dataset for participants to explore.  This
generator produces daily open/high/low/close/volume series for a basket of
large-cap tickers using a geometric random walk with per-sector drift, plus a
sector lookup table, so that sector-level aggregation queries have visible
structure.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from datetime import date, timedelta

from repro.engine.table import Table

#: (ticker, sector, initial price, annualized drift, annualized volatility)
TICKER_PROFILES: tuple[tuple[str, str, float, float, float], ...] = (
    ("AAPL", "Technology", 150.0, 0.25, 0.30),
    ("MSFT", "Technology", 280.0, 0.22, 0.28),
    ("NVDA", "Technology", 220.0, 0.40, 0.45),
    ("GOOG", "Communication", 2700.0, 0.18, 0.30),
    ("META", "Communication", 330.0, 0.10, 0.40),
    ("AMZN", "Consumer", 3300.0, 0.12, 0.35),
    ("TSLA", "Consumer", 900.0, 0.35, 0.55),
    ("JPM", "Financials", 160.0, 0.08, 0.25),
    ("GS", "Financials", 390.0, 0.07, 0.28),
    ("XOM", "Energy", 60.0, 0.15, 0.32),
    ("CVX", "Energy", 110.0, 0.13, 0.30),
    ("JNJ", "Healthcare", 165.0, 0.06, 0.18),
    ("PFE", "Healthcare", 45.0, 0.09, 0.24),
    ("UNH", "Healthcare", 450.0, 0.14, 0.22),
)

DEFAULT_START = date(2021, 1, 4)
DEFAULT_TRADING_DAYS = 252


@dataclass(frozen=True)
class Sp500Config:
    """Generation parameters for the synthetic S&P 500 dataset."""

    start: date = DEFAULT_START
    trading_days: int = DEFAULT_TRADING_DAYS
    seed: int = 99


def _trading_dates(start: date, count: int) -> list[date]:
    dates: list[date] = []
    current = start
    while len(dates) < count:
        if current.weekday() < 5:  # Monday .. Friday
            dates.append(current)
        current += timedelta(days=1)
    return dates


def generate_prices(config: Sp500Config | None = None) -> Table:
    """Generate the ``prices(ticker, date, open, high, low, close, volume)`` table."""
    config = config or Sp500Config()
    rng = random.Random(config.seed)
    dates = _trading_dates(config.start, config.trading_days)
    date_strings = [day.isoformat() for day in dates]
    names = ["ticker", "date", "open", "high", "low", "close", "volume"]
    columns: dict[str, list[object]] = {name: [] for name in names}
    daily_factor = 1.0 / 252.0
    for ticker, _sector, initial, drift, volatility in TICKER_PROFILES:
        price = initial
        columns["ticker"].extend([ticker] * len(dates))
        columns["date"].extend(date_strings)
        for _day in dates:
            shock = rng.gauss(0.0, 1.0)
            log_return = (drift - 0.5 * volatility**2) * daily_factor + volatility * math.sqrt(
                daily_factor
            ) * shock
            open_price = price
            close_price = price * math.exp(log_return)
            high = max(open_price, close_price) * (1.0 + abs(rng.gauss(0.0, 0.004)))
            low = min(open_price, close_price) * (1.0 - abs(rng.gauss(0.0, 0.004)))
            columns["open"].append(round(open_price, 2))
            columns["high"].append(round(high, 2))
            columns["low"].append(round(low, 2))
            columns["close"].append(round(close_price, 2))
            columns["volume"].append(int(abs(rng.gauss(3_000_000, 800_000))))
            price = close_price
    return Table.from_columns("prices", columns, adopt=True)


def generate_sectors() -> Table:
    """Generate the ``sectors(ticker, sector)`` lookup table."""
    return Table.from_columns(
        "sectors",
        {
            "ticker": [ticker for ticker, _sector, _initial, _drift, _vol in TICKER_PROFILES],
            "sector": [sector for _ticker, sector, _initial, _drift, _vol in TICKER_PROFILES],
        },
        adopt=True,
    )


def sp500_query_log() -> list[str]:
    """A representative S&P 500 analysis session.

    The queries mirror the COVID walkthrough's shape: an overview time series,
    a zoomed date range, a per-sector breakdown, and a filter variant — which
    lets the same interface-generation machinery be exercised on a second
    domain.
    """
    q1 = (
        "SELECT date, avg(close) AS avg_close FROM prices GROUP BY date ORDER BY date"
    )
    q2 = (
        "SELECT date, avg(close) AS avg_close FROM prices "
        "WHERE date BETWEEN '2021-09-01' AND '2021-12-31' "
        "GROUP BY date ORDER BY date"
    )
    q3 = (
        "SELECT p.date, s.sector, avg(p.close) AS avg_close "
        "FROM prices p JOIN sectors s ON p.ticker = s.ticker "
        "WHERE p.date BETWEEN '2021-09-01' AND '2021-12-31' "
        "GROUP BY p.date, s.sector ORDER BY p.date"
    )
    q4 = (
        "SELECT p.date, s.sector, avg(p.close) AS avg_close "
        "FROM prices p JOIN sectors s ON p.ticker = s.ticker "
        "WHERE p.date BETWEEN '2021-09-01' AND '2021-12-31' AND s.sector = 'Technology' "
        "GROUP BY p.date, s.sector ORDER BY p.date"
    )
    return [q1, q2, q3, q4]


def sp500_window_query_log() -> list[str]:
    """An analytic S&P 500 session built on window functions.

    The templates cover the three analytic families window functions unlock
    for interface generation — top-N per group (daily leaders by close),
    running values (smoothed per-ticker averages over a trailing frame), and
    period-over-period deltas (``lag`` against the prior trading day) — as
    variants over the shared ``prices`` scan so the Difftree builder merges
    them into one tree with window-expression choice nodes.
    """
    q1 = (
        "SELECT date, ticker, close, "
        "row_number() OVER (PARTITION BY date ORDER BY close DESC) AS pos "
        "FROM prices"
    )
    q2 = (
        "SELECT date, ticker, close, "
        "rank() OVER (PARTITION BY date ORDER BY volume DESC) AS pos "
        "FROM prices"
    )
    q3 = (
        "SELECT date, ticker, close, "
        "avg(close) OVER (PARTITION BY ticker ORDER BY date "
        "ROWS BETWEEN 6 PRECEDING AND CURRENT ROW) AS sma7 "
        "FROM prices"
    )
    q4 = (
        "SELECT date, ticker, close, "
        "close - lag(close, 1, close) OVER (PARTITION BY ticker ORDER BY date) AS delta "
        "FROM prices"
    )
    return [q1, q2, q3, q4]
