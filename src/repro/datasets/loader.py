"""Convenience loaders that register the synthetic datasets in a catalog."""

from __future__ import annotations

from repro.datasets.covid import (
    CovidConfig,
    covid_query_log,
    generate_covid_cases,
    generate_state_regions,
)
from repro.datasets.sdss import SdssConfig, generate_photo_obj, sdss_query_log
from repro.datasets.sp500 import Sp500Config, generate_prices, generate_sectors, sp500_query_log
from repro.engine.catalog import Catalog


def load_covid_catalog(config: CovidConfig | None = None) -> Catalog:
    """Catalog with ``covid_cases`` and ``state_regions`` registered."""
    catalog = Catalog()
    catalog.register(generate_covid_cases(config))
    catalog.register(generate_state_regions())
    return catalog


def load_sdss_catalog(config: SdssConfig | None = None) -> Catalog:
    """Catalog with the ``photoobj`` object sample registered."""
    catalog = Catalog()
    catalog.register(generate_photo_obj(config))
    return catalog


def load_sp500_catalog(config: Sp500Config | None = None) -> Catalog:
    """Catalog with ``prices`` and ``sectors`` registered."""
    catalog = Catalog()
    catalog.register(generate_prices(config))
    catalog.register(generate_sectors())
    return catalog


def demo_scenarios() -> dict[str, tuple[Catalog, list[str]]]:
    """All three demo scenarios: name -> (catalog, query log).

    These are the datasets the demonstration prepares for participants
    (COVID-19, SDSS and S&P 500).
    """
    return {
        "covid": (load_covid_catalog(), covid_query_log()),
        "sdss": (load_sdss_catalog(), sdss_query_log()),
        "sp500": (load_sp500_catalog(), sp500_query_log()),
    }
