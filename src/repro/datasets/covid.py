"""Synthetic COVID-19 daily case-count dataset.

The demo's case study (Section 3.2) analyzes a table of daily case counts per
US state in late 2021, with a companion region lookup used by the "focused
region investigation" query Q4.  The real dataset is not redistributable, so
this module generates a deterministic synthetic equivalent with the same
schema and the distributional features the walkthrough relies on:

* a long national time series with a strong upward trend in December 2021
  (the "winter wave" Jane investigates),
* per-state baselines that differ by an order of magnitude,
* Florida (South) and New York (Northeast) exhibiting the fastest growth, so
  the case study's final recommendation falls out of the data.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from datetime import date, timedelta

from repro.engine.table import Table

#: (state, region, baseline daily cases, December growth multiplier)
STATE_PROFILES: tuple[tuple[str, str, float, float], ...] = (
    ("NY", "Northeast", 4000.0, 3.0),
    ("MA", "Northeast", 1500.0, 2.0),
    ("PA", "Northeast", 2000.0, 1.8),
    ("NJ", "Northeast", 1800.0, 2.2),
    ("FL", "South", 3500.0, 3.5),
    ("TX", "South", 3800.0, 1.6),
    ("GA", "South", 1700.0, 1.9),
    ("NC", "South", 1400.0, 1.5),
    ("IL", "Midwest", 2500.0, 1.7),
    ("OH", "Midwest", 2200.0, 1.6),
    ("MI", "Midwest", 2100.0, 1.8),
    ("CA", "West", 5000.0, 1.5),
    ("WA", "West", 1200.0, 1.4),
    ("AZ", "West", 1300.0, 1.6),
)

DEFAULT_START = date(2021, 9, 1)
DEFAULT_END = date(2021, 12, 28)


@dataclass(frozen=True)
class CovidConfig:
    """Generation parameters for the synthetic COVID dataset."""

    start: date = DEFAULT_START
    end: date = DEFAULT_END
    seed: int = 7
    noise: float = 0.08

    def day_count(self) -> int:
        return (self.end - self.start).days + 1


def _daily_cases(
    baseline: float,
    growth: float,
    day_index: int,
    total_days: int,
    rng: random.Random,
    noise: float,
) -> int:
    """Cases for one state-day: weekly seasonality + December surge + noise."""
    weekly = 1.0 + 0.15 * math.sin(2 * math.pi * day_index / 7.0)
    progress = day_index / max(total_days - 1, 1)
    # The surge ramps up over the last third of the window.
    surge_share = max(0.0, (progress - 0.66) / 0.34)
    surge = 1.0 + (growth - 1.0) * surge_share**2
    jitter = 1.0 + rng.gauss(0.0, noise)
    return max(0, int(round(baseline * weekly * surge * jitter)))


def generate_covid_cases(config: CovidConfig | None = None) -> Table:
    """Generate the ``covid_cases(state, date, cases)`` table (column-major)."""
    config = config or CovidConfig()
    rng = random.Random(config.seed)
    total_days = config.day_count()
    dates = [(config.start + timedelta(days=index)).isoformat() for index in range(total_days)]
    state_column: list[object] = []
    date_column: list[object] = []
    cases_column: list[object] = []
    for state, _region, baseline, growth in STATE_PROFILES:
        state_column.extend([state] * total_days)
        date_column.extend(dates)
        cases_column.extend(
            _daily_cases(baseline, growth, day_index, total_days, rng, config.noise)
            for day_index in range(total_days)
        )
    return Table.from_columns(
        "covid_cases",
        {"state": state_column, "date": date_column, "cases": cases_column},
        adopt=True,
    )


def generate_state_regions() -> Table:
    """Generate the ``state_regions(state, region)`` lookup table."""
    return Table.from_columns(
        "state_regions",
        {
            "state": [state for state, _region, _baseline, _growth in STATE_PROFILES],
            "region": [region for _state, region, _baseline, _growth in STATE_PROFILES],
        },
        adopt=True,
    )


def covid_query_log() -> list[str]:
    """The analysis log of the Section 3.2 walkthrough.

    Q1 — overall national timeline; Q2a/Q2b — the two preceding half-month
    detail ranges the analyst looks back over (Step 1 of the walkthrough);
    Q3 — per-state trends within the detail range (Step 2); Q4 — region focus
    with an above-regional-average filter expressed via joins and a correlated
    subquery (Step 3).
    """
    q1 = (
        "SELECT date, sum(cases) AS total_cases "
        "FROM covid_cases GROUP BY date ORDER BY date"
    )
    q2a = (
        "SELECT date, sum(cases) AS total_cases "
        "FROM covid_cases "
        "WHERE date BETWEEN '2021-12-01' AND '2021-12-14' "
        "GROUP BY date ORDER BY date"
    )
    q2b = (
        "SELECT date, sum(cases) AS total_cases "
        "FROM covid_cases "
        "WHERE date BETWEEN '2021-12-15' AND '2021-12-28' "
        "GROUP BY date ORDER BY date"
    )
    q3 = (
        "SELECT date, state, sum(cases) AS cases "
        "FROM covid_cases "
        "WHERE date BETWEEN '2021-12-01' AND '2021-12-28' "
        "GROUP BY date, state ORDER BY date"
    )
    q4 = (
        "SELECT c.date, c.state, sum(c.cases) AS cases "
        "FROM covid_cases c JOIN state_regions r ON c.state = r.state "
        "WHERE c.date BETWEEN '2021-12-01' AND '2021-12-28' "
        "AND r.region = 'South' "
        "AND c.state IN ("
        "SELECT c2.state FROM covid_cases c2 JOIN state_regions r2 ON c2.state = r2.state "
        "WHERE r2.region = 'South' "
        "GROUP BY c2.state "
        "HAVING avg(c2.cases) > ("
        "SELECT avg(c3.cases) FROM covid_cases c3 JOIN state_regions r3 ON c3.state = r3.state "
        "WHERE r3.region = 'South')"
        ") "
        "GROUP BY c.date, c.state ORDER BY c.date"
    )
    return [q1, q2a, q2b, q3, q4]


def covid_region_variant_queries() -> list[str]:
    """Q4 variants for the South and Northeast regions (the button pair in V3)."""
    south = covid_query_log()[4]
    northeast = south.replace("'South'", "'Northeast'")
    return [south, northeast]
