"""Result cache keyed by canonical SQL form plus catalog data version.

The PI2 loop re-executes near-identical query variants constantly: every
widget event re-instantiates a Difftree binding, and sibling interface
candidates explored by the search share most of their concrete queries.  The
cache makes those repeats free:

* queries are keyed by their *canonical* SQL (redundant table qualifiers
  stripped, AND chains normalized — see ``difftree.canonical``), so
  superficially different variants share one entry;
* the key includes the catalog's data version, so any table registration,
  drop, replacement or row append invalidates stale entries implicitly;
* entries are kept LRU-bounded, and results are defensively copied on both
  store and hit so callers can never corrupt a cached row list.

Queries containing named parameters are never cached (their results depend
on values outside the SQL text).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from repro.engine.table import QueryResult
from repro.sql.ast_nodes import Parameter, SqlNode
from repro.sql.printer import to_sql


@dataclass
class QueryCacheStats:
    """Counters exposed through ``Catalog.cache_stats``.

    ``ivm_folds`` / ``ivm_fallbacks`` come from the incremental-maintenance
    plane (``engine/ivm.py``): a *fold* answered a probe by applying appended
    deltas to a maintained entry (the probe itself still counts as a miss —
    the entry at the new version did not exist), a *fallback* is a fold
    attempt that had to give up (version log truncated, table replaced, torn
    chain) and recompute cold.  ``effective_hit_rate`` therefore counts folds
    as hits: ``(hits + ivm_folds) / (hits + misses)``.

    ``cleared`` counts :meth:`QueryCache.clear` calls and survives them;
    every other counter resets on clear so ``hit_rate`` always describes the
    cache's current population.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    bypassed: int = 0
    ivm_folds: int = 0
    ivm_fallbacks: int = 0
    cleared: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def effective_hit_rate(self) -> float:
        """Hit rate counting delta folds as hits (what serving sessions see)."""
        total = self.hits + self.misses
        return (self.hits + self.ivm_folds) / total if total else 0.0

    def reset_counters(self) -> None:
        """Zero every per-population counter (``cleared`` is cumulative)."""
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.bypassed = 0
        self.ivm_folds = 0
        self.ivm_fallbacks = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "bypassed": self.bypassed,
            "ivm_folds": self.ivm_folds,
            "ivm_fallbacks": self.ivm_fallbacks,
            "cleared": self.cleared,
            "hit_rate": round(self.hit_rate, 4),
            "effective_hit_rate": round(self.effective_hit_rate, 4),
        }


def cache_key(node: SqlNode, data_version: Hashable) -> str | None:
    """The cache key for a query AST, or None when the query is uncacheable.

    The key is the canonical SQL text (AND chains normalized; redundant table
    qualifiers stripped when provably safe) suffixed with the catalog data
    version, so equivalent query variants share an entry and any catalog
    mutation implicitly invalidates it.
    """
    return cache_identity(node, data_version)[0]


def cache_identity(
    node: SqlNode, data_version: Hashable
) -> tuple[str | None, str | None]:
    """``(cache key, canonical SQL)`` for a query AST — ``(None, None)`` when
    uncacheable.

    The canonical text is the version-independent half of the key; the
    incremental-maintenance plane addresses delta folders by it (a folder
    outlives version bumps, unlike a cache entry).
    """
    for descendant in node.walk():
        if isinstance(descendant, Parameter):
            return None, None
    canonical = canonical_text(node)
    return versioned_key(canonical, data_version), canonical


def versioned_key(canonical: str, data_version: Hashable) -> str:
    """The cache key for a canonical text at one data version.

    Exposed so the incremental-maintenance fold path can store results for
    the *intermediate* versions a multi-append chain walk passes through
    (sessions pinned at those versions then hit instead of recomputing).
    """
    return f"{canonical}@@{data_version!r}"


def canonical_text(node: SqlNode) -> str:
    """The canonical SQL text used as the version-independent cache identity."""
    try:
        return to_sql(_canonical_for_cache(node))
    except Exception:  # noqa: BLE001 - canonicalization is best effort
        return to_sql(node)


def _canonical_for_cache(node: SqlNode) -> SqlNode:
    """Canonicalization that never merges semantically different queries.

    Qualifier stripping is only equivalence-preserving when the query has a
    single name-resolution scope: inside a nested SELECT, a stripped outer
    reference (``c.k`` → ``k``) could resolve to the *inner* scope instead.
    Multi-scope queries therefore only get AND-chain normalization, which is
    scope-agnostic.
    """
    from repro.difftree.canonical import canonicalize, normalize_and_chains
    from repro.sql.ast_nodes import Select

    if isinstance(node, Select) and not any(
        isinstance(descendant, Select) and descendant is not node
        for descendant in node.walk()
    ):
        return canonicalize(node)
    return normalize_and_chains(node)


class QueryCache:
    """A bounded, thread-safe LRU cache of materialized query results.

    One internal lock serializes every probe/store/stat mutation so the cache
    can be shared by the serving layer's worker pool: concurrent readers at
    different catalog snapshots hit disjoint keys (the key embeds the data
    version), and the lock only guards the OrderedDict bookkeeping — the
    defensive result copies happen outside it.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("QueryCache capacity must be positive")
        self.capacity = capacity
        self.stats = QueryCacheStats()
        self._entries: OrderedDict[str, QueryResult] = OrderedDict()
        # Delta folders for maintainable queries, keyed by *canonical SQL*
        # (no data version — a folder survives version bumps; that is its
        # whole point).  A separate LRU map, same capacity: evicting a result
        # entry must not destroy the folder state that can rebuild it.
        self._folders: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def _copy(result: QueryResult) -> QueryResult:
        # Values are shared (immutable), containers are not: a copy can never
        # alias the cached entry's lists.  The copy preserves laziness — a
        # column-backed result is cached column-backed, so the row pivot is
        # still deferred until some consumer actually reads ``.rows``.
        return result.copy()

    def lookup(self, key: str) -> QueryResult | None:
        """Return a copy of the cached result for ``key``, or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
        return self._copy(entry)

    def store(self, key: str, result: QueryResult) -> None:
        """Cache a result under ``key``, evicting the LRU entry when full."""
        copied = self._copy(result)
        with self._lock:
            self._entries[key] = copied
            self._entries.move_to_end(key)
            self.stats.stores += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def note_bypass(self) -> None:
        """Record an execution that skipped the cache (uncacheable query)."""
        with self._lock:
            self.stats.bypassed += 1

    # ------------------------------------------------------------------ #
    # Delta folders (incremental view maintenance — see engine/ivm.py)
    # ------------------------------------------------------------------ #

    def folder(self, canonical: str) -> Any | None:
        """The delta folder registered for a canonical query, or None."""
        with self._lock:
            entry = self._folders.get(canonical)
            if entry is not None:
                self._folders.move_to_end(canonical)
            return entry

    def store_folder(self, canonical: str, folder: Any) -> None:
        """Register (or replace) the delta folder for a canonical query."""
        with self._lock:
            self._folders[canonical] = folder
            self._folders.move_to_end(canonical)
            while len(self._folders) > self.capacity:
                self._folders.popitem(last=False)

    def drop_folder(self, canonical: str, folder: Any) -> None:
        """Remove a folder, but only if it is still the registered one."""
        with self._lock:
            if self._folders.get(canonical) is folder:
                del self._folders[canonical]

    def note_fold(self) -> None:
        """Record a probe answered by folding appended deltas forward."""
        with self._lock:
            self.stats.ivm_folds += 1

    def note_fallback(self) -> None:
        """Record a fold attempt that fell back to a full recompute."""
        with self._lock:
            self.stats.ivm_fallbacks += 1

    def clear(self) -> None:
        """Drop every entry and folder; reset counters, bump ``cleared``.

        The counters describe the cache's current population, so they reset
        with it — a ``hit_rate`` carried across a clear would mislead (the
        hits it counts came from entries that no longer exist).  ``cleared``
        is the cumulative record that clears happened.
        """
        with self._lock:
            self._entries.clear()
            self._folders.clear()
            self.stats.reset_counters()
            self.stats.cleared += 1

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            data = self.stats.as_dict()
            data["entries"] = len(self._entries)
            data["folders"] = len(self._folders)
        data["capacity"] = self.capacity
        return data
