"""In-memory columnar SQL execution engine."""

from repro.engine.aggregates import is_aggregate_function, make_accumulator
from repro.engine.catalog import Catalog
from repro.engine.column import Column, ColumnStats
from repro.engine.csvio import load_table, save_table, table_from_csv, table_to_csv
from repro.engine.executor import ExecutionContext, Executor, lower_plan
from repro.engine.expressions import (
    Batch,
    BatchRowView,
    Environment,
    ExpressionEvaluator,
    VectorEvaluator,
)
from repro.engine.functions import SCALAR_FUNCTIONS, call_scalar_function, is_scalar_function
from repro.engine.optimizer import OptimizerTrace, optimize_plan
from repro.engine.planner import Planner
from repro.engine.query_cache import QueryCache, QueryCacheStats, cache_key
from repro.engine.table import QueryResult, Table, result_from_table

__all__ = [
    "Catalog",
    "Executor",
    "ExecutionContext",
    "lower_plan",
    "optimize_plan",
    "OptimizerTrace",
    "Planner",
    "QueryCache",
    "QueryCacheStats",
    "cache_key",
    "QueryResult",
    "Table",
    "Column",
    "ColumnStats",
    "result_from_table",
    "Batch",
    "BatchRowView",
    "Environment",
    "ExpressionEvaluator",
    "VectorEvaluator",
    "SCALAR_FUNCTIONS",
    "call_scalar_function",
    "is_scalar_function",
    "is_aggregate_function",
    "make_accumulator",
    "load_table",
    "save_table",
    "table_from_csv",
    "table_to_csv",
]
