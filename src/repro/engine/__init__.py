"""In-memory columnar SQL execution engine."""

from repro.engine.aggregates import is_aggregate_function, make_accumulator
from repro.engine.catalog import Catalog
from repro.engine.csvio import load_table, save_table, table_from_csv, table_to_csv
from repro.engine.executor import Executor
from repro.engine.expressions import Environment, ExpressionEvaluator
from repro.engine.functions import SCALAR_FUNCTIONS, call_scalar_function, is_scalar_function
from repro.engine.planner import Planner
from repro.engine.table import QueryResult, Table, result_from_table

__all__ = [
    "Catalog",
    "Executor",
    "Planner",
    "QueryResult",
    "Table",
    "result_from_table",
    "Environment",
    "ExpressionEvaluator",
    "SCALAR_FUNCTIONS",
    "call_scalar_function",
    "is_scalar_function",
    "is_aggregate_function",
    "make_accumulator",
    "load_table",
    "save_table",
    "table_from_csv",
    "table_to_csv",
]
