"""Logical and physical plan nodes.

The planner lowers a SELECT AST to a tree of *logical* nodes mirroring the
standard execution order (FROM → WHERE → GROUP BY/HAVING → SELECT → DISTINCT
→ ORDER BY → LIMIT).  The executor then lowers the logical plan to a tree of
*physical* operators — the second half of this module — which pull columnar
:class:`~repro.engine.expressions.Batch`es from their inputs and evaluate
expressions column-at-a-time.  The physical plan IS the execution path: the
executor's job is reduced to compile-then-run.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import ExecutionError
from repro.engine.aggregates import make_accumulator
from repro.engine.expressions import Batch, VectorEvaluator
from repro.sql.ast_nodes import (
    ColumnRef,
    FunctionCall,
    Literal,
    OrderItem,
    SelectItem,
    SqlNode,
    Star,
)
from repro.sql.printer import to_sql


@dataclass
class PlanNode:
    """Base class of logical plan operators."""

    def children(self) -> list["PlanNode"]:
        return []

    def description(self) -> str:
        return type(self).__name__

    def pretty(self, indent: int = 0) -> str:
        """Render the plan subtree as an indented text block."""
        lines = ["  " * indent + self.description()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def walk(self) -> Iterator["PlanNode"]:
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass
class ScanNode(PlanNode):
    """Scan of a base table (or CTE materialization).

    ``columns`` is None for a full-width scan; the optimizer's projection
    pruning rule narrows it to the columns the rest of the plan references.
    """

    table_name: str
    binding_name: str
    columns: list[str] | None = None

    def description(self) -> str:
        alias = f" AS {self.binding_name}" if self.binding_name != self.table_name else ""
        cols = f", cols=[{', '.join(self.columns)}]" if self.columns is not None else ""
        return f"Scan({self.table_name}{alias}{cols})"


@dataclass(frozen=True)
class IndexAccessPath:
    """One index-served conjunct: which index answers which predicate.

    ``op`` is one of ``=``, ``<``, ``<=``, ``>``, ``>=``, ``between``, ``in``;
    ``values`` holds the literal operands (one for comparisons, two for
    BETWEEN, all members for IN).  The operands are plan-time constants —
    parameters never become access paths, so cached plans stay valid across
    parameter sets.
    """

    column: str
    kind: str
    op: str
    values: tuple

    def describe(self) -> str:
        if self.op == "between":
            return f"{self.column} BETWEEN {self.values[0]!r} AND {self.values[1]!r}"
        if self.op == "in":
            return f"{self.column} IN ({', '.join(repr(v) for v in self.values)})"
        return f"{self.column} {self.op} {self.values[0]!r}"


@dataclass
class IndexScanNode(PlanNode):
    """Index-served scan of a base table (chosen by the optimizer).

    Replaces a ``Filter(Scan)`` pair when one conjunct of the filter can be
    answered by a secondary index on the table; remaining conjuncts stay in
    a residual Filter above.  ``estimated_selectivity`` is the optimizer's
    estimate for the served conjunct (used for row estimates and EXPLAIN).
    """

    table_name: str
    binding_name: str
    access: IndexAccessPath = field(default=None)  # type: ignore[assignment]
    columns: list[str] | None = None
    estimated_selectivity: float = 1.0

    def description(self) -> str:
        alias = f" AS {self.binding_name}" if self.binding_name != self.table_name else ""
        cols = f", cols=[{', '.join(self.columns)}]" if self.columns is not None else ""
        return (
            f"IndexScan({self.table_name}{alias}, "
            f"{self.access.kind}[{self.access.describe()}]{cols})"
        )


@dataclass
class DerivedScanNode(PlanNode):
    """Scan of a derived table ``(SELECT ...) AS alias``."""

    alias: str
    input: PlanNode = field(default=None)  # type: ignore[assignment]

    def children(self) -> list[PlanNode]:
        return [self.input] if self.input is not None else []

    def description(self) -> str:
        return f"DerivedScan({self.alias})"


@dataclass
class JoinNode(PlanNode):
    """Join of two plan subtrees."""

    left: PlanNode
    right: PlanNode
    join_type: str = "INNER"
    condition: SqlNode | None = None
    using: list[str] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def description(self) -> str:
        if self.condition is not None:
            return f"Join({self.join_type}, on={to_sql(self.condition)})"
        if self.using:
            return f"Join({self.join_type}, using={self.using})"
        return f"Join({self.join_type})"


@dataclass
class FilterNode(PlanNode):
    """WHERE or HAVING filter."""

    input: PlanNode
    predicate: SqlNode
    phase: str = "where"

    def children(self) -> list[PlanNode]:
        return [self.input]

    def description(self) -> str:
        return f"Filter[{self.phase}]({to_sql(self.predicate)})"


@dataclass
class AggregateNode(PlanNode):
    """GROUP BY aggregation (or a single implicit group)."""

    input: PlanNode
    group_by: list[SqlNode] = field(default_factory=list)
    aggregates: list[SqlNode] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        return [self.input]

    def description(self) -> str:
        groups = ", ".join(to_sql(expr) for expr in self.group_by) or "<all rows>"
        aggs = ", ".join(to_sql(expr) for expr in self.aggregates)
        return f"Aggregate(group_by=[{groups}], aggregates=[{aggs}])"


def window_sort_key(spec) -> tuple:
    """Hashable identity of a window spec's partition/order requirements.

    Two specs with the same key can share one partition pass and one sort —
    frames may still differ per call.  Canonical SQL text is the same dedup
    currency the aggregate and cache layers use.
    """
    return (
        tuple(to_sql(expr) for expr in spec.partition_by),
        tuple(
            (to_sql(item.expr), item.descending, item.nulls_last)
            for item in spec.order_by
        ),
    )


@dataclass
class WindowNode(PlanNode):
    """Window computation, sitting between HAVING and the SELECT projection.

    ``windows`` holds the scope's distinct :class:`WindowCall` ASTs; the
    physical operator publishes one result vector per call into the batch's
    aggregate-substitution map keyed by canonical SQL (the same mechanism
    GROUP BY results ride).  ``index_orders`` is the optimizer's sort-elision
    hint: spec sort key -> ``(table, column)`` whose ordered secondary index
    provably yields the spec's sort order (ascending, NULL-free by stats).
    """

    input: PlanNode
    windows: list[SqlNode] = field(default_factory=list)
    index_orders: dict = field(default_factory=dict)

    def children(self) -> list[PlanNode]:
        return [self.input]

    def description(self) -> str:
        calls = ", ".join(to_sql(window) for window in self.windows)
        hint = ""
        if self.index_orders:
            columns = ", ".join(
                f"{table}.{column}"
                for table, column in sorted(set(self.index_orders.values()))
            )
            hint = f", index_order=[{columns}]"
        return f"Window({calls}{hint})"


@dataclass
class ProjectNode(PlanNode):
    """SELECT-list projection."""

    input: PlanNode
    items: list[SelectItem] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        return [self.input]

    def description(self) -> str:
        rendered = ", ".join(
            to_sql(item.expr) + (f" AS {item.alias}" if item.alias else "") for item in self.items
        )
        return f"Project({rendered})"


@dataclass
class DistinctNode(PlanNode):
    """SELECT DISTINCT de-duplication."""

    input: PlanNode

    def children(self) -> list[PlanNode]:
        return [self.input]


@dataclass
class SortNode(PlanNode):
    """ORDER BY."""

    input: PlanNode
    order_by: list[OrderItem] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        return [self.input]

    def description(self) -> str:
        keys = ", ".join(
            to_sql(item.expr) + (" DESC" if item.descending else "") for item in self.order_by
        )
        return f"Sort({keys})"


@dataclass
class LimitNode(PlanNode):
    """LIMIT / OFFSET."""

    input: PlanNode
    limit: int | None = None
    offset: int | None = None

    def children(self) -> list[PlanNode]:
        return [self.input]

    def description(self) -> str:
        return f"Limit(limit={self.limit}, offset={self.offset})"


@dataclass
class SetOpNode(PlanNode):
    """UNION / INTERSECT / EXCEPT."""

    op: str
    left: PlanNode
    right: PlanNode
    all: bool = False

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def description(self) -> str:
        return f"SetOp({self.op}{' ALL' if self.all else ''})"


@dataclass
class CteDefinition:
    """One WITH-clause entry: name, declared columns, planned query."""

    name: str
    columns: list[str]
    plan: PlanNode


@dataclass
class CteNode(PlanNode):
    """WITH-clause materialization wrapping the main query plan."""

    definitions: list[CteDefinition]
    input: PlanNode

    def children(self) -> list[PlanNode]:
        return [definition.plan for definition in self.definitions] + [self.input]

    def description(self) -> str:
        names = ", ".join(definition.name for definition in self.definitions)
        return f"With({names})"


# =========================================================================== #
# Physical operators
# =========================================================================== #
#
# Physical operators are executable: ``execute(ctx)`` pulls a columnar
# ``Batch`` from the children and returns one.  ``ctx`` is the executor's
# ``ExecutionContext`` (catalog, CTE tables, outer-row correlation context,
# parameters, and the subquery runner used by the vectorized evaluator).
#
# Operator contracts (see docs/ENGINE.md):
#   * every operator is stateless — all run state lives in the context and in
#     the batches, so compiled plans are reusable across executions;
#   * batches own ``slots`` (binding, column) for scan-level columns, plus
#     ``aliases`` (SELECT output names) and ``aggregates`` (per-group results
#     keyed by the canonical SQL of the aggregate call);
#   * row order is deterministic and matches the row-at-a-time semantics the
#     engine previously implemented (left-major joins, first-appearance group
#     order, stable multi-key sorts).


def hashable(value: Any) -> Any:
    """A hashable stand-in for a value (lists/dicts/sets degrade to repr)."""
    if isinstance(value, (list, dict, set)):
        return repr(value)
    return value


def aggregate_call_specs(
    calls: list, evaluator, batch: "Batch"
) -> list[tuple[str, bool, list[Any] | None]]:
    """Per-call ``(canonical key, star-ness, argument vector)`` triples.

    Shared by the hash-aggregate operator and the incremental-maintenance
    fold path (``engine/ivm.py``) so both feed accumulators from identical
    argument vectors — any divergence here would show up as fold-vs-recompute
    differential failures.
    """
    specs: list[tuple[str, bool, list[Any] | None]] = []
    for call in calls:
        key = to_sql(call)
        is_star = (bool(call.args) and isinstance(call.args[0], Star)) or not call.args
        argument = None if is_star else evaluator.eval(call.args[0], batch)
        specs.append((key, is_star, argument))
    return specs


def dedupe_names(names: list[str]) -> list[str]:
    """Disambiguate duplicate output names (``col``, ``col_1``, ...)."""
    seen: dict[str, int] = {}
    unique: list[str] = []
    for name in names:
        if name in seen:
            seen[name] += 1
            unique.append(f"{name}_{seen[name]}")
        else:
            seen[name] = 0
            unique.append(name)
    return unique


def dedupe_rows(rows: list[tuple[Any, ...]]) -> list[tuple[Any, ...]]:
    """Remove duplicate rows, keeping first occurrences in order."""
    seen: set[tuple[Any, ...]] = set()
    result = []
    for row in rows:
        key = tuple(hashable(value) for value in row)
        if key not in seen:
            seen.add(key)
            result.append(row)
    return result


class Orderable:
    """Total-order wrapper so heterogeneous columns can still be sorted."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "Orderable") -> bool:
        try:
            return self.value < other.value
        except TypeError:
            return str(self.value) < str(other.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Orderable) and self.value == other.value


class PhysicalNode:
    """Base class of executable physical operators."""

    def children(self) -> list["PhysicalNode"]:
        return []

    def description(self) -> str:
        return type(self).__name__

    def pretty(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.description()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def walk(self) -> Iterator["PhysicalNode"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def execute(self, ctx) -> Batch:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass
class ScanExec(PhysicalNode):
    """Columnar scan of a base table or CTE (zero-copy over column lists).

    With ``columns`` set (projection pruning), only those columns are exposed
    as batch slots; downstream gathers then never materialize dead columns.
    """

    table_name: str
    binding_name: str
    columns: list[str] | None = None

    def description(self) -> str:
        alias = f" AS {self.binding_name}" if self.binding_name != self.table_name else ""
        cols = f", cols=[{', '.join(self.columns)}]" if self.columns is not None else ""
        return f"SeqScan({self.table_name}{alias}{cols})"

    def execute(self, ctx) -> Batch:
        ctx.checkpoint()
        if self.table_name == "<dual>":
            return Batch(slots=[], columns=[], length=1)
        table = ctx.ctes.get(self.table_name.lower())
        if table is None:
            table = ctx.catalog.table(self.table_name)
        if self.columns is None:
            return Batch.from_table(table, self.binding_name)
        return Batch(
            slots=[(self.binding_name, name) for name in self.columns],
            columns=[table.column_data(name) for name in self.columns],
            length=table.row_count,
        )


@dataclass
class IndexScanExec(PhysicalNode):
    """Index-served scan: probe a secondary index, gather matching rows.

    The index returns matching row positions in ascending order — the same
    selection-vector currency the fused-predicate path produces — so the
    output batch is row-order-identical to ``SeqScan`` + ``Filter`` over the
    served conjunct.  If the index is missing, poisoned, or does not cover
    the whole column (it cannot fall behind under normal operation, but the
    check is cheap), the operator evaluates the conjunct with a direct
    linear pass instead, preserving answers under every degradation.
    """

    table_name: str
    binding_name: str
    access: IndexAccessPath
    columns: list[str] | None = None

    def description(self) -> str:
        alias = f" AS {self.binding_name}" if self.binding_name != self.table_name else ""
        cols = f", cols=[{', '.join(self.columns)}]" if self.columns is not None else ""
        return (
            f"IndexScan({self.table_name}{alias}, "
            f"{self.access.kind}[{self.access.describe()}]{cols})"
        )

    def execute(self, ctx) -> Batch:
        ctx.checkpoint()
        table = ctx.ctes.get(self.table_name.lower())
        if table is None:
            table = ctx.catalog.table(self.table_name)
        positions = self._matching_positions(table)
        names = self.columns if self.columns is not None else list(table.column_names)
        columns = []
        for name in names:
            data = table.column_data(name)
            columns.append([data[position] for position in positions])
        return Batch(
            slots=[(self.binding_name, name) for name in names],
            columns=columns,
            length=len(positions),
        )

    def _matching_positions(self, table) -> list[int]:
        store = table.column_store(self.access.column)
        index = store.index(self.access.kind)
        positions: list[int] | None = None
        if index is not None and index.covered == len(store.values):
            positions = self._probe(index)
        if positions is None:
            positions = self._scan_positions(store.values)
        return positions

    def _probe(self, index) -> list[int] | None:
        from repro.engine.indexes import UNBOUNDED

        op = self.access.op
        values = self.access.values
        if op == "=":
            return index.lookup_eq(values[0])
        if op == "in":
            return index.lookup_in(values)
        if op == "between":
            return index.lookup_range(values[0], values[1], True, True)
        if op == "<":
            return index.lookup_range(UNBOUNDED, values[0], True, False)
        if op == "<=":
            return index.lookup_range(UNBOUNDED, values[0], True, True)
        if op == ">":
            return index.lookup_range(values[0], UNBOUNDED, False, True)
        if op == ">=":
            return index.lookup_range(values[0], UNBOUNDED, True, True)
        return None

    def _scan_positions(self, values: list[Any]) -> list[int]:
        """Linear fallback with the exact semantics of the fused conjunct."""
        op = self.access.op
        operands = self.access.values
        if op == "=":
            target = operands[0]
            return [
                position
                for position, value in enumerate(values)
                if value is not None and value == target
            ]
        if op == "in":
            return [
                position
                for position, value in enumerate(values)
                if value is not None and any(value == member for member in operands)
            ]
        if op == "between":
            low, high = operands
            return [
                position
                for position, value in enumerate(values)
                if value is not None and low <= value <= high
            ]
        target = operands[0]
        if op == "<":
            test = lambda value: value < target  # noqa: E731
        elif op == "<=":
            test = lambda value: value <= target  # noqa: E731
        elif op == ">":
            test = lambda value: value > target  # noqa: E731
        elif op == ">=":
            test = lambda value: value >= target  # noqa: E731
        else:  # pragma: no cover - the optimizer only emits the ops above
            raise ExecutionError(f"Unsupported index access op {op!r}")
        return [
            position
            for position, value in enumerate(values)
            if value is not None and test(value)
        ]


@dataclass
class DerivedScanExec(PhysicalNode):
    """Derived table ``(SELECT ...) AS alias``: run subplan, rebind columns."""

    alias: str
    plan: PhysicalNode

    def children(self) -> list[PhysicalNode]:
        return [self.plan]

    def description(self) -> str:
        return f"DerivedScan({self.alias})"

    def execute(self, ctx) -> Batch:
        sub = self.plan.execute(ctx.fresh())
        return Batch(
            slots=[(self.alias, name) for _, name in sub.slots],
            columns=sub.columns,
            length=sub.length,
        )


@dataclass
class CteExec(PhysicalNode):
    """Materializes WITH-clause tables, then runs the main plan against them."""

    definitions: list[tuple[str, list[str], PhysicalNode]]
    input: PhysicalNode

    def children(self) -> list[PhysicalNode]:
        return [plan for _, _, plan in self.definitions] + [self.input]

    def description(self) -> str:
        names = ", ".join(name for name, _, _ in self.definitions)
        return f"MaterializeCtes({names})"

    def execute(self, ctx) -> Batch:
        from repro.engine.table import Table

        ctes = dict(ctx.ctes)
        scoped = ctx.with_ctes(ctes)
        for name, declared, plan in self.definitions:
            # Each CTE query is its own SELECT scope (fresh subquery memo); it
            # sees the CTEs defined before it through the shared, growing map.
            batch = plan.execute(scoped.fresh())
            produced = [column for _, column in batch.slots]
            columns = declared or produced
            if len(columns) != len(produced):
                raise ExecutionError(
                    f"CTE {name!r} declares {len(columns)} columns but its query "
                    f"produces {len(produced)}"
                )
            if len(set(columns)) == len(columns):
                # Column-major hand-off: the batch's value vectors become the
                # CTE table's storage without a row round-trip.  Vectors that
                # alias base-table storage are safe to share — the CTE table
                # is read-only for the rest of this execution.
                ctes[name.lower()] = Table.from_columns(
                    name, dict(zip(columns, batch.columns)), adopt=True
                )
            else:
                # Duplicate output names: fall through to the row constructor,
                # which reports the same CatalogError it always has.
                ctes[name.lower()] = Table(name=name, columns=columns, rows=batch.rows())
        return self.input.execute(scoped)


@dataclass
class FilterExec(PhysicalNode):
    """Vectorized WHERE / HAVING / join-residual filter."""

    input: PhysicalNode
    predicate: SqlNode
    phase: str = "where"

    def children(self) -> list[PhysicalNode]:
        return [self.input]

    def description(self) -> str:
        return f"Filter[{self.phase}]({to_sql(self.predicate)})"

    def execute(self, ctx) -> Batch:
        batch = self.input.execute(ctx)
        ctx.checkpoint()
        if batch.length == 0:
            return batch
        keep = VectorEvaluator(ctx).eval_predicate(self.predicate, batch)
        # The boolean keep-mask IS the selection vector; applying it is the
        # only materialization a filter performs (one compress pass per
        # column, no row rebuilds).  An all-true mask passes the input batch
        # through untouched.
        count = keep.count(True)
        if count == batch.length:
            return batch
        return batch.filter(keep, count)


@dataclass
class ProjectExec(PhysicalNode):
    """Vectorized SELECT-list projection (with Star expansion)."""

    items: list[SelectItem]
    input: PhysicalNode
    allow_star: bool = True

    def children(self) -> list[PhysicalNode]:
        return [self.input]

    def description(self) -> str:
        rendered = ", ".join(
            to_sql(item.expr) + (f" AS {item.alias}" if item.alias else "")
            for item in self.items
        )
        return f"Project({rendered})"

    def execute(self, ctx) -> Batch:
        batch = self.input.execute(ctx)
        evaluator = VectorEvaluator(ctx)
        # Later SELECT items may reference earlier items' aliases, so evaluate
        # against a working batch whose alias map grows as items are computed.
        working = Batch(
            slots=batch.slots,
            columns=batch.columns,
            length=batch.length,
            aliases=dict(batch.aliases),
            aggregates=batch.aggregates,
        )
        names: list[str] = []
        columns: list[list[Any]] = []
        for item in self.items:
            if isinstance(item.expr, Star):
                if not self.allow_star:
                    raise ExecutionError("SELECT * cannot be combined with GROUP BY")
                star = item.expr
                matched = [
                    index
                    for index, (binding, _column) in enumerate(batch.slots)
                    if not star.table or star.table == binding
                ]
                if matched:
                    for index in matched:
                        names.append(batch.slots[index][1])
                        columns.append(batch.columns[index])
                else:
                    # SELECT * over an empty FROM scope: a degenerate all-NULL
                    # column keeps the slot/column invariant intact.
                    names.append("*")
                    columns.append([None] * batch.length)
                continue
            column = evaluator.eval(item.expr, working)
            names.append(item.output_name())
            columns.append(column)
            if item.alias:
                working.aliases[item.alias] = column
        unique = dedupe_names(names)
        return Batch(
            slots=[("", name) for name in unique],
            columns=columns,
            length=batch.length,
            aliases=dict(zip(unique, columns)),
            aggregates=batch.aggregates,
        )


@dataclass
class HashAggregateExec(PhysicalNode):
    """GROUP BY via hash partitioning with vectorized accumulation.

    The output batch has one row per group: every input slot holds the
    group's representative (first) row value, and ``aggregates`` carries each
    aggregate call's per-group result keyed by its canonical SQL, which is how
    downstream HAVING / projection / ORDER BY operators substitute aggregate
    values during expression evaluation.
    """

    group_by: list[SqlNode]
    aggregates: list[FunctionCall]
    input: PhysicalNode

    def children(self) -> list[PhysicalNode]:
        return [self.input]

    def description(self) -> str:
        groups = ", ".join(to_sql(expr) for expr in self.group_by) or "<all rows>"
        aggs = ", ".join(to_sql(call) for call in self.aggregates)
        return f"HashAggregate(group_by=[{groups}], aggregates=[{aggs}])"

    @staticmethod
    def _partition(key_columns: list[list[Any]], length: int) -> tuple[dict, list]:
        """Group row indices by key, preserving first-appearance order.

        Keys are raw column values (single key) or C-built value tuples
        (multi key); the per-value ``hashable()`` shim only runs on the
        fallback path after an unhashable value is actually seen.
        """
        grouped: defaultdict[Any, list[int]] = defaultdict(list)
        try:
            if len(key_columns) == 1:
                for index, key in enumerate(key_columns[0]):
                    grouped[key].append(index)
            else:
                for index, key in enumerate(zip(*key_columns)):
                    grouped[key].append(index)
        except TypeError:
            grouped.clear()
            for index in range(length):
                key = tuple(hashable(column[index]) for column in key_columns)
                grouped[key].append(index)
        groups = dict(grouped)
        # Dict insertion order IS first-appearance order.
        return groups, list(groups)

    def execute(self, ctx) -> Batch:
        batch = self.input.execute(ctx)
        ctx.checkpoint()
        evaluator = VectorEvaluator(ctx)

        key_columns = [evaluator.eval(expr, batch) for expr in self.group_by]
        if key_columns:
            groups, order = self._partition(key_columns, batch.length)
        elif batch.length:
            # No GROUP BY: every row lands in the single global group (a
            # range stands in for the member list — len() and indexing are
            # all the accumulation path needs).
            groups, order = {(): range(batch.length)}, [()]
        else:
            groups, order = {}, []

        # A query with aggregates but no GROUP BY forms one global group, even
        # over zero input rows.
        if not self.group_by and not groups:
            groups[()] = []
            order.append(())

        # Per-call specs (canonical key, star-ness, argument vector) computed
        # once; the group loop below must stay free of AST rendering.
        specs = aggregate_call_specs(self.aggregates, evaluator, batch)
        aggregate_columns: dict[str, list[Any]] = {key: [] for key, _, _ in specs}

        for group_key in order:
            members = groups[group_key]
            for call, (key, is_star, argument) in zip(self.aggregates, specs):
                accumulator = make_accumulator(
                    call.name, is_star=is_star, distinct=call.distinct
                )
                if accumulator.counts_rows:
                    accumulator.add_many(members)
                elif argument is not None:
                    if len(members) == batch.length:
                        # The group covers the whole batch: feed the argument
                        # vector directly instead of gathering a copy.
                        accumulator.add_many(argument)
                    else:
                        accumulator.add_many([argument[index] for index in members])
                aggregate_columns[key].append(accumulator.result())

        if order and not groups[order[0]]:
            # Global aggregate over an empty input: one output row with no
            # resolvable scan columns (matching row-at-a-time semantics where
            # the representative environment was empty).
            return Batch(
                slots=[], columns=[], length=len(order), aggregates=aggregate_columns
            )
        representatives = [groups[group_key][0] for group_key in order]
        columns = [
            [column[index] for index in representatives] for column in batch.columns
        ]
        return Batch(
            slots=batch.slots,
            columns=columns,
            length=len(order),
            aggregates=aggregate_columns,
        )


@dataclass
class DistinctExec(PhysicalNode):
    """SELECT DISTINCT de-duplication over projected rows."""

    input: PhysicalNode

    def children(self) -> list[PhysicalNode]:
        return [self.input]

    def description(self) -> str:
        return "Distinct"

    def execute(self, ctx) -> Batch:
        batch = self.input.execute(ctx)
        ctx.checkpoint()
        seen: set[tuple] = set()
        indices: list[int] = []
        for index in range(batch.length):
            key = tuple(hashable(column[index]) for column in batch.columns)
            if key not in seen:
                seen.add(key)
                indices.append(index)
        if len(indices) == batch.length:
            return batch
        return batch.take(indices)


def stable_sort_indices(
    indices: list[int],
    keyed_orders: list[tuple[list[Any], bool, bool]],
) -> list[int]:
    """Stable multi-key index sort with the engine's ORDER BY semantics.

    ``keyed_orders`` is ``[(key_vector, descending, nulls_last), ...]`` in
    clause order; keys are applied last-first so earlier keys dominate.
    ``indices`` selects the rows to permute — the key vectors are full-length
    and indexed by row position, so the same vectors serve every partition of
    a window sort.  Null-free keys sort un-wrapped at C speed (a scratch list
    protects against mixed-type TypeError); the fallback provides the total
    order via :class:`Orderable` with explicit NULL placement.
    """
    for keys, descending, nulls_last in reversed(keyed_orders):
        if None not in keys:
            trial = indices[:]
            try:
                trial.sort(key=keys.__getitem__, reverse=descending)
            except TypeError:
                pass
            else:
                indices = trial
                continue

        def sort_key(index: int, keys=keys, nulls_last=nulls_last):
            value = keys[index]
            is_null = value is None
            return (is_null if nulls_last else not is_null, Orderable(value))

        indices.sort(key=sort_key, reverse=descending)
        # Re-sort so NULL placement is unaffected by reverse.
        if descending:
            nulls = [index for index in indices if keys[index] is None]
            non_nulls = [index for index in indices if keys[index] is not None]
            indices = non_nulls + nulls if nulls_last else nulls + non_nulls
    return indices


@dataclass
class SortExec(PhysicalNode):
    """ORDER BY with vectorized key computation and stable index sorting.

    Keys resolve like the row-at-a-time engine did: 1-based positions, output
    column names, expression output names, then expression evaluation against
    the projected columns (outer correlation is not visible to ORDER BY).
    """

    order_by: list[OrderItem]
    input: PhysicalNode

    def children(self) -> list[PhysicalNode]:
        return [self.input]

    def description(self) -> str:
        keys = ", ".join(
            to_sql(item.expr) + (" DESC" if item.descending else "")
            for item in self.order_by
        )
        return f"Sort({keys})"

    def _key_vector(self, ctx, batch: Batch, expr: SqlNode) -> list[Any]:
        columns = [name for _, name in batch.slots]
        if isinstance(expr, Literal) and isinstance(expr.value, int):
            index = expr.value - 1
            if index < 0 or index >= len(columns):
                raise ExecutionError(f"ORDER BY position {expr.value} out of range")
            return batch.columns[index]
        if isinstance(expr, ColumnRef) and expr.name in columns:
            return batch.columns[columns.index(expr.name)]
        name = SelectItem(expr=expr).output_name()
        if name in columns:
            return batch.columns[columns.index(name)]
        # Fall back to evaluating the expression against the output columns
        # (exposed as aliases), without outer correlation.
        eval_batch = Batch(
            slots=[],
            columns=[],
            length=batch.length,
            aliases=dict(zip(columns, batch.columns)),
            aggregates=batch.aggregates,
        )
        return VectorEvaluator(ctx.without_outer()).eval(expr, eval_batch)

    def execute(self, ctx) -> Batch:
        batch = self.input.execute(ctx)
        ctx.checkpoint()
        if batch.length == 0:
            return batch
        keyed = [
            (self._key_vector(ctx, batch, item.expr), item.descending, item.nulls_last)
            for item in self.order_by
        ]
        indices = stable_sort_indices(list(range(batch.length)), keyed)
        return batch.take(indices)


@dataclass
class WindowExec(PhysicalNode):
    """Vectorized window computation over the post-HAVING batch.

    Windows are grouped by :func:`window_sort_key`, so every call sharing a
    partition/order clause rides **one** partition pass and **one** sort; only
    the per-call frame walk differs.  Result vectors land in the batch's
    ``aggregates`` substitution map keyed by the call's canonical SQL — the
    projection, ORDER BY and later operators then resolve window references
    through the exact mechanism GROUP BY results already use, and
    ``Batch.take``/``filter``/``slice`` keep the vectors row-aligned.

    Frame semantics match sqlite3 (the differential oracle):

    * ``ORDER BY`` without an explicit frame: the default RANGE frame — a
      running value extended to *peers* (rows tying on all order keys share
      the value of their last peer);
    * no ``ORDER BY``: the whole partition;
    * explicit ``ROWS`` frames: physical row offsets, with an incremental
      accumulator fast path for frames growing from the partition start.

    ``index_orders``/``scan_table`` carry the optimizer's sort-elision hint;
    the operator re-verifies every precondition at run time (identity scan,
    NULL-free covered ordered index) and silently falls back to sorting, so a
    stale hint can never produce wrong answers.
    """

    windows: list[SqlNode]
    input: PhysicalNode
    index_orders: dict = field(default_factory=dict)
    scan_table: str | None = None

    def children(self) -> list[PhysicalNode]:
        return [self.input]

    def description(self) -> str:
        calls = ", ".join(to_sql(window) for window in self.windows)
        hint = ""
        if self.index_orders:
            columns = ", ".join(
                f"{table}.{column}"
                for table, column in sorted(set(self.index_orders.values()))
            )
            hint = f", index_order=[{columns}]"
        return f"Window({calls}{hint})"

    def execute(self, ctx) -> Batch:
        batch = self.input.execute(ctx)
        ctx.checkpoint()
        evaluator = VectorEvaluator(ctx)

        spec_groups: dict[tuple, list[Any]] = {}
        for window in self.windows:
            spec_groups.setdefault(window_sort_key(window.spec), []).append(window)

        results: dict[str, list[Any]] = {}
        for spec_key, calls in spec_groups.items():
            ctx.checkpoint()
            if batch.length == 0:
                for window in calls:
                    results[to_sql(window)] = []
                continue
            spec = calls[0].spec
            order_vectors = [evaluator.eval(item.expr, batch) for item in spec.order_by]
            partitions = self._partitions(evaluator, batch, spec)
            ordered = self._order_partitions(
                ctx, batch, spec, spec_key, partitions, order_vectors
            )
            for window in calls:
                out: list[Any] = [None] * batch.length
                self._compute(ctx, evaluator, batch, window, ordered, order_vectors, out)
                results[to_sql(window)] = out

        merged = dict(batch.aggregates)
        merged.update(results)
        return Batch(
            slots=batch.slots,
            columns=batch.columns,
            length=batch.length,
            aliases=batch.aliases,
            aggregates=merged,
        )

    # -- partitioning and ordering ---------------------------------------- #

    def _partitions(self, evaluator, batch: Batch, spec) -> list[list[int]]:
        if not spec.partition_by:
            return [list(range(batch.length))]
        key_columns = [evaluator.eval(expr, batch) for expr in spec.partition_by]
        grouped, order = HashAggregateExec._partition(key_columns, batch.length)
        # Members are appended in row order, so each partition list is already
        # ascending — the unsorted (no ORDER BY) case needs no further work.
        return [grouped[key] for key in order]

    def _order_partitions(
        self,
        ctx,
        batch: Batch,
        spec,
        spec_key: tuple,
        partitions: list[list[int]],
        order_vectors: list[list[Any]],
    ) -> list[list[int]]:
        if not spec.order_by:
            return partitions
        global_order = self._index_order(ctx, batch, spec_key)
        if global_order is not None:
            if len(partitions) == 1:
                return [global_order]
            # Rank rows by the global value order, then sort each partition's
            # (small) member list by rank — still no value comparisons.
            rank = [0] * batch.length
            for position, row in enumerate(global_order):
                rank[row] = position
            return [sorted(members, key=rank.__getitem__) for members in partitions]
        keyed = [
            (vector, item.descending, item.nulls_last)
            for vector, item in zip(order_vectors, spec.order_by)
        ]
        return [
            stable_sort_indices(list(members), keyed) if len(members) > 1 else list(members)
            for members in partitions
        ]

    def _index_order(self, ctx, batch: Batch, spec_key: tuple) -> list[int] | None:
        """Row positions in spec order via the ordered index, or None.

        Every precondition the optimizer proved from statistics is
        re-verified against the live table, so the hint degrades to the sort
        path instead of ever producing a wrong order.
        """
        target = self.index_orders.get(spec_key)
        if target is None or self.scan_table is None:
            return None
        table_name, column = target
        if table_name.lower() in ctx.ctes:
            return None
        try:
            table = ctx.catalog.table(table_name)
        except Exception:
            return None
        if batch.length != table.row_count:
            return None
        try:
            store = table.column_store(column)
        except Exception:
            return None
        index = store.index("ordered")
        if index is None or index.poisoned or index.covered != len(store.values):
            return None
        if store.null_count:
            return None
        order = index.ordered_positions()
        if order is None or len(order) != batch.length:
            return None
        return order

    # -- per-call computation ---------------------------------------------- #

    def _compute(
        self,
        ctx,
        evaluator,
        batch: Batch,
        window,
        partitions: list[list[int]],
        order_vectors: list[list[Any]],
        out: list[Any],
    ) -> None:
        call = window.call
        name = call.lower_name

        if name == "row_number":
            for members in partitions:
                for position, row in enumerate(members):
                    out[row] = position + 1
            return

        if name in ("rank", "dense_rank"):
            dense = name == "dense_rank"
            for members in partitions:
                previous: Any = None
                rank = dense_rank = 0
                for position, row in enumerate(members):
                    key = tuple(vector[row] for vector in order_vectors)
                    if position == 0 or key != previous:
                        rank = position + 1
                        dense_rank += 1
                        previous = key
                    out[row] = dense_rank if dense else rank
            return

        if name in ("lag", "lead"):
            argument = evaluator.eval(call.args[0], batch)
            offset = call.args[1].value if len(call.args) >= 2 else 1
            default = (
                evaluator.eval(call.args[2], batch) if len(call.args) >= 3 else None
            )
            step = -offset if name == "lag" else offset
            for members in partitions:
                count = len(members)
                for position, row in enumerate(members):
                    source = position + step
                    if 0 <= source < count:
                        out[row] = argument[members[source]]
                    elif default is not None:
                        out[row] = default[row]
            return

        # Windowed aggregate: running (peer-extended), whole-partition, or an
        # explicit ROWS frame.
        is_star = (bool(call.args) and isinstance(call.args[0], Star)) or not call.args
        argument = None if is_star else evaluator.eval(call.args[0], batch)
        spec = window.spec
        frame = spec.frame

        def fresh():
            return make_accumulator(call.name, is_star=is_star, distinct=False)

        def feed(accumulator, rows) -> None:
            if accumulator.counts_rows:
                accumulator.add_many(rows)
            else:
                accumulator.add_many([argument[row] for row in rows])

        if frame is None and not spec.order_by:
            for members in partitions:
                ctx.checkpoint()
                accumulator = fresh()
                feed(accumulator, members)
                value = accumulator.result()
                for row in members:
                    out[row] = value
            return

        if frame is None:
            # Default frame with ORDER BY: RANGE BETWEEN UNBOUNDED PRECEDING
            # AND CURRENT ROW — peers (order-key ties) share the running value
            # of their last member, matching sqlite.
            for members in partitions:
                ctx.checkpoint()
                accumulator = fresh()
                count = len(members)
                position = 0
                while position < count:
                    end = position + 1
                    key = tuple(vector[members[position]] for vector in order_vectors)
                    while end < count and (
                        tuple(vector[members[end]] for vector in order_vectors) == key
                    ):
                        end += 1
                    peers = members[position:end]
                    feed(accumulator, peers)
                    value = accumulator.result()
                    for row in peers:
                        out[row] = value
                    position = end
            return

        grows_from_start = frame.start_kind == "UNBOUNDED_PRECEDING" and frame.end_kind in (
            "CURRENT_ROW",
            "FOLLOWING",
        )
        for members in partitions:
            ctx.checkpoint()
            count = len(members)
            if grows_from_start:
                # The frame end only moves forward: one accumulator per
                # partition, fed incrementally (result() is non-destructive
                # for every engine accumulator).
                accumulator = fresh()
                fed = 0
                extra = frame.end_offset or 0 if frame.end_kind == "FOLLOWING" else 0
                for position in range(count):
                    high = min(position + extra, count - 1)
                    while fed <= high:
                        feed(accumulator, members[fed : fed + 1])
                        fed += 1
                    out[members[position]] = accumulator.result()
                continue
            for position in range(count):
                low, high = _frame_bounds(frame, position, count)
                accumulator = fresh()
                if low <= high:
                    feed(accumulator, members[low : high + 1])
                out[members[position]] = accumulator.result()


def _frame_bounds(frame, position: int, count: int) -> tuple[int, int]:
    """Clamped [low, high] member offsets of one ROWS frame at ``position``."""
    if frame.start_kind == "UNBOUNDED_PRECEDING":
        low = 0
    elif frame.start_kind == "PRECEDING":
        low = position - (frame.start_offset or 0)
    elif frame.start_kind == "CURRENT_ROW":
        low = position
    elif frame.start_kind == "FOLLOWING":
        low = position + (frame.start_offset or 0)
    else:  # UNBOUNDED_FOLLOWING start: degenerate single-row-at-end frame
        low = count - 1
    if frame.end_kind == "UNBOUNDED_FOLLOWING":
        high = count - 1
    elif frame.end_kind == "FOLLOWING":
        high = position + (frame.end_offset or 0)
    elif frame.end_kind == "CURRENT_ROW":
        high = position
    elif frame.end_kind == "PRECEDING":
        high = position - (frame.end_offset or 0)
    else:  # UNBOUNDED_PRECEDING end: degenerate single-row-at-start frame
        high = 0
    return max(low, 0), min(high, count - 1)


@dataclass
class LimitExec(PhysicalNode):
    """LIMIT / OFFSET."""

    input: PhysicalNode
    limit: int | None = None
    offset: int | None = None

    def children(self) -> list[PhysicalNode]:
        return [self.input]

    def description(self) -> str:
        return f"Limit(limit={self.limit}, offset={self.offset})"

    def execute(self, ctx) -> Batch:
        batch = self.input.execute(ctx)
        start = self.offset or 0
        stop = None if self.limit is None else start + self.limit
        if start == 0 and stop is None:
            return batch
        return batch.slice(start, stop)


@dataclass
class JoinExec(PhysicalNode):
    """Join of two physical subtrees.

    The lowering step extracts equi-key expression pairs from the ON
    condition when each side of an equality resolves entirely to one input
    (``left_keys[i] = right_keys[i]``); the remaining conjuncts stay in
    ``residual``.  With keys present the join builds a hash table on one side
    and probes with the other; otherwise it falls back to a vectorized
    nested-loop (cross gather + one predicate evaluation).  Row order matches
    the interpreted engine: left-major for INNER/LEFT/FULL, right-major for
    RIGHT, with outer padding interleaved at the unmatched row's position.
    """

    left: PhysicalNode
    right: PhysicalNode
    join_type: str = "INNER"
    condition: SqlNode | None = None
    using: list[str] = field(default_factory=list)
    left_keys: list[SqlNode] = field(default_factory=list)
    right_keys: list[SqlNode] = field(default_factory=list)
    residual: SqlNode | None = None

    def children(self) -> list[PhysicalNode]:
        return [self.left, self.right]

    def description(self) -> str:
        if self.left_keys:
            keys = ", ".join(
                f"{to_sql(left)} = {to_sql(right)}"
                for left, right in zip(self.left_keys, self.right_keys)
            )
            extra = f", residual={to_sql(self.residual)}" if self.residual is not None else ""
            return f"HashJoin({self.join_type}, keys=[{keys}]{extra})"
        if self.using:
            return f"HashJoin({self.join_type}, using={self.using})"
        if self.condition is not None:
            return f"NestedLoopJoin({self.join_type}, on={to_sql(self.condition)})"
        return f"NestedLoopJoin({self.join_type})"

    # -- pair generation ------------------------------------------------- #

    @staticmethod
    def _gather(left: Batch, right: Batch, left_idx, right_idx) -> Batch:
        columns: list[list[Any]] = []
        # Outer joins pad unmatched rows with None indices; inner/cross index
        # vectors are padding-free and gather without the per-element test.
        left_padded = None in left_idx
        right_padded = None in right_idx
        for column in left.columns:
            if left_padded:
                columns.append([column[i] if i is not None else None for i in left_idx])
            else:
                columns.append([column[i] for i in left_idx])
        for column in right.columns:
            if right_padded:
                columns.append([column[i] if i is not None else None for i in right_idx])
            else:
                columns.append([column[i] for i in right_idx])
        return Batch(
            slots=left.slots + right.slots, columns=columns, length=len(left_idx)
        )

    def _runtime_keys(
        self, left: Batch, right: Batch
    ) -> tuple[SqlNode | None, list[SqlNode], list[SqlNode], SqlNode | None]:
        """The (condition, left keys, right keys, residual) for this execution.

        USING (a, b) resolves against the actual first bindings of each input
        at run time; ON conditions use what the lowering step extracted.
        """
        if self.using:
            if not left.slots or not right.slots:
                return None, [], [], None
            left_binding = left.slots[0][0]
            right_binding = right.slots[0][0]
            left_keys = [ColumnRef(name=column, table=left_binding) for column in self.using]
            right_keys = [ColumnRef(name=column, table=right_binding) for column in self.using]
            from repro.sql.ast_nodes import BinaryOp

            condition: SqlNode | None = None
            for left_key, right_key in zip(left_keys, right_keys):
                equality = BinaryOp(op="=", left=left_key, right=right_key)
                condition = (
                    equality
                    if condition is None
                    else BinaryOp(op="AND", left=condition, right=equality)
                )
            return condition, left_keys, right_keys, None
        return self.condition, self.left_keys, self.right_keys, self.residual

    def _candidate_pairs(
        self,
        ctx,
        left: Batch,
        right: Batch,
        condition: SqlNode | None,
        left_keys: list[SqlNode],
        right_keys: list[SqlNode],
        residual: SqlNode | None,
        right_major: bool,
    ) -> list[tuple[int, int]]:
        """Matching (left, right) index pairs after the full join condition."""
        evaluator = VectorEvaluator(ctx)
        pairs: list[tuple[int, int]] | None = None
        predicate = residual

        if left_keys:
            try:
                left_vectors = [evaluator.eval(key, left) for key in left_keys]
                right_vectors = [evaluator.eval(key, right) for key in right_keys]
                if right_major:
                    # Hash the left side, probe with right rows in order.
                    buckets: dict[tuple, list[int]] = {}
                    for index in range(left.length):
                        key = tuple(vector[index] for vector in left_vectors)
                        if any(value is None for value in key):
                            continue
                        buckets.setdefault(key, []).append(index)
                    pairs = []
                    for index in range(right.length):
                        key = tuple(vector[index] for vector in right_vectors)
                        if any(value is None for value in key):
                            continue
                        for match in buckets.get(key, ()):
                            pairs.append((match, index))
                else:
                    buckets = {}
                    for index in range(right.length):
                        key = tuple(vector[index] for vector in right_vectors)
                        if any(value is None for value in key):
                            continue
                        buckets.setdefault(key, []).append(index)
                    pairs = []
                    for index in range(left.length):
                        key = tuple(vector[index] for vector in left_vectors)
                        if any(value is None for value in key):
                            continue
                        for match in buckets.get(key, ()):
                            pairs.append((index, match))
            except TypeError:
                # Unhashable key values: fall back to the nested-loop path
                # with the full original condition.
                pairs = None
                predicate = condition

        if pairs is None:
            predicate = condition
            if right_major:
                pairs = [
                    (li, ri) for ri in range(right.length) for li in range(left.length)
                ]
            else:
                pairs = [
                    (li, ri) for li in range(left.length) for ri in range(right.length)
                ]

        if predicate is not None and pairs:
            candidate = self._gather(
                left, right, [pair[0] for pair in pairs], [pair[1] for pair in pairs]
            )
            keep = VectorEvaluator(ctx).eval_predicate(predicate, candidate)
            pairs = [pair for pair, kept in zip(pairs, keep) if kept]
        return pairs

    # -- execution ------------------------------------------------------- #

    def execute(self, ctx) -> Batch:
        left = self.left.execute(ctx)
        right = self.right.execute(ctx)
        ctx.checkpoint()
        join_type = self.join_type

        if join_type == "CROSS":
            left_idx = [li for li in range(left.length) for _ in range(right.length)]
            right_idx = list(range(right.length)) * left.length
            return self._gather(left, right, left_idx, right_idx)

        condition, left_keys, right_keys, residual = self._runtime_keys(left, right)
        right_major = join_type == "RIGHT"
        pairs = self._candidate_pairs(
            ctx, left, right, condition, left_keys, right_keys, residual, right_major
        )

        if join_type == "INNER":
            return self._gather(
                left, right, [pair[0] for pair in pairs], [pair[1] for pair in pairs]
            )

        if join_type == "LEFT":
            left_idx, right_idx = self._pad_outer(pairs, left.length)
            return self._gather(left, right, left_idx, right_idx)

        if join_type == "RIGHT":
            right_idx, left_idx = self._pad_outer(
                [(ri, li) for li, ri in pairs], right.length
            )
            return self._gather(left, right, left_idx, right_idx)

        if join_type == "FULL":
            left_idx, right_idx = self._pad_outer(pairs, left.length)
            matched_right = {pair[1] for pair in pairs}
            for index in range(right.length):
                if index not in matched_right:
                    left_idx.append(None)
                    right_idx.append(index)
            return self._gather(left, right, left_idx, right_idx)

        raise ExecutionError(f"Unsupported join type {join_type!r}")

    @staticmethod
    def _pad_outer(
        pairs: list[tuple[int, int]], outer_length: int
    ) -> tuple[list[int | None], list[int | None]]:
        """Expand major-ordered pairs, inserting a NULL-padded row for every
        unmatched outer row at its position."""
        outer_idx: list[int | None] = []
        inner_idx: list[int | None] = []
        pointer = 0
        total = len(pairs)
        for outer in range(outer_length):
            matched = False
            while pointer < total and pairs[pointer][0] == outer:
                outer_idx.append(outer)
                inner_idx.append(pairs[pointer][1])
                matched = True
                pointer += 1
            if not matched:
                outer_idx.append(outer)
                inner_idx.append(None)
        return outer_idx, inner_idx


@dataclass
class SetOpExec(PhysicalNode):
    """UNION / INTERSECT / EXCEPT over two query subplans."""

    op: str
    left: PhysicalNode
    right: PhysicalNode
    all: bool = False

    def children(self) -> list[PhysicalNode]:
        return [self.left, self.right]

    def description(self) -> str:
        return f"SetOp({self.op}{' ALL' if self.all else ''})"

    def execute(self, ctx) -> Batch:
        left = self.left.execute(ctx.fresh())
        right = self.right.execute(ctx.fresh())
        ctx.checkpoint()
        if len(left.slots) != len(right.slots):
            raise ExecutionError(
                f"Set operation requires matching column counts "
                f"({len(left.slots)} vs {len(right.slots)})"
            )
        left_rows = left.rows()
        right_rows = right.rows()
        if self.op == "UNION":
            rows = left_rows + right_rows
            if not self.all:
                rows = dedupe_rows(rows)
        elif self.op == "INTERSECT":
            right_set = set(right_rows)
            rows = [row for row in left_rows if row in right_set]
            if not self.all:
                rows = dedupe_rows(rows)
        elif self.op == "EXCEPT":
            right_set = set(right_rows)
            rows = [row for row in left_rows if row not in right_set]
            if not self.all:
                rows = dedupe_rows(rows)
        else:
            raise ExecutionError(f"Unknown set operation {self.op!r}")
        if left.slots:
            columns = [list(column) for column in zip(*rows)] if rows else [
                [] for _ in left.slots
            ]
        else:
            columns = []
        return Batch(slots=left.slots, columns=columns, length=len(rows))
