"""Logical plan nodes.

The planner lowers a SELECT AST to a tree of these nodes.  The plan mirrors
the execution order the executor follows (FROM → WHERE → GROUP BY/HAVING →
SELECT → DISTINCT → ORDER BY → LIMIT) and is primarily used for inspection —
``Catalog.explain`` renders it, and tests assert on plan shapes — while the
executor interprets the analyzed AST directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.sql.ast_nodes import OrderItem, SelectItem, SqlNode
from repro.sql.printer import to_sql


@dataclass
class PlanNode:
    """Base class of logical plan operators."""

    def children(self) -> list["PlanNode"]:
        return []

    def description(self) -> str:
        return type(self).__name__

    def pretty(self, indent: int = 0) -> str:
        """Render the plan subtree as an indented text block."""
        lines = ["  " * indent + self.description()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def walk(self) -> Iterator["PlanNode"]:
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass
class ScanNode(PlanNode):
    """Scan of a base table (or CTE materialization)."""

    table_name: str
    binding_name: str

    def description(self) -> str:
        alias = f" AS {self.binding_name}" if self.binding_name != self.table_name else ""
        return f"Scan({self.table_name}{alias})"


@dataclass
class DerivedScanNode(PlanNode):
    """Scan of a derived table ``(SELECT ...) AS alias``."""

    alias: str
    input: PlanNode = field(default=None)  # type: ignore[assignment]

    def children(self) -> list[PlanNode]:
        return [self.input] if self.input is not None else []

    def description(self) -> str:
        return f"DerivedScan({self.alias})"


@dataclass
class JoinNode(PlanNode):
    """Join of two plan subtrees."""

    left: PlanNode
    right: PlanNode
    join_type: str = "INNER"
    condition: SqlNode | None = None
    using: list[str] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def description(self) -> str:
        if self.condition is not None:
            return f"Join({self.join_type}, on={to_sql(self.condition)})"
        if self.using:
            return f"Join({self.join_type}, using={self.using})"
        return f"Join({self.join_type})"


@dataclass
class FilterNode(PlanNode):
    """WHERE or HAVING filter."""

    input: PlanNode
    predicate: SqlNode
    phase: str = "where"

    def children(self) -> list[PlanNode]:
        return [self.input]

    def description(self) -> str:
        return f"Filter[{self.phase}]({to_sql(self.predicate)})"


@dataclass
class AggregateNode(PlanNode):
    """GROUP BY aggregation (or a single implicit group)."""

    input: PlanNode
    group_by: list[SqlNode] = field(default_factory=list)
    aggregates: list[SqlNode] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        return [self.input]

    def description(self) -> str:
        groups = ", ".join(to_sql(expr) for expr in self.group_by) or "<all rows>"
        aggs = ", ".join(to_sql(expr) for expr in self.aggregates)
        return f"Aggregate(group_by=[{groups}], aggregates=[{aggs}])"


@dataclass
class ProjectNode(PlanNode):
    """SELECT-list projection."""

    input: PlanNode
    items: list[SelectItem] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        return [self.input]

    def description(self) -> str:
        rendered = ", ".join(
            to_sql(item.expr) + (f" AS {item.alias}" if item.alias else "") for item in self.items
        )
        return f"Project({rendered})"


@dataclass
class DistinctNode(PlanNode):
    """SELECT DISTINCT de-duplication."""

    input: PlanNode

    def children(self) -> list[PlanNode]:
        return [self.input]


@dataclass
class SortNode(PlanNode):
    """ORDER BY."""

    input: PlanNode
    order_by: list[OrderItem] = field(default_factory=list)

    def children(self) -> list[PlanNode]:
        return [self.input]

    def description(self) -> str:
        keys = ", ".join(
            to_sql(item.expr) + (" DESC" if item.descending else "") for item in self.order_by
        )
        return f"Sort({keys})"


@dataclass
class LimitNode(PlanNode):
    """LIMIT / OFFSET."""

    input: PlanNode
    limit: int | None = None
    offset: int | None = None

    def children(self) -> list[PlanNode]:
        return [self.input]

    def description(self) -> str:
        return f"Limit(limit={self.limit}, offset={self.offset})"


@dataclass
class SetOpNode(PlanNode):
    """UNION / INTERSECT / EXCEPT."""

    op: str
    left: PlanNode
    right: PlanNode
    all: bool = False

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def description(self) -> str:
        return f"SetOp({self.op}{' ALL' if self.all else ''})"
