"""Column-oriented in-memory table and query-result containers.

The engine stores each table column-major: one :class:`~repro.engine.column.Column`
per attribute, each owning its value vector, null mask and incrementally
maintained statistics (dtype tag, comparison-safe value type, min/max range,
distinct set).  Scans hand the raw value vectors to the vectorized executor
zero-copy; ``rows()``/``to_dicts()`` are derived views materialized on demand.
Query results reuse the same representation plus the inferred
:class:`~repro.sql.schema.ResultSchema`.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.engine.column import Column
from repro.errors import CatalogError, EngineError
from repro.sql.schema import AttributeRole, ColumnSchema, DataType, ResultSchema, TableSchema


def infer_column_type(values: Iterable[Any]) -> DataType:
    """Infer the least-upper-bound storage type of a column's values."""
    inferred = DataType.NULL
    for value in values:
        inferred = DataType.unify(inferred, DataType.of_value(value))
    return inferred


def infer_column_role(
    data_type: DataType, values: Sequence[Any], distinct_count: int | None = None
) -> AttributeRole:
    """Infer the visualization role of a column from type and cardinality.

    ``distinct_count`` lets callers that already know the cardinality (e.g. a
    :class:`Table` with maintained statistics) skip rebuilding the distinct set.
    """
    if distinct_count is None:
        non_null = {value for value in values if value is not None}
        distinct_count = len(non_null)
    return AttributeRole.from_data_type(data_type, distinct_count)


class Table:
    """An in-memory, column-oriented relational table.

    Storage is column-major: one :class:`Column` per attribute.  Mutations go
    through :meth:`append`/:meth:`extend`, which keep each column's null mask
    and statistics in step and bump the data-version counter consulted by the
    plan/result caches.

    Args:
        name: Table name used in the catalog and in FROM clauses.
        columns: Ordered column names.
        rows: Row tuples/lists; every row must have ``len(columns)`` values.
        schema: Optional explicit schema; inferred from the data otherwise.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[Any]] = (),
        schema: TableSchema | None = None,
    ) -> None:
        self.name = name
        self.column_names = list(columns)
        if len(set(self.column_names)) != len(self.column_names):
            raise CatalogError(f"Duplicate column names in table {name!r}")
        self._columns: dict[str, Column] = {column: Column() for column in self.column_names}
        self._data_version = 0
        # Sorted distinct lists are not incrementally maintainable (an append
        # can land anywhere), so they stay version-memoized; the underlying
        # distinct *set* lives in the column statistics and is incremental.
        self._distinct_memo: dict[str, tuple[int, list[Any]]] = {}
        self._schema_memo: tuple[int, TableSchema] | None = None
        self._explicit_schema = schema
        self._frozen = False
        self.extend(rows)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_rows(cls, name: str, columns: Sequence[str], rows: Iterable[Sequence[Any]]) -> "Table":
        return cls(name=name, columns=columns, rows=rows)

    @classmethod
    def from_dicts(cls, name: str, records: Sequence[dict[str, Any]]) -> "Table":
        """Build a table from a list of records (dicts sharing the same keys)."""
        if not records:
            raise EngineError("from_dicts requires at least one record to infer columns")
        columns = list(records[0].keys())
        rows = [[record.get(column) for column in columns] for record in records]
        return cls(name=name, columns=columns, rows=rows)

    @classmethod
    def from_columns(
        cls, name: str, columns: dict[str, Sequence[Any]], adopt: bool = False
    ) -> "Table":
        """Build a table directly from named column sequences (column-major).

        With ``adopt=True`` the provided lists become the table's backing
        storage without a copy; callers hand over ownership and must not
        mutate them afterwards.  The engine's ingest paths (CSV, dataset
        generators, CTE materialization) use adoption to make loading a
        pure column hand-off.
        """
        names = list(columns.keys())
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise EngineError(f"Column lengths differ in table {name!r}: {sorted(lengths)}")
        table = cls(name=name, columns=names)
        table._columns = {
            column: Column(values, adopt=adopt) for column, values in columns.items()
        }
        table._data_version += 1
        return table

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def append(self, row: Sequence[Any]) -> None:
        """Append one row, updating null masks and statistics incrementally."""
        if self._frozen:
            raise EngineError(
                f"Table {self.name!r} is frozen (pinned by a catalog snapshot); "
                f"write through Catalog.append_rows / register(replace=True) instead"
            )
        if len(row) != len(self.column_names):
            raise EngineError(
                f"Row width {len(row)} does not match table {self.name!r} "
                f"width {len(self.column_names)}"
            )
        for column, value in zip(self.column_names, row):
            self._columns[column].append(value)
        self._data_version += 1

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append many rows."""
        for row in rows:
            self.append(row)

    @property
    def data_version(self) -> int:
        """Monotonic counter bumped by every mutation (used for cache keys)."""
        return self._data_version

    # ------------------------------------------------------------------ #
    # Snapshot support
    # ------------------------------------------------------------------ #

    @property
    def frozen(self) -> bool:
        """True once the table was pinned by a catalog snapshot."""
        return self._frozen

    def freeze(self) -> None:
        """Make the table immutable (idempotent).

        Pinning a :class:`~repro.engine.catalog.CatalogSnapshot` freezes the
        pinned tables so that an in-place ``append`` *starting after the pin*
        raises instead of corrupting the snapshot.  This is a tripwire for
        misuse, not a synchronization primitive: the flag is read without a
        lock, so an append already past the check when ``freeze`` runs still
        completes — in-place mutation concurrent with readers is unsupported
        full stop.  Concurrent writers must use the catalog's copy-on-write
        path (:meth:`~repro.engine.catalog.Catalog.append_rows`), which
        clones the frozen table, extends the clone and swaps it in
        atomically.
        """
        self._frozen = True

    def clone(self, name: str | None = None) -> "Table":
        """A deep, *unfrozen* copy sharing immutable values but no containers.

        Column clones carry the incremental null masks and statistics forward,
        so a copy-on-write swap does not degrade a hot table to the lazy
        rebuild path.
        """
        clone = Table(name=name or self.name, columns=self.column_names, schema=self._explicit_schema)
        clone._columns = {column: store.clone() for column, store in self._columns.items()}
        clone._data_version = self._data_version
        return clone

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    @property
    def row_count(self) -> int:
        if not self.column_names:
            return 0
        return len(self._columns[self.column_names[0]])

    def column(self, name: str) -> list[Any]:
        """Return a copy of the values of one column.

        The copy keeps callers from mutating table storage behind the back of
        the data-version counter (which would leave stale statistics and stale
        query-cache entries).
        """
        return list(self.column_data(name))

    def column_data(self, name: str) -> list[Any]:
        """The live internal value vector of one column — read-only by contract.

        Used by the scan operator for zero-copy batches; callers must never
        mutate the returned list (use :meth:`append`/:meth:`extend`).
        """
        return self.column_store(name).values

    def column_store(self, name: str) -> Column:
        """The full :class:`Column` (values + null mask + statistics)."""
        store = self._columns.get(name)
        if store is None:
            raise CatalogError(f"Table {self.name!r} has no column {name!r}")
        return store

    def null_count(self, name: str) -> int:
        """Number of NULLs in one column (maintained eagerly)."""
        return self.column_store(name).null_count

    def null_mask(self, name: str) -> list[bool]:
        """True-where-NULL mask of one column — read-only by contract."""
        return self.column_store(name).null_mask()

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def warm_stats(self) -> None:
        """Force every column's statistics block and null count into cache.

        One O(data) pass the *first* time; afterwards the incremental
        maintenance (``append`` observes, ``clone`` carries forward) keeps
        the blocks warm, so repeat calls are O(columns).  The snapshot
        shipping path calls this before pickling so worker processes receive
        ready-to-use statistics instead of each recomputing them.

        Secondary index tails are sealed here too, so the pickled bytes ship
        warm immutable index segments (which every downstream clone shares)
        the same way they ship warm statistics.
        """
        for store in self._columns.values():
            store.stats()
            _ = store.null_count
            store.seal_indexes()

    # ------------------------------------------------------------------ #
    # Secondary indexes
    # ------------------------------------------------------------------ #

    def create_index(self, column: str, kind: str) -> None:
        """Build a secondary index (``"hash"`` or ``"ordered"``) on a column.

        Safe on frozen/snapshot-pinned tables: an index is derived state,
        built fully and published atomically, and clones inherit it (sharing
        the sealed segments) through :meth:`Column.clone`.
        """
        self.column_store(column).create_index(kind)

    def column_index(self, column: str, kind: str):
        """The column's index of ``kind``, or None (unknown columns included)."""
        store = self._columns.get(column)
        return store.index(kind) if store is not None else None

    def indexed_columns(self) -> dict[str, tuple[str, ...]]:
        """Map of column name -> index kinds present (diagnostics/tests)."""
        return {
            name: store.index_kinds()
            for name, store in self._columns.items()
            if store.index_kinds()
        }

    def rows(self) -> Iterator[tuple[Any, ...]]:
        """Iterate over rows as tuples (a derived view of the column vectors)."""
        columns = [self._columns[name].values for name in self.column_names]
        for values in zip(*columns) if columns else iter(()):
            yield values

    def row(self, index: int) -> tuple[Any, ...]:
        """Return one row by position."""
        if index < 0 or index >= self.row_count:
            raise EngineError(f"Row index {index} out of range for table {self.name!r}")
        return tuple(self._columns[name].values[index] for name in self.column_names)

    def to_dicts(self) -> list[dict[str, Any]]:
        """Materialize rows as dictionaries."""
        return [dict(zip(self.column_names, row)) for row in self.rows()]

    def schema(self) -> TableSchema:
        """Return the (explicit or inferred) table schema (memoized).

        Inference reads each column's maintained dtype tag and distinct count,
        so rebuilding the schema after a mutation is O(columns), not O(data).
        """
        if self._explicit_schema is not None:
            return self._explicit_schema
        if self._schema_memo is not None and self._schema_memo[0] == self._data_version:
            return self._schema_memo[1]
        columns = []
        for name in self.column_names:
            store = self._columns[name]
            data_type = store.dtype()
            role = AttributeRole.from_data_type(data_type, store.distinct_count())
            columns.append(ColumnSchema(name=name, data_type=data_type, role=role))
        schema = TableSchema(name=self.name, columns=tuple(columns))
        self._schema_memo = (self._data_version, schema)
        return schema

    def _distinct_sorted(self, column: str) -> list[Any]:
        memo = self._distinct_memo.get(column)
        if memo is not None and memo[0] == self._data_version:
            return memo[1]
        values = self.column_store(column).distinct_set()
        try:
            ordered = sorted(values)
        except TypeError:
            ordered = sorted(values, key=repr)
        self._distinct_memo[column] = (self._data_version, ordered)
        return ordered

    def distinct_values(self, column: str) -> list[Any]:
        """Distinct non-null values of a column, sorted when orderable."""
        return list(self._distinct_sorted(column))

    def distinct_count(self, column: str) -> int:
        """Number of distinct non-null values of a column (maintained)."""
        return self.column_store(column).distinct_count()

    def value_type(self, column: str) -> DataType | None:
        """The comparison-safe storage type of a column's values, or None.

        Unlike :func:`infer_column_type`, which unifies mixed columns into
        ``TEXT``, this statistic answers the question the logical optimizer
        asks: *can every non-null value of this column be compared against a
        value of the reported type without a runtime type error?*  Columns
        mixing comparison groups (numbers alongside strings) report ``None``
        so the optimizer refuses to move predicates over them.
        """
        return self.column_store(column).value_type()

    def value_range(self, column: str) -> tuple[Any, Any] | None:
        """(min, max) of a column's non-null values, or None when empty."""
        return self.column_store(column).value_range()

    def memory_footprint(self) -> int:
        """Approximate bytes held by the column storage (vectors + containers)."""
        import sys

        total = 0
        for store in self._columns.values():
            total += sys.getsizeof(store.values)
            seen: set[int] = set()
            for value in store.values:
                identity = id(value)
                if identity not in seen:
                    seen.add(identity)
                    total += sys.getsizeof(value)
        return total

    def __len__(self) -> int:
        return self.row_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, columns={self.column_names}, rows={self.row_count})"


class QueryResult:
    """The result of executing a query, stored column-major.

    The executor hands results over as column vectors; the row-tuple view is
    **derived lazily** the first time ``rows`` is read (and memoized), so
    consumers that read columns — chart data binding, domain construction —
    never pay for a row pivot.  Results built from rows (tests, cache copies)
    behave exactly as before.

    Attributes:
        columns: Output column names, in SELECT order.
        rows: Result rows as tuples (lazily derived from the column vectors).
        schema: The inferred result schema (types and visualization roles).
    """

    __slots__ = ("columns", "schema", "_rows", "_column_data", "_row_count")

    def __init__(
        self,
        columns: list[str],
        rows: list[tuple[Any, ...]] | None = None,
        schema: ResultSchema | None = None,
        column_data: list[list[Any]] | None = None,
        row_count: int | None = None,
    ) -> None:
        self.columns = columns
        self.schema = schema
        if rows is not None:
            self._rows: list[tuple[Any, ...]] | None = (
                rows if type(rows) is list else list(rows)
            )
            self._column_data: list[list[Any]] | None = None
            self._row_count = len(self._rows)
        elif column_data is not None:
            self._rows = None
            self._column_data = column_data
            if row_count is not None:
                self._row_count = row_count
            else:
                self._row_count = len(column_data[0]) if column_data else 0
        else:
            raise EngineError("QueryResult requires either rows or column_data")

    @property
    def rows(self) -> list[tuple[Any, ...]]:
        """Row tuples, pivoted from the column vectors on first access."""
        if self._rows is None:
            columns = self._column_data or []
            if columns:
                self._rows = list(zip(*columns))
            else:
                self._rows = [() for _ in range(self._row_count)]
        return self._rows

    @property
    def row_count(self) -> int:
        if self._rows is not None:
            return len(self._rows)
        return self._row_count

    def column_values(self, name: str) -> list[Any]:
        """All values of one output column."""
        if name not in self.columns:
            raise EngineError(f"Result has no column {name!r}")
        index = self.columns.index(name)
        if self._rows is None and self._column_data is not None:
            return list(self._column_data[index])
        return [row[index] for row in self.rows]

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def to_table(self, name: str = "result") -> Table:
        """Convert the result into a Table (used for chart data binding)."""
        if self._rows is None and self._column_data is not None:
            if len(set(self.columns)) == len(self.columns):
                return Table.from_columns(name, dict(zip(self.columns, self._column_data)))
        return Table(name=name, columns=self.columns, rows=self.rows, schema=None)

    def copy(self) -> "QueryResult":
        """An independent copy sharing immutable values but no containers.

        A still-lazy result stays lazy: the column vectors are copied
        shallowly and the row pivot remains deferred, so caching a result
        (the query cache copies on store and on hit) does not force the
        pivot or downgrade the copy to row-backed storage.
        """
        if self._rows is None and self._column_data is not None:
            return QueryResult(
                columns=list(self.columns),
                schema=self.schema,
                column_data=[list(column) for column in self._column_data],
                row_count=self._row_count,
            )
        return QueryResult(columns=list(self.columns), rows=list(self.rows), schema=self.schema)

    def first(self) -> tuple[Any, ...] | None:
        return self.rows[0] if self.rows else None

    def __len__(self) -> int:
        return self.row_count

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryResult(columns={self.columns}, rows={self.row_count})"


def result_from_table(table: Table) -> QueryResult:
    """Wrap a full table scan as a QueryResult (column hand-off, no pivot)."""
    schema = table.schema()
    return QueryResult(
        columns=list(table.column_names),
        schema=ResultSchema(columns=schema.columns),
        column_data=[list(table.column_data(name)) for name in table.column_names],
        row_count=table.row_count,
    )
