"""Column-oriented in-memory table and query-result containers.

The engine stores each table as a list of named columns (plain Python lists),
which keeps scans, projections and aggregation cache-friendly and makes schema
inference trivial.  Query results reuse the same representation plus the
inferred :class:`~repro.sql.schema.ResultSchema`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import CatalogError, EngineError
from repro.sql.schema import AttributeRole, ColumnSchema, DataType, ResultSchema, TableSchema


def infer_column_type(values: Iterable[Any]) -> DataType:
    """Infer the least-upper-bound storage type of a column's values."""
    inferred = DataType.NULL
    for value in values:
        inferred = DataType.unify(inferred, DataType.of_value(value))
    return inferred


def infer_column_role(
    data_type: DataType, values: Sequence[Any], distinct_count: int | None = None
) -> AttributeRole:
    """Infer the visualization role of a column from type and cardinality.

    ``distinct_count`` lets callers that already know the cardinality (e.g. a
    :class:`Table` with memoized statistics) skip rebuilding the distinct set.
    """
    if distinct_count is None:
        non_null = {value for value in values if value is not None}
        distinct_count = len(non_null)
    return AttributeRole.from_data_type(data_type, distinct_count)


class Table:
    """An in-memory, column-oriented relational table.

    Args:
        name: Table name used in the catalog and in FROM clauses.
        columns: Ordered column names.
        rows: Row tuples/lists; every row must have ``len(columns)`` values.
        schema: Optional explicit schema; inferred from the data otherwise.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[Any]] = (),
        schema: TableSchema | None = None,
    ) -> None:
        self.name = name
        self.column_names = list(columns)
        if len(set(self.column_names)) != len(self.column_names):
            raise CatalogError(f"Duplicate column names in table {name!r}")
        self._columns: dict[str, list[Any]] = {column: [] for column in self.column_names}
        self._data_version = 0
        # Statistics memos, each keyed by the data version they were computed
        # at: distinct sets are expensive to rebuild and are consulted by role
        # inference, cost statistics and widget-domain construction.
        self._distinct_memo: dict[str, tuple[int, list[Any]]] = {}
        self._range_memo: dict[str, tuple[int, tuple[Any, Any] | None]] = {}
        self._value_type_memo: dict[str, tuple[int, DataType | None]] = {}
        self._schema_memo: tuple[int, TableSchema] | None = None
        for row in rows:
            self.append(row)
        self._explicit_schema = schema

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_rows(cls, name: str, columns: Sequence[str], rows: Iterable[Sequence[Any]]) -> "Table":
        return cls(name=name, columns=columns, rows=rows)

    @classmethod
    def from_dicts(cls, name: str, records: Sequence[dict[str, Any]]) -> "Table":
        """Build a table from a list of records (dicts sharing the same keys)."""
        if not records:
            raise EngineError("from_dicts requires at least one record to infer columns")
        columns = list(records[0].keys())
        rows = [[record.get(column) for column in columns] for record in records]
        return cls(name=name, columns=columns, rows=rows)

    @classmethod
    def from_columns(cls, name: str, columns: dict[str, Sequence[Any]]) -> "Table":
        """Build a table directly from named column sequences."""
        names = list(columns.keys())
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise EngineError(f"Column lengths differ in table {name!r}: {sorted(lengths)}")
        table = cls(name=name, columns=names)
        table._columns = {column: list(values) for column, values in columns.items()}
        table._data_version += 1
        return table

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def append(self, row: Sequence[Any]) -> None:
        """Append one row."""
        if len(row) != len(self.column_names):
            raise EngineError(
                f"Row width {len(row)} does not match table {self.name!r} "
                f"width {len(self.column_names)}"
            )
        for column, value in zip(self.column_names, row):
            self._columns[column].append(value)
        self._data_version += 1

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append many rows."""
        for row in rows:
            self.append(row)

    @property
    def data_version(self) -> int:
        """Monotonic counter bumped by every mutation (used for cache keys)."""
        return self._data_version

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    @property
    def row_count(self) -> int:
        if not self.column_names:
            return 0
        return len(self._columns[self.column_names[0]])

    def column(self, name: str) -> list[Any]:
        """Return a copy of the values of one column.

        The copy keeps callers from mutating table storage behind the back of
        the data-version counter (which would leave stale statistics memos and
        stale query-cache entries).
        """
        return list(self.column_data(name))

    def column_data(self, name: str) -> list[Any]:
        """The live internal value list of one column — read-only by contract.

        Used by the scan operator for zero-copy batches; callers must never
        mutate the returned list (use :meth:`append`/:meth:`extend`).
        """
        if name not in self._columns:
            raise CatalogError(f"Table {self.name!r} has no column {name!r}")
        return self._columns[name]

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def rows(self) -> Iterator[tuple[Any, ...]]:
        """Iterate over rows as tuples."""
        columns = [self._columns[name] for name in self.column_names]
        for values in zip(*columns) if columns else iter(()):
            yield values

    def row(self, index: int) -> tuple[Any, ...]:
        """Return one row by position."""
        if index < 0 or index >= self.row_count:
            raise EngineError(f"Row index {index} out of range for table {self.name!r}")
        return tuple(self._columns[name][index] for name in self.column_names)

    def to_dicts(self) -> list[dict[str, Any]]:
        """Materialize rows as dictionaries."""
        return [dict(zip(self.column_names, row)) for row in self.rows()]

    def schema(self) -> TableSchema:
        """Return the (explicit or inferred) table schema (memoized)."""
        if self._explicit_schema is not None:
            return self._explicit_schema
        if self._schema_memo is not None and self._schema_memo[0] == self._data_version:
            return self._schema_memo[1]
        columns = []
        for name in self.column_names:
            values = self._columns[name]
            data_type = infer_column_type(values)
            role = infer_column_role(data_type, values, distinct_count=self.distinct_count(name))
            columns.append(ColumnSchema(name=name, data_type=data_type, role=role))
        schema = TableSchema(name=self.name, columns=tuple(columns))
        self._schema_memo = (self._data_version, schema)
        return schema

    def _distinct_sorted(self, column: str) -> list[Any]:
        memo = self._distinct_memo.get(column)
        if memo is not None and memo[0] == self._data_version:
            return memo[1]
        values = {value for value in self.column_data(column) if value is not None}
        try:
            ordered = sorted(values)
        except TypeError:
            ordered = sorted(values, key=repr)
        self._distinct_memo[column] = (self._data_version, ordered)
        return ordered

    def distinct_values(self, column: str) -> list[Any]:
        """Distinct non-null values of a column, sorted when orderable."""
        return list(self._distinct_sorted(column))

    def distinct_count(self, column: str) -> int:
        """Number of distinct non-null values of a column (memoized)."""
        return len(self._distinct_sorted(column))

    def value_type(self, column: str) -> DataType | None:
        """The comparison-safe storage type of a column's values, or None.

        Unlike :func:`infer_column_type`, which unifies mixed columns into
        ``TEXT``, this memo answers the question the logical optimizer asks:
        *can every non-null value of this column be compared against a value of
        the reported type without a runtime type error?*  Columns mixing
        comparison groups (numbers alongside strings) report ``None`` so the
        optimizer refuses to move predicates over them.
        """
        memo = self._value_type_memo.get(column)
        if memo is not None and memo[0] == self._data_version:
            return memo[1]
        result: DataType | None = DataType.NULL
        for value in self.column_data(column):
            if value is None:
                continue
            candidate = DataType.of_value(value)
            if result is DataType.NULL or candidate is result:
                result = candidate
                continue
            if {candidate, result} <= {DataType.INTEGER, DataType.FLOAT, DataType.BOOLEAN}:
                result = DataType.FLOAT if DataType.FLOAT in (candidate, result) else DataType.INTEGER
                continue
            if {candidate, result} <= {DataType.TEXT, DataType.DATE}:
                result = DataType.TEXT
                continue
            result = None
            break
        self._value_type_memo[column] = (self._data_version, result)
        return result

    def value_range(self, column: str) -> tuple[Any, Any] | None:
        """(min, max) of a column's non-null values, or None when empty."""
        memo = self._range_memo.get(column)
        if memo is not None and memo[0] == self._data_version:
            return memo[1]
        values = [value for value in self.column_data(column) if value is not None]
        result = (min(values), max(values)) if values else None
        self._range_memo[column] = (self._data_version, result)
        return result

    def __len__(self) -> int:
        return self.row_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, columns={self.column_names}, rows={self.row_count})"


@dataclass
class QueryResult:
    """The materialized result of executing a query.

    Attributes:
        columns: Output column names, in SELECT order.
        rows: Result rows as tuples.
        schema: The inferred result schema (types and visualization roles).
    """

    columns: list[str]
    rows: list[tuple[Any, ...]]
    schema: ResultSchema

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def column_values(self, name: str) -> list[Any]:
        """All values of one output column."""
        if name not in self.columns:
            raise EngineError(f"Result has no column {name!r}")
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def to_table(self, name: str = "result") -> Table:
        """Convert the result into a Table (used for chart data binding)."""
        return Table(name=name, columns=self.columns, rows=self.rows, schema=None)

    def first(self) -> tuple[Any, ...] | None:
        return self.rows[0] if self.rows else None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.rows)


def result_from_table(table: Table) -> QueryResult:
    """Wrap a full table scan as a QueryResult."""
    schema = table.schema()
    return QueryResult(
        columns=list(table.column_names),
        rows=list(table.rows()),
        schema=ResultSchema(columns=schema.columns),
    )
