"""Column-oriented in-memory table and query-result containers.

The engine stores each table as a list of named columns (plain Python lists),
which keeps scans, projections and aggregation cache-friendly and makes schema
inference trivial.  Query results reuse the same representation plus the
inferred :class:`~repro.sql.schema.ResultSchema`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import CatalogError, EngineError
from repro.sql.schema import AttributeRole, ColumnSchema, DataType, ResultSchema, TableSchema


def infer_column_type(values: Iterable[Any]) -> DataType:
    """Infer the least-upper-bound storage type of a column's values."""
    inferred = DataType.NULL
    for value in values:
        inferred = DataType.unify(inferred, DataType.of_value(value))
    return inferred


def infer_column_role(data_type: DataType, values: Sequence[Any]) -> AttributeRole:
    """Infer the visualization role of a column from type and cardinality."""
    non_null = [value for value in values if value is not None]
    distinct_count = len(set(non_null)) if non_null else 0
    return AttributeRole.from_data_type(data_type, distinct_count)


class Table:
    """An in-memory, column-oriented relational table.

    Args:
        name: Table name used in the catalog and in FROM clauses.
        columns: Ordered column names.
        rows: Row tuples/lists; every row must have ``len(columns)`` values.
        schema: Optional explicit schema; inferred from the data otherwise.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[Any]] = (),
        schema: TableSchema | None = None,
    ) -> None:
        self.name = name
        self.column_names = list(columns)
        if len(set(self.column_names)) != len(self.column_names):
            raise CatalogError(f"Duplicate column names in table {name!r}")
        self._columns: dict[str, list[Any]] = {column: [] for column in self.column_names}
        for row in rows:
            self.append(row)
        self._explicit_schema = schema

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_rows(cls, name: str, columns: Sequence[str], rows: Iterable[Sequence[Any]]) -> "Table":
        return cls(name=name, columns=columns, rows=rows)

    @classmethod
    def from_dicts(cls, name: str, records: Sequence[dict[str, Any]]) -> "Table":
        """Build a table from a list of records (dicts sharing the same keys)."""
        if not records:
            raise EngineError("from_dicts requires at least one record to infer columns")
        columns = list(records[0].keys())
        rows = [[record.get(column) for column in columns] for record in records]
        return cls(name=name, columns=columns, rows=rows)

    @classmethod
    def from_columns(cls, name: str, columns: dict[str, Sequence[Any]]) -> "Table":
        """Build a table directly from named column sequences."""
        names = list(columns.keys())
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise EngineError(f"Column lengths differ in table {name!r}: {sorted(lengths)}")
        table = cls(name=name, columns=names)
        table._columns = {column: list(values) for column, values in columns.items()}
        return table

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def append(self, row: Sequence[Any]) -> None:
        """Append one row."""
        if len(row) != len(self.column_names):
            raise EngineError(
                f"Row width {len(row)} does not match table {self.name!r} "
                f"width {len(self.column_names)}"
            )
        for column, value in zip(self.column_names, row):
            self._columns[column].append(value)

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append many rows."""
        for row in rows:
            self.append(row)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    @property
    def row_count(self) -> int:
        if not self.column_names:
            return 0
        return len(self._columns[self.column_names[0]])

    def column(self, name: str) -> list[Any]:
        """Return the values of one column."""
        if name not in self._columns:
            raise CatalogError(f"Table {self.name!r} has no column {name!r}")
        return self._columns[name]

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def rows(self) -> Iterator[tuple[Any, ...]]:
        """Iterate over rows as tuples."""
        columns = [self._columns[name] for name in self.column_names]
        for values in zip(*columns) if columns else iter(()):
            yield values

    def row(self, index: int) -> tuple[Any, ...]:
        """Return one row by position."""
        if index < 0 or index >= self.row_count:
            raise EngineError(f"Row index {index} out of range for table {self.name!r}")
        return tuple(self._columns[name][index] for name in self.column_names)

    def to_dicts(self) -> list[dict[str, Any]]:
        """Materialize rows as dictionaries."""
        return [dict(zip(self.column_names, row)) for row in self.rows()]

    def schema(self) -> TableSchema:
        """Return the (explicit or inferred) table schema."""
        if self._explicit_schema is not None:
            return self._explicit_schema
        columns = []
        for name in self.column_names:
            values = self._columns[name]
            data_type = infer_column_type(values)
            role = infer_column_role(data_type, values)
            columns.append(ColumnSchema(name=name, data_type=data_type, role=role))
        return TableSchema(name=self.name, columns=tuple(columns))

    def distinct_values(self, column: str) -> list[Any]:
        """Distinct non-null values of a column, sorted when orderable."""
        values = {value for value in self.column(column) if value is not None}
        try:
            return sorted(values)
        except TypeError:
            return sorted(values, key=repr)

    def value_range(self, column: str) -> tuple[Any, Any] | None:
        """(min, max) of a column's non-null values, or None when empty."""
        values = [value for value in self.column(column) if value is not None]
        if not values:
            return None
        return min(values), max(values)

    def __len__(self) -> int:
        return self.row_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, columns={self.column_names}, rows={self.row_count})"


@dataclass
class QueryResult:
    """The materialized result of executing a query.

    Attributes:
        columns: Output column names, in SELECT order.
        rows: Result rows as tuples.
        schema: The inferred result schema (types and visualization roles).
    """

    columns: list[str]
    rows: list[tuple[Any, ...]]
    schema: ResultSchema

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def column_values(self, name: str) -> list[Any]:
        """All values of one output column."""
        if name not in self.columns:
            raise EngineError(f"Result has no column {name!r}")
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def to_table(self, name: str = "result") -> Table:
        """Convert the result into a Table (used for chart data binding)."""
        return Table(name=name, columns=self.columns, rows=self.rows, schema=None)

    def first(self) -> tuple[Any, ...] | None:
        return self.rows[0] if self.rows else None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.rows)


def result_from_table(table: Table) -> QueryResult:
    """Wrap a full table scan as a QueryResult."""
    schema = table.schema()
    return QueryResult(
        columns=list(table.column_names),
        rows=list(table.rows()),
        schema=ResultSchema(columns=schema.columns),
    )
