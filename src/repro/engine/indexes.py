"""Secondary column indexes: hash (point) and ordered (range) access paths.

Both index kinds follow the same *segmented* layout, chosen so that indexes
obey the two contracts the rest of the storage layer already lives by:

* **O(1)-amortized maintenance on append** — exactly like the
  :class:`~repro.engine.column.ColumnStats` fold-forward protocol.  New
  entries land in a small mutable *tail*; when the tail grows past a bound
  (or the column is cloned/pickled) it is *sealed* into an immutable segment.
  Sealing uses logarithmic merging (a new segment absorbs older segments of
  comparable size), so every entry is re-merged O(log n) times over the
  index's lifetime and no append ever pays an O(n) rebuild.
* **Sharing across copy-on-write clones** — sealed segments are immutable by
  contract and are *shared* between a column and its clones (the serving
  layer clones every table on the copy-on-write write path).  ``clone()``
  seals the tail and hands the sealed-segment tuple to the copy; afterwards
  each side appends into its own private tail and merges into fresh
  containers, never mutating a shared segment.

Concurrency: the composite ``(segments, tail)`` state lives in a single slot
that is read once per lookup and replaced atomically by ``seal()``, so
sealing (which the snapshot-shipping path triggers on live, shared tables)
is safe against concurrent readers.  In-place ``add`` concurrent with
readers is unsupported, matching the engine-wide table mutation contract
(see :meth:`~repro.engine.table.Table.freeze`).

Degradation mirrors the statistics blocks: values that break an index's
invariant (unhashable values for the hash index, pairwise-incomparable
mixtures for the ordered index) *poison* it — lookups then return ``None``
and the executor falls back to the full scan, so a poisoned index can never
produce wrong answers.  ``covered`` counts the rows folded in; an index
whose coverage disagrees with the column length (it cannot under normal
operation, but the executor checks anyway) is treated as absent.

Lookups return row positions in **ascending order** — the same order a
sequential scan visits rows — so an index scan is row-order-equivalent to
the filter it replaces.  Segments cover contiguous, monotonically increasing
row ranges (only time-adjacent segments are ever merged), which keeps the
concatenation of per-segment matches globally sorted without a final sort.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from heapq import merge as _heap_merge
from typing import Any, Iterable, Sequence

from repro.errors import EngineError

HASH = "hash"
ORDERED = "ordered"

#: Index kinds accepted by ``Column.create_index`` / ``Table.create_index``.
INDEX_KINDS = (HASH, ORDERED)

#: Entries the ordered index buffers before sealing the tail into a sorted
#: segment.  Lookups scan the tail linearly, so this bounds the non-bisected
#: slice of every range lookup; appends pay the O(t log t) sort once per
#: ``ORDERED_TAIL_LIMIT`` entries (amortized O(log) per append).
ORDERED_TAIL_LIMIT = 1024

#: Sentinel for an unbounded end of a range lookup (``None`` is a legal SQL
#: literal and must not double as "no bound").
UNBOUNDED = object()


class ColumnIndex:
    """Shared shape of both index kinds (segments tuple + mutable tail).

    ``_state`` is ``(segments, tail)`` — or ``None`` once the index is
    poisoned.  It is the *only* mutable reference lookups read, captured once
    per lookup, so ``seal()`` can atomically publish a new state under live
    readers.  ``covered`` counts every row folded in (NULLs included), which
    lets the executor cheaply verify the index spans the whole column.
    """

    __slots__ = ("_state", "covered")

    kind: str = ""

    def __init__(self) -> None:
        self._state: tuple[tuple, Any] | None = ((), self._empty_tail())
        self.covered = 0

    # -- construction ---------------------------------------------------- #

    @classmethod
    def build(cls, values: Iterable[Any]) -> "ColumnIndex":
        """Build an index over existing values (one pass, then one seal)."""
        index = cls()
        for position, value in enumerate(values):
            index.add(value, position)
        index.seal()
        return index

    # -- maintenance ----------------------------------------------------- #

    def add(self, value: Any, position: int) -> None:
        """Fold one appended value in (O(1) amortized; never raises).

        A value the index cannot hold poisons the whole index instead of
        raising, so ``Column.append`` stays exception-free no matter what is
        appended — there is no partially-folded state to observe afterwards.
        """
        self.covered += 1
        state = self._state
        if state is None or value is None:
            return
        try:
            self._add_to_tail(state[1], value, position)
        except TypeError:
            self.poison()

    def seal(self) -> None:
        """Fold the tail into the sealed segments (atomic publish).

        Idempotent and cheap when the tail is empty.  Called by ``clone``
        (so clones share only immutable segments), by ``Table.warm_stats``
        before snapshot pickling (so workers receive sealed segments), and
        internally when a tail outgrows its bound.
        """
        state = self._state
        if state is None:
            return
        segments, tail = state
        if not self._tail_len(tail):
            return
        try:
            new_segments = self._push_segment(list(segments), self._seal_tail(tail))
        except TypeError:
            self.poison()
            return
        self._state = (tuple(new_segments), self._empty_tail())

    def poison(self) -> None:
        """Drop all structures; lookups return None from now on."""
        self._state = None

    def clone(self) -> "ColumnIndex":
        """A copy sharing the sealed (immutable) segments — never a rebuild."""
        self.seal()
        other = type(self)()
        state = self._state
        other._state = None if state is None else (state[0], self._empty_tail())
        other.covered = self.covered
        return other

    # -- introspection --------------------------------------------------- #

    @property
    def poisoned(self) -> bool:
        return self._state is None

    @property
    def segments(self) -> tuple:
        """The sealed segment tuple (read-only; shared across clones)."""
        state = self._state
        return () if state is None else state[0]

    @property
    def tail_size(self) -> int:
        state = self._state
        return 0 if state is None else self._tail_len(state[1])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(poisoned={self.poisoned}, "
            f"segments={len(self.segments)}, tail={self.tail_size}, "
            f"covered={self.covered})"
        )

    # -- logarithmic segment merging ------------------------------------- #

    def _push_segment(self, segments: list, new_segment) -> list:
        """Append a sealed segment, merging comparable-size predecessors.

        Only *time-adjacent* segments merge, so each segment keeps covering
        a contiguous row range and per-segment matches concatenate in global
        row order.  The geometric size rule bounds total merge work at
        O(log n) re-merges per entry.
        """
        while segments and self._segment_len(segments[-1]) < 2 * self._segment_len(new_segment):
            new_segment = self._merge_segments(segments.pop(), new_segment)
        segments.append(new_segment)
        return segments

    # -- kind-specific hooks --------------------------------------------- #

    def _empty_tail(self):  # pragma: no cover - interface
        raise NotImplementedError

    def _tail_len(self, tail) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def _add_to_tail(self, tail, value, position) -> None:  # pragma: no cover
        raise NotImplementedError

    def _seal_tail(self, tail):  # pragma: no cover - interface
        raise NotImplementedError

    def _segment_len(self, segment) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def _merge_segments(self, older, newer):  # pragma: no cover - interface
        raise NotImplementedError


class HashIndex(ColumnIndex):
    """Point-lookup index: value -> ascending row positions.

    Segments are plain dicts mapping each non-null value to the list of row
    positions holding it.  Unhashable values poison the index (the same
    values poison the statistics distinct set).  Equality uses Python ``==``
    through dict lookup, matching the vectorized evaluator's ``=`` exactly
    (``1 == 1.0 == True`` collapse identically in both).
    """

    __slots__ = ()

    kind = HASH

    # -- hooks ----------------------------------------------------------- #

    def _empty_tail(self) -> dict:
        return {}

    def _tail_len(self, tail: dict) -> int:
        return len(tail)

    def _add_to_tail(self, tail: dict, value: Any, position: int) -> None:
        postings = tail.get(value)
        if postings is None:
            tail[value] = [position]
        else:
            postings.append(position)

    def _seal_tail(self, tail: dict) -> dict:
        return tail  # the dict itself seals; a fresh tail replaces it

    def _segment_len(self, segment: dict) -> int:
        return len(segment)

    def _merge_segments(self, older: dict, newer: dict) -> dict:
        merged = {key: list(postings) for key, postings in older.items()}
        for key, postings in newer.items():
            existing = merged.get(key)
            if existing is None:
                merged[key] = list(postings)
            else:
                existing.extend(postings)  # older rows < newer rows: stays sorted
        return merged

    # -- lookups --------------------------------------------------------- #

    def lookup_eq(self, value: Any) -> list[int] | None:
        """Ascending positions of rows equal to ``value`` (None: fall back)."""
        state = self._state
        if state is None or value is None:
            return None
        segments, tail = state
        out: list[int] = []
        try:
            for segment in segments:
                postings = segment.get(value)
                if postings:
                    out.extend(postings)
            postings = tail.get(value)
        except TypeError:  # unhashable probe value
            return None
        if postings:
            out.extend(postings)
        return out

    def lookup_in(self, values: Sequence[Any]) -> list[int] | None:
        """Ascending positions of rows equal to any of ``values``."""
        out: list[int] = []
        for value in values:
            matches = self.lookup_eq(value)
            if matches is None:
                return None
            out.extend(matches)
        if len(values) > 1:
            return sorted(set(out))  # IN lists may repeat values
        return out


class OrderedIndex(ColumnIndex):
    """Range index: sorted-key segments probed with ``bisect``.

    Each sealed segment is a ``(keys, rows)`` pair sorted by ``(key, row)``;
    a range lookup bisects every segment, sorts each segment's (small) match
    slice by row, and scans the bounded tail linearly.  Pairwise-incomparable
    value mixtures poison the index at seal/merge time — the same mixtures
    poison the min/max range statistic.
    """

    __slots__ = ()

    kind = ORDERED

    # -- hooks ----------------------------------------------------------- #

    def _empty_tail(self) -> list:
        return []

    def _tail_len(self, tail: list) -> int:
        return len(tail)

    def _add_to_tail(self, tail: list, value: Any, position: int) -> None:
        tail.append((value, position))
        if len(tail) >= ORDERED_TAIL_LIMIT:
            self.seal()

    def _seal_tail(self, tail: list) -> tuple[list, list]:
        ordered = sorted(tail)  # raises TypeError on mixed-type keys -> poison
        return [key for key, _ in ordered], [row for _, row in ordered]

    def _segment_len(self, segment: tuple[list, list]) -> int:
        return len(segment[0])

    def _merge_segments(
        self, older: tuple[list, list], newer: tuple[list, list]
    ) -> tuple[list, list]:
        old_keys, old_rows = older
        new_keys, new_rows = newer
        keys: list[Any] = []
        rows: list[int] = []
        i = j = 0
        old_len, new_len = len(old_keys), len(new_keys)
        while i < old_len and j < new_len:
            if new_keys[j] < old_keys[i]:  # TypeError on mixed types -> poison
                keys.append(new_keys[j])
                rows.append(new_rows[j])
                j += 1
            else:
                keys.append(old_keys[i])
                rows.append(old_rows[i])
                i += 1
        if i < old_len:
            keys.extend(old_keys[i:])
            rows.extend(old_rows[i:])
        if j < new_len:
            keys.extend(new_keys[j:])
            rows.extend(new_rows[j:])
        return keys, rows

    # -- lookups --------------------------------------------------------- #

    def lookup_eq(self, value: Any) -> list[int] | None:
        return self.lookup_range(value, value, True, True)

    def ordered_positions(self) -> list[int] | None:
        """All indexed row positions in ascending ``(key, row)`` order.

        Serves whole-column value-ordered scans (the window operator's sort
        elision): each sealed segment is already sorted by ``(key, row)``, so
        a k-way merge with the sorted tail yields the global order in one
        linear pass.  NULL rows are never indexed — callers must prove the
        column NULL-free (stats) before treating this as a total row order.
        Returns ``None`` when the index is poisoned or a key mixture turns
        out incomparable, so callers fall back to sorting.
        """
        state = self._state
        if state is None:
            return None
        segments, tail = state
        try:
            runs: list = [list(zip(keys, rows)) for keys, rows in segments]
            if tail:
                runs.append(sorted(tail))
            return [row for _, row in _heap_merge(*runs)]
        except TypeError:
            return None

    def lookup_range(
        self,
        low: Any = UNBOUNDED,
        high: Any = UNBOUNDED,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> list[int] | None:
        """Ascending positions of rows within the bounds (None: fall back).

        Bounds use :data:`UNBOUNDED` for open ends; a ``None`` bound always
        yields no matches (SQL comparisons against NULL select nothing).
        """
        state = self._state
        if state is None:
            return None
        if (low is None) or (high is None):
            return []
        segments, tail = state
        out: list[int] = []
        try:
            for keys, rows in segments:
                if low is UNBOUNDED:
                    lo = 0
                elif low_inclusive:
                    lo = bisect_left(keys, low)
                else:
                    lo = bisect_right(keys, low)
                if high is UNBOUNDED:
                    hi = len(keys)
                elif high_inclusive:
                    hi = bisect_right(keys, high)
                else:
                    hi = bisect_left(keys, high)
                if lo < hi:
                    out.extend(sorted(rows[lo:hi]))
            for value, row in tail:  # bounded by ORDERED_TAIL_LIMIT
                if low is not UNBOUNDED:
                    if low_inclusive:
                        if value < low:
                            continue
                    elif value <= low:
                        continue
                if high is not UNBOUNDED:
                    if high_inclusive:
                        if value > high:
                            continue
                    elif value >= high:
                        continue
                out.append(row)
        except TypeError:  # probe value incomparable with stored keys
            return None
        return out


_INDEX_CLASSES = {HASH: HashIndex, ORDERED: OrderedIndex}


def build_index(kind: str, values: Iterable[Any]) -> ColumnIndex:
    """Build a fresh index of ``kind`` over ``values``."""
    cls = _INDEX_CLASSES.get(kind)
    if cls is None:
        raise EngineError(f"Unknown index kind {kind!r} (expected one of {INDEX_KINDS})")
    return cls.build(values)
