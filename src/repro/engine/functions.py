"""Scalar SQL functions available to the expression evaluator.

All functions follow SQL NULL semantics: when any required argument is NULL
the result is NULL (except for functions such as ``coalesce`` whose purpose is
to handle NULLs).
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.errors import ExecutionError


def _null_safe(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Wrap a function so that any NULL argument yields NULL."""

    def wrapper(*args: Any) -> Any:
        if any(arg is None for arg in args):
            return None
        return fn(*args)

    return wrapper


def _substr(value: str, start: int, length: int | None = None) -> str:
    # SQL substr is 1-based; negative start counts from the end.
    text = str(value)
    if start > 0:
        begin = start - 1
    elif start < 0:
        begin = max(len(text) + start, 0)
    else:
        begin = 0
    if length is None:
        return text[begin:]
    if length < 0:
        return ""
    return text[begin : begin + length]


def _round(value: float, digits: int = 0) -> float:
    result = round(float(value) + 0.0, int(digits))
    return result


def _strftime(fmt: str, value: str) -> str:
    """Minimal strftime over ISO date strings (enough for %Y, %m, %d, %Y-%m)."""
    if len(value) < 10:
        raise ExecutionError(f"strftime expects an ISO date string, got {value!r}")
    year, month, day = value[:4], value[5:7], value[8:10]
    return (
        fmt.replace("%Y", year)
        .replace("%m", month)
        .replace("%d", day)
    )


def _date_trunc(unit: str, value: str) -> str:
    """Truncate an ISO date string to 'year' or 'month' granularity."""
    unit = unit.lower()
    if unit == "year":
        return f"{value[:4]}-01-01"
    if unit == "month":
        return f"{value[:7]}-01"
    if unit == "day":
        return value[:10]
    raise ExecutionError(f"Unsupported date_trunc unit {unit!r}")


def _coalesce(*args: Any) -> Any:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _nullif(first: Any, second: Any) -> Any:
    if first == second:
        return None
    return first


def _left(value: str, count: int) -> str:
    return str(value)[: max(int(count), 0)]


def _right(value: str, count: int) -> str:
    count = max(int(count), 0)
    return str(value)[-count:] if count else ""


#: Registry of scalar functions: lowercase name -> callable.
SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "abs": _null_safe(lambda x: abs(x)),
    "round": _null_safe(_round),
    "floor": _null_safe(lambda x: math.floor(x)),
    "ceil": _null_safe(lambda x: math.ceil(x)),
    "ceiling": _null_safe(lambda x: math.ceil(x)),
    "sqrt": _null_safe(lambda x: math.sqrt(x)),
    "ln": _null_safe(lambda x: math.log(x)),
    "log": _null_safe(lambda x: math.log10(x)),
    "exp": _null_safe(lambda x: math.exp(x)),
    "power": _null_safe(lambda x, y: math.pow(x, y)),
    "pow": _null_safe(lambda x, y: math.pow(x, y)),
    "mod": _null_safe(lambda x, y: x % y),
    "sign": _null_safe(lambda x: (x > 0) - (x < 0)),
    "lower": _null_safe(lambda s: str(s).lower()),
    "upper": _null_safe(lambda s: str(s).upper()),
    "length": _null_safe(lambda s: len(str(s))),
    "trim": _null_safe(lambda s: str(s).strip()),
    "ltrim": _null_safe(lambda s: str(s).lstrip()),
    "rtrim": _null_safe(lambda s: str(s).rstrip()),
    "substr": _null_safe(_substr),
    "substring": _null_safe(_substr),
    "replace": _null_safe(lambda s, old, new: str(s).replace(str(old), str(new))),
    "concat": lambda *args: "".join(str(a) for a in args if a is not None),
    "left": _null_safe(_left),
    "right": _null_safe(_right),
    "coalesce": _coalesce,
    "nullif": _nullif,
    "ifnull": lambda a, b: b if a is None else a,
    "strftime": _null_safe(_strftime),
    "date": _null_safe(lambda s: str(s)[:10]),
    "date_trunc": _null_safe(_date_trunc),
    "year": _null_safe(lambda s: int(str(s)[:4])),
    "month": _null_safe(lambda s: int(str(s)[5:7])),
    "day": _null_safe(lambda s: int(str(s)[8:10])),
}


def call_scalar_function(name: str, args: list[Any]) -> Any:
    """Invoke a scalar function by (case-insensitive) name."""
    fn = SCALAR_FUNCTIONS.get(name.lower())
    if fn is None:
        raise ExecutionError(f"Unknown scalar function {name!r}")
    try:
        return fn(*args)
    except (TypeError, ValueError, ZeroDivisionError) as exc:
        raise ExecutionError(f"Error evaluating {name}({args!r}): {exc}") from exc


def is_scalar_function(name: str) -> bool:
    """Return True when ``name`` names a registered scalar function."""
    return name.lower() in SCALAR_FUNCTIONS
