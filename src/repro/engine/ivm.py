"""Incremental view maintenance (IVM) for the version-keyed result cache.

Every ``Catalog.append_rows`` bumps the catalog data version, which silently
invalidates the whole result cache — dashboard-style sessions then pay a full
rescan per refresh.  This module folds appends forward instead (the classic
"answering queries under updates" move, PAPERS.md arXiv:1702.08764):

* :class:`VersionLog` — a bounded log of per-table append ranges keyed by the
  data-version fingerprint each append started from.  Walking the log from a
  folder's base version to a probe version yields exactly the rows appended
  in between; any gap (log truncated, table replaced or dropped, in-place
  mutation) breaks the chain and the probe falls back to a full recompute.
* :class:`SpliceFolder` — for ``Project(Filter?(Scan))`` shapes: appended
  rows are filtered with the fused ``eval_predicate``, projected, and spliced
  onto the cached columns.
* :class:`AggregateFolder` — for ``Project(Aggregate(Filter?(Scan)))``
  shapes: appended rows fold into per-group accumulator state via
  ``aggregates.add_many``.  State is primed lazily from the table prefix on
  the first fold (append-only tables guarantee rows ``[0, base_rows)`` are
  the base-version rows), so a never-folded entry costs nothing extra.

Maintainability is decided by :func:`repro.engine.optimizer.maintainable_shape`
over the *pre-rewrite* logical plan and memoized here by canonical SQL.
Folders live in the :class:`~repro.engine.query_cache.QueryCache` keyed by
canonical SQL (no data version — outliving version bumps is their purpose)
and hold their own result state, so LRU eviction of a cache *entry* never
destroys the fold state that can rebuild it.

Correctness bar: a folded result must be bag-equal (and in practice
row-order-identical — folds feed rows in table order, exactly like a cold
scan) to an ``ExecOptions(use_cache=False)`` recompute.  Any doubt inside a
folder resolves to ``None`` → the caller counts a fallback and recomputes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.engine.aggregates import make_accumulator
from repro.engine.expressions import Batch, VectorEvaluator
from repro.engine.optimizer import MaintainableShape, maintainable_shape
from repro.engine.plan_nodes import ProjectExec, aggregate_call_specs, hashable
from repro.engine.planner import Planner
from repro.engine.table import QueryResult
from repro.sql.ast_nodes import Select, SqlNode, Star
from repro.sql.printer import to_sql

#: Bound on the append-range log.  At the default serving cadence each entry
#: is one writer batch; 256 gives sessions minutes of refresh slack before a
#: cold folder's chain truncates and it falls back to one recompute.
VERSION_LOG_CAPACITY = 256

#: Bound on the canonical-SQL -> shape memo (process-wide; shapes are a pure
#: function of the query text).
SHAPE_MEMO_CAPACITY = 512

#: A chain walk covering at most this many records also emits the result at
#: each *intermediate* version it passes through (so sessions still pinned
#: there hit the cache instead of recomputing — folds cannot run backward).
#: Longer walks skip the emissions: a folder catching up after hundreds of
#: appends would otherwise pay O(chain x result) for versions nobody reads.
MAX_INTERMEDIATE_EMITS = 8


@dataclass(frozen=True)
class AppendDelta:
    """One recorded append: table rows ``[start_row, end_row)`` took the
    catalog from fingerprint ``from_version`` to ``to_version``."""

    table: str  # lower-cased catalog key
    start_row: int
    end_row: int
    from_version: tuple
    to_version: tuple


class VersionLog:
    """A bounded, thread-safe log of append deltas keyed by starting version.

    Writers serialize under the catalog write lock, so fingerprints form a
    chain: each append's ``from_version`` is the previous append's
    ``to_version`` (until a schema change clears the log).  ``chain`` walks
    that sequence; any missing link — truncation, a cleared log after
    register/drop/replace, or an unlogged in-place mutation — yields None,
    which callers treat as "fall back to full recompute".
    """

    def __init__(self, capacity: int = VERSION_LOG_CAPACITY) -> None:
        self._capacity = capacity
        self._records: OrderedDict[tuple, AppendDelta] = OrderedDict()
        self._lock = threading.Lock()

    def record(self, delta: AppendDelta) -> None:
        if delta.from_version == delta.to_version:
            return  # empty append: never record a self-loop
        with self._lock:
            self._records[delta.from_version] = delta
            while len(self._records) > self._capacity:
                self._records.popitem(last=False)

    def chain(self, base: tuple, target: tuple) -> list[AppendDelta] | None:
        """The append deltas leading from ``base`` to ``target``, or None."""
        if base == target:
            return []
        with self._lock:
            records: list[AppendDelta] = []
            version = base
            for _ in range(len(self._records)):
                record = self._records.get(version)
                if record is None:
                    return None
                records.append(record)
                version = record.to_version
                if version == target:
                    return records
            return None

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


# --------------------------------------------------------------------------- #
# Shape analysis (memoized by canonical SQL)
# --------------------------------------------------------------------------- #

_shape_memo: OrderedDict[str, MaintainableShape | None] = OrderedDict()
_shape_lock = threading.Lock()


def analyze(node: SqlNode, canonical: str) -> MaintainableShape | None:
    """The maintainable shape of a query, or None — memoized by canonical SQL."""
    with _shape_lock:
        if canonical in _shape_memo:
            _shape_memo.move_to_end(canonical)
            return _shape_memo[canonical]
    shape: MaintainableShape | None = None
    if isinstance(node, Select):
        try:
            shape, _ = maintainable_shape(Planner().plan(node))
        except Exception:  # noqa: BLE001 - unplannable means unmaintainable
            shape = None
    with _shape_lock:
        _shape_memo[canonical] = shape
        _shape_memo.move_to_end(canonical)
        while len(_shape_memo) > SHAPE_MEMO_CAPACITY:
            _shape_memo.popitem(last=False)
    return shape


class _PrebuiltBatch:
    """A leaf physical node yielding an already-materialized batch."""

    __slots__ = ("batch",)

    def __init__(self, batch: Batch) -> None:
        self.batch = batch

    def execute(self, ctx) -> Batch:
        return self.batch


# --------------------------------------------------------------------------- #
# Delta folders
# --------------------------------------------------------------------------- #


class DeltaFolder:
    """Base: per-query fold state advancing from one pinned version forward.

    One lock serializes folds; the folder never touches catalog or cache
    locks (it reads only the immutable snapshot handed in), so it sits at the
    leaf of the locking hierarchy next to the cache's own lock.
    """

    def __init__(
        self,
        shape: MaintainableShape,
        node: SqlNode,
        base_version: tuple,
        base_rows: int,
        column_names: list[str],
    ) -> None:
        self._shape = shape
        self._node = node
        self._table_key = shape.table_name.lower()
        self._version = base_version
        self._rows_seen = base_rows
        self._column_names = column_names
        self._slots = [(shape.binding, name) for name in column_names]
        self._lock = threading.Lock()

    @property
    def base_version(self) -> tuple:
        with self._lock:
            return self._version

    def connected(self, version: tuple, version_log: VersionLog | None) -> bool:
        """True when this folder and ``version`` sit on one live append chain."""
        with self._lock:
            if self._version == version:
                return True
            if version_log is None:
                return False
            return (
                version_log.chain(self._version, version) is not None
                or version_log.chain(version, self._version) is not None
            )

    def fold_to(
        self, snapshot, version_log: VersionLog | None, on_intermediate=None
    ) -> QueryResult | None:
        """The query's result at the snapshot's version, by folding appends.

        Returns None when the fold cannot be performed (broken/truncated
        chain, schema drift, any evaluation surprise) — the caller recomputes
        cold and should drop this folder.  On success the returned result is
        private to the caller (folder state never aliases it).

        ``on_intermediate(version, result)``, when given, is called for each
        intermediate version a short multi-record walk passes through (see
        ``MAX_INTERMEDIATE_EMITS``) — the catalog uses it to pre-populate
        cache entries for sessions still pinned behind the write frontier.
        """
        target = snapshot.data_version()
        with self._lock:
            try:
                if self._version == target:
                    return self._current_result(snapshot)
                if version_log is None:
                    return None
                records = version_log.chain(self._version, target)
                if records is None:
                    return None
                table = snapshot.table(self._shape.table_name)
                if list(table.column_names) != self._column_names:
                    return None
                if not self._ensure_primed(table):
                    return None
                emit_intermediates = (
                    on_intermediate is not None
                    and 1 < len(records) <= MAX_INTERMEDIATE_EMITS
                )
                for step, record in enumerate(records):
                    if record.table == self._table_key:
                        if record.start_row != self._rows_seen:
                            return None
                        self._apply(table, record.start_row, record.end_row)
                        self._rows_seen = record.end_row
                    self._version = record.to_version
                    if emit_intermediates and step < len(records) - 1:
                        on_intermediate(record.to_version, self._emit(snapshot))
                if table.row_count != self._rows_seen:
                    return None
                return self._emit(snapshot)
            except Exception:  # noqa: BLE001 - any surprise → full recompute
                return None

    # -- template methods ------------------------------------------------ #

    def _ensure_primed(self, table) -> bool:
        return True

    def _apply(self, table, start: int, end: int) -> None:
        raise NotImplementedError

    def _emit(self, snapshot) -> QueryResult:
        raise NotImplementedError

    def _current_result(self, snapshot) -> QueryResult:
        raise NotImplementedError

    # -- shared plumbing ------------------------------------------------- #

    def _slice_batch(self, table, start: int, end: int) -> Batch:
        columns = [table.column_data(name)[start:end] for name in self._column_names]
        return Batch(slots=list(self._slots), columns=columns, length=end - start)

    def _filtered(self, batch: Batch) -> Batch:
        predicate = self._shape.predicate
        if predicate is None or batch.length == 0:
            return batch
        keep = VectorEvaluator(None).eval_predicate(predicate, batch)
        count = keep.count(True)
        if count == batch.length:
            return batch
        return batch.filter(keep, count)

    def _project(self, batch: Batch, allow_star: bool) -> Batch:
        return ProjectExec(
            items=list(self._shape.items), input=_PrebuiltBatch(batch), allow_star=allow_star
        ).execute(None)

    def _infer_schema(self, snapshot, columns: list[str], column_vectors: list[list[Any]]):
        # Imported lazily: the executor module is heavyweight and ivm is
        # imported by the catalog at startup.
        from repro.engine.executor import infer_result_schema

        return infer_result_schema(snapshot, self._node, columns, column_vectors)


class SpliceFolder(DeltaFolder):
    """Fold for scan/filter/project shapes: append projected delta rows."""

    def __init__(
        self,
        shape: MaintainableShape,
        node: SqlNode,
        base_version: tuple,
        base_rows: int,
        column_names: list[str],
        result: QueryResult,
    ) -> None:
        super().__init__(shape, node, base_version, base_rows, column_names)
        if len(set(result.columns)) != len(result.columns):
            raise ValueError("duplicate output columns are not splice-maintainable")
        self._result_columns = list(result.columns)
        self._column_data = [result.column_values(name) for name in result.columns]
        self._row_count = result.row_count
        self._schema = result.schema

    def _apply(self, table, start: int, end: int) -> None:
        batch = self._filtered(self._slice_batch(table, start, end))
        if batch.length == 0:
            return
        projected = self._project(batch, allow_star=True)
        names = [name for _, name in projected.slots]
        if names != self._result_columns:
            raise ValueError("projected delta columns diverged from the cached result")
        for column_data, delta in zip(self._column_data, projected.columns):
            column_data.extend(delta)
        self._row_count += projected.length
        self._schema = None  # recompute lazily: new values may widen types

    def _emit(self, snapshot) -> QueryResult:
        return self._current_result(snapshot)

    def _current_result(self, snapshot) -> QueryResult:
        if self._schema is None:
            self._schema = self._infer_schema(
                snapshot, self._result_columns, self._column_data
            )
        return QueryResult(
            columns=list(self._result_columns),
            schema=self._schema,
            column_data=[list(column) for column in self._column_data],
            row_count=self._row_count,
        )


class AggregateFolder(DeltaFolder):
    """Fold for group-by aggregate shapes: feed deltas into accumulators.

    Group keys always go through :func:`hashable` so identity stays stable
    across batches (the hash-aggregate operator's raw-key fast path is only
    safe within one batch).  First-seen group order — prefix rows first, then
    deltas in append order — reproduces the cold recompute's output order,
    and per-group rows are fed in table order, so even order-sensitive
    accumulators (Welford variance, non-numeric sums, DISTINCT first-seen)
    match a recompute bit-for-bit.
    """

    def __init__(
        self,
        shape: MaintainableShape,
        node: SqlNode,
        base_version: tuple,
        base_rows: int,
        column_names: list[str],
        result: QueryResult,
    ) -> None:
        super().__init__(shape, node, base_version, base_rows, column_names)
        self._calls = list(shape.aggregates)
        self._call_keys = [to_sql(call) for call in self._calls]
        self._star_flags = [
            (bool(call.args) and isinstance(call.args[0], Star)) or not call.args
            for call in self._calls
        ]
        self._primed = False
        self._group_index: dict[Any, int] = {}
        self._rep_columns: list[list[Any]] = [[] for _ in column_names]
        self._rep_row: list[Any] | None = None
        self._fed_rows = 0
        if shape.group_by:
            self._accumulators: list[list[Any]] = [[] for _ in self._calls]
        else:
            # The global group exists even over zero rows.
            self._accumulators = [
                [make_accumulator(call.name, is_star=flag, distinct=call.distinct)]
                for call, flag in zip(self._calls, self._star_flags)
            ]
        self._current = result.copy()

    def _ensure_primed(self, table) -> bool:
        if self._primed:
            return True
        # Append-only prefix property: rows [0, base_rows) of the *current*
        # table object are exactly the base-version rows (any non-append
        # mutation changed the fingerprint without a log record, so the
        # chain walk already failed before priming).
        if self._rows_seen:
            self._feed(self._filtered(self._slice_batch(table, 0, self._rows_seen)))
        self._primed = True
        return True

    def _apply(self, table, start: int, end: int) -> None:
        self._feed(self._filtered(self._slice_batch(table, start, end)))

    def _feed(self, batch: Batch) -> None:
        if batch.length == 0:
            return
        evaluator = VectorEvaluator(None)
        specs = aggregate_call_specs(self._calls, evaluator, batch)
        length = batch.length

        if not self._shape.group_by:
            if self._rep_row is None:
                self._rep_row = [column[0] for column in batch.columns]
            for accumulators, (_, _, argument) in zip(self._accumulators, specs):
                accumulator = accumulators[0]
                if accumulator.counts_rows:
                    accumulator.add_many(range(length))
                elif argument is not None:
                    accumulator.add_many(argument)
            self._fed_rows += length
            return

        key_columns = [evaluator.eval(expr, batch) for expr in self._shape.group_by]
        if len(key_columns) == 1:
            keys = [hashable(value) for value in key_columns[0]]
        else:
            keys = [
                tuple(hashable(column[index]) for column in key_columns)
                for index in range(length)
            ]
        group_index = self._group_index
        members_by_slot: dict[int, list[int]] = {}
        for index, key in enumerate(keys):
            slot = group_index.get(key)
            if slot is None:
                slot = len(group_index)
                group_index[key] = slot
                for rep_column, column in zip(self._rep_columns, batch.columns):
                    rep_column.append(column[index])
                for accumulators, call, flag in zip(
                    self._accumulators, self._calls, self._star_flags
                ):
                    accumulators.append(
                        make_accumulator(call.name, is_star=flag, distinct=call.distinct)
                    )
            members_by_slot.setdefault(slot, []).append(index)
        for slot, members in members_by_slot.items():
            for accumulators, (_, _, argument) in zip(self._accumulators, specs):
                accumulator = accumulators[slot]
                if accumulator.counts_rows:
                    accumulator.add_many(members)
                elif argument is not None:
                    if len(members) == length:
                        accumulator.add_many(argument)
                    else:
                        accumulator.add_many([argument[index] for index in members])
        self._fed_rows += length

    def _emit(self, snapshot) -> QueryResult:
        aggregate_columns = {
            key: [accumulator.result() for accumulator in accumulators]
            for key, accumulators in zip(self._call_keys, self._accumulators)
        }
        if not self._shape.group_by:
            if self._rep_row is None:
                # Global aggregate over zero (post-filter) rows: one output
                # row with no resolvable scan columns, matching the cold
                # hash-aggregate's empty-input emission.
                batch = Batch(slots=[], columns=[], length=1, aggregates=aggregate_columns)
            else:
                batch = Batch(
                    slots=list(self._slots),
                    columns=[[value] for value in self._rep_row],
                    length=1,
                    aggregates=aggregate_columns,
                )
        else:
            batch = Batch(
                slots=list(self._slots),
                columns=[list(column) for column in self._rep_columns],
                length=len(self._group_index),
                aggregates=aggregate_columns,
            )
        projected = self._project(batch, allow_star=False)
        columns = [name for _, name in projected.slots]
        result = QueryResult(
            columns=columns,
            schema=self._infer_schema(snapshot, columns, projected.columns),
            column_data=[list(column) for column in projected.columns],
            row_count=projected.length,
        )
        self._current = result
        return result.copy()

    def _current_result(self, snapshot) -> QueryResult:
        return self._current.copy()


def make_folder(
    shape: MaintainableShape, node: SqlNode, snapshot, result: QueryResult
) -> DeltaFolder:
    """Build the delta folder for a freshly computed maintainable result.

    ``snapshot`` must be the pin the result was computed against; the folder
    captures its version, the base table's row count and column layout.
    Raises when the shape cannot actually be maintained (unknown table,
    duplicate output columns) — callers treat that as "no folder".
    """
    table = snapshot.table(shape.table_name)
    base_version = snapshot.data_version()
    column_names = list(table.column_names)
    if shape.kind == "splice":
        return SpliceFolder(
            shape, node, base_version, table.row_count, column_names, result
        )
    return AggregateFolder(
        shape, node, base_version, table.row_count, column_names, result
    )
