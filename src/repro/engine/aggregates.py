"""Aggregate function implementations used by the GROUP BY operator.

Each aggregate is an accumulator object with ``add(value)`` / ``result()``;
the executor instantiates one accumulator per (group, aggregate expression)
pair.  NULLs are ignored by every aggregate except ``count(*)``, following
standard SQL semantics.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from repro.errors import ExecutionError


class Accumulator:
    """Base class for aggregate accumulators."""

    #: When True the accumulator receives a value for every row, including
    #: rows where the argument expression is NULL (used by count(*)).
    counts_rows = False

    def add(self, value: Any) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def add_many(self, values: Iterable[Any]) -> None:
        """Accumulate a whole column slice (vectorized entry point).

        Subclasses override this with batch-level fast paths; the default
        simply loops, so every accumulator stays usable from both the
        row-wise and the vectorized execution paths.
        """
        add = self.add
        for value in values:
            add(value)

    def result(self) -> Any:  # pragma: no cover - interface
        raise NotImplementedError


class CountAccumulator(Accumulator):
    """``count(expr)`` — number of non-NULL values."""

    def __init__(self) -> None:
        self._count = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self._count += 1

    def add_many(self, values: Iterable[Any]) -> None:
        self._count += sum(1 for value in values if value is not None)

    def result(self) -> int:
        return self._count


class CountStarAccumulator(Accumulator):
    """``count(*)`` — number of rows."""

    counts_rows = True

    def __init__(self) -> None:
        self._count = 0

    def add(self, value: Any) -> None:
        self._count += 1

    def add_many(self, values: Iterable[Any]) -> None:
        try:
            self._count += len(values)  # type: ignore[arg-type]
        except TypeError:
            self._count += sum(1 for _ in values)

    def result(self) -> int:
        return self._count


class SumAccumulator(Accumulator):
    """``sum(expr)`` — NULL for an empty input."""

    def __init__(self) -> None:
        self._total: float | int | None = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._total is None:
            self._total = value
        else:
            self._total += value

    def add_many(self, values: Iterable[Any]) -> None:
        filtered = [value for value in values if value is not None]
        if not filtered:
            return
        if isinstance(filtered[0], (int, float)):
            partial = sum(filtered)
        else:
            # Non-numeric '+' (e.g. string concatenation) keeps row-wise order.
            partial = filtered[0]
            for value in filtered[1:]:
                partial += value
        self._total = partial if self._total is None else self._total + partial

    def result(self) -> Any:
        return self._total


class AvgAccumulator(Accumulator):
    """``avg(expr)`` — arithmetic mean of non-NULL values."""

    def __init__(self) -> None:
        self._total = 0.0
        self._count = 0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self._total += value
        self._count += 1

    def add_many(self, values: Iterable[Any]) -> None:
        filtered = [value for value in values if value is not None]
        if not filtered:
            return
        self._total += sum(filtered)
        self._count += len(filtered)

    def result(self) -> float | None:
        if self._count == 0:
            return None
        return self._total / self._count


class MinAccumulator(Accumulator):
    """``min(expr)``."""

    def __init__(self) -> None:
        self._value: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._value is None or value < self._value:
            self._value = value

    def add_many(self, values: Iterable[Any]) -> None:
        filtered = [value for value in values if value is not None]
        if not filtered:
            return
        smallest = min(filtered)
        if self._value is None or smallest < self._value:
            self._value = smallest

    def result(self) -> Any:
        return self._value


class MaxAccumulator(Accumulator):
    """``max(expr)``."""

    def __init__(self) -> None:
        self._value: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._value is None or value > self._value:
            self._value = value

    def add_many(self, values: Iterable[Any]) -> None:
        filtered = [value for value in values if value is not None]
        if not filtered:
            return
        largest = max(filtered)
        if self._value is None or largest > self._value:
            self._value = largest

    def result(self) -> Any:
        return self._value


class VarianceAccumulator(Accumulator):
    """Sample variance via Welford's online algorithm."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    def result(self) -> float | None:
        if self._count < 2:
            return None
        return self._m2 / (self._count - 1)


class StddevAccumulator(VarianceAccumulator):
    """Sample standard deviation."""

    def result(self) -> float | None:
        variance = super().result()
        if variance is None:
            return None
        return math.sqrt(variance)


class MedianAccumulator(Accumulator):
    """Median of non-NULL values (interpolated for even counts)."""

    def __init__(self) -> None:
        self._values: list[Any] = []

    def add(self, value: Any) -> None:
        if value is not None:
            self._values.append(value)

    def add_many(self, values: Iterable[Any]) -> None:
        self._values.extend(value for value in values if value is not None)

    def result(self) -> float | None:
        if not self._values:
            return None
        ordered = sorted(self._values)
        count = len(ordered)
        middle = count // 2
        if count % 2 == 1:
            return ordered[middle]
        return (ordered[middle - 1] + ordered[middle]) / 2


class DistinctAccumulator(Accumulator):
    """Wraps another accumulator, feeding it each distinct value once."""

    def __init__(self, inner: Accumulator) -> None:
        self._inner = inner
        self._seen: set[Any] = set()

    def add(self, value: Any) -> None:
        if value is None:
            return
        key = value
        if key in self._seen:
            return
        self._seen.add(key)
        self._inner.add(value)

    def add_many(self, values: Iterable[Any]) -> None:
        seen = self._seen
        inner_add = self._inner.add
        for value in values:
            if value is None or value in seen:
                continue
            seen.add(value)
            inner_add(value)

    def result(self) -> Any:
        return self._inner.result()


_AGGREGATE_FACTORIES: dict[str, type[Accumulator]] = {
    "count": CountAccumulator,
    "sum": SumAccumulator,
    "avg": AvgAccumulator,
    "min": MinAccumulator,
    "max": MaxAccumulator,
    "stddev": StddevAccumulator,
    "variance": VarianceAccumulator,
    "median": MedianAccumulator,
}


def make_accumulator(name: str, is_star: bool = False, distinct: bool = False) -> Accumulator:
    """Create the accumulator for an aggregate call.

    Args:
        name: Aggregate function name (case-insensitive).
        is_star: True for ``count(*)``.
        distinct: True for ``agg(DISTINCT expr)``.
    """
    lowered = name.lower()
    if lowered == "count" and is_star:
        return CountStarAccumulator()
    factory = _AGGREGATE_FACTORIES.get(lowered)
    if factory is None:
        raise ExecutionError(f"Unknown aggregate function {name!r}")
    accumulator = factory()
    if distinct:
        return DistinctAccumulator(accumulator)
    return accumulator


def is_aggregate_function(name: str) -> bool:
    """Return True when ``name`` names a supported aggregate."""
    return name.lower() in _AGGREGATE_FACTORIES
