"""Lowers SELECT ASTs to logical plans.

The logical plan is the single source of truth for execution order: the
executor lowers it to physical operators (see ``plan_nodes``) and runs those.
``Catalog.explain`` renders either representation for inspection.

The planner always emits sequential scans (``ScanNode``); the optimizer's
access-path rule may later replace a ``Filter(Scan)`` pair with an
``IndexScanNode`` when a secondary index makes that cheaper.
"""

from __future__ import annotations

from repro.errors import EngineError
from repro.engine.aggregates import is_aggregate_function
from repro.engine.functions import is_scalar_function
from repro.engine.plan_nodes import (
    AggregateNode,
    CteDefinition,
    CteNode,
    DerivedScanNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SetOpNode,
    SortNode,
)
from repro.sql.ast_nodes import (
    FunctionCall,
    Join,
    Select,
    SetOperation,
    SqlNode,
    SubqueryRef,
    TableRef,
)
from repro.sql.printer import to_sql
from repro.sql.schema import TableSchema


def walk_same_scope(node: SqlNode):
    """Pre-order walk of an expression that does not descend into subqueries.

    Aggregates inside a nested SELECT belong to that subquery's scope and must
    not be computed by the enclosing query's GROUP BY operator.
    """
    yield node
    for child in node.children():
        if isinstance(child, Select):
            continue
        yield from walk_same_scope(child)


def collect_aggregate_calls(query: Select, include_order_by: bool = False) -> list[FunctionCall]:
    """The distinct aggregate calls the query's own scope computes.

    Scans the SELECT list and HAVING — the clauses that *decide* whether the
    query aggregates.  With ``include_order_by`` the ORDER BY expressions are
    scanned too: once a query is known to group, the aggregation operator
    must also compute aggregates that appear only in ORDER BY.  (ORDER BY
    alone must not turn a plain projection into a one-row global aggregate.)
    Deduplicated by canonical SQL text.
    """
    calls: dict[str, FunctionCall] = {}
    nodes: list[SqlNode] = [item.expr for item in query.select_items]
    if query.having is not None:
        nodes.append(query.having)
    if include_order_by:
        nodes.extend(item.expr for item in query.order_by)
    for node in nodes:
        for descendant in walk_same_scope(node):
            if (
                isinstance(descendant, FunctionCall)
                and is_aggregate_function(descendant.name)
                and not is_scalar_function(descendant.name)
            ):
                calls.setdefault(to_sql(descendant), descendant)
    return list(calls.values())


class Planner:
    """Builds a logical plan tree from a SELECT or set-operation AST."""

    def __init__(self, schemas: dict[str, TableSchema] | None = None) -> None:
        self._schemas = schemas or {}

    def plan(self, node: SqlNode) -> PlanNode:
        if isinstance(node, SetOperation):
            return SetOpNode(
                op=node.op,
                left=self.plan(node.left),
                right=self.plan(node.right),
                all=node.all,
            )
        if isinstance(node, Select):
            return self._plan_select(node)
        raise EngineError(f"Cannot plan node of type {type(node).__name__}")

    def _plan_select(self, query: Select) -> PlanNode:
        plan = self._plan_from(query.from_clause)

        if query.where is not None:
            plan = FilterNode(input=plan, predicate=query.where, phase="where")

        if query.group_by or collect_aggregate_calls(query):
            aggregates = collect_aggregate_calls(query, include_order_by=True)
            plan = AggregateNode(
                input=plan, group_by=list(query.group_by), aggregates=list(aggregates)
            )

        if query.having is not None:
            plan = FilterNode(input=plan, predicate=query.having, phase="having")

        plan = ProjectNode(input=plan, items=list(query.select_items))

        if query.distinct:
            plan = DistinctNode(input=plan)
        if query.order_by:
            plan = SortNode(input=plan, order_by=list(query.order_by))
        if query.limit is not None or query.offset is not None:
            plan = LimitNode(input=plan, limit=query.limit, offset=query.offset)

        if query.ctes:
            definitions = [
                CteDefinition(
                    name=cte.name, columns=list(cte.columns), plan=self.plan(cte.query)
                )
                for cte in query.ctes
            ]
            plan = CteNode(definitions=definitions, input=plan)
        return plan

    def _plan_from(self, node: SqlNode | None) -> PlanNode:
        if node is None:
            # SELECT without FROM: a single empty-row scan.
            return ScanNode(table_name="<dual>", binding_name="<dual>")
        if isinstance(node, TableRef):
            return ScanNode(table_name=node.name, binding_name=node.binding_name)
        if isinstance(node, SubqueryRef):
            return DerivedScanNode(alias=node.alias, input=self.plan(node.query))
        if isinstance(node, Join):
            return JoinNode(
                left=self._plan_from(node.left),
                right=self._plan_from(node.right),
                join_type=node.join_type,
                condition=node.condition,
                using=list(node.using),
            )
        raise EngineError(f"Unsupported FROM item {type(node).__name__}")
