"""Lowers SELECT ASTs to logical plans.

The plans are used by ``Catalog.explain`` and by tests that assert on query
structure; the executor interprets the AST directly but follows the same
operator ordering the planner encodes.
"""

from __future__ import annotations

from repro.errors import EngineError
from repro.engine.plan_nodes import (
    AggregateNode,
    DerivedScanNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SetOpNode,
    SortNode,
)
from repro.sql.ast_nodes import (
    Join,
    Select,
    SetOperation,
    SqlNode,
    SubqueryRef,
    TableRef,
    contains_aggregate,
)
from repro.sql.schema import TableSchema


class Planner:
    """Builds a logical plan tree from a SELECT or set-operation AST."""

    def __init__(self, schemas: dict[str, TableSchema] | None = None) -> None:
        self._schemas = schemas or {}

    def plan(self, node: SqlNode) -> PlanNode:
        if isinstance(node, SetOperation):
            return SetOpNode(
                op=node.op,
                left=self.plan(node.left),
                right=self.plan(node.right),
                all=node.all,
            )
        if isinstance(node, Select):
            return self._plan_select(node)
        raise EngineError(f"Cannot plan node of type {type(node).__name__}")

    def _plan_select(self, query: Select) -> PlanNode:
        plan = self._plan_from(query.from_clause)

        if query.where is not None:
            plan = FilterNode(input=plan, predicate=query.where, phase="where")

        aggregates = [
            item.expr for item in query.select_items if contains_aggregate(item.expr)
        ]
        if query.having is not None and contains_aggregate(query.having):
            aggregates.append(query.having)
        if query.group_by or aggregates:
            plan = AggregateNode(input=plan, group_by=list(query.group_by), aggregates=aggregates)

        if query.having is not None:
            plan = FilterNode(input=plan, predicate=query.having, phase="having")

        plan = ProjectNode(input=plan, items=list(query.select_items))

        if query.distinct:
            plan = DistinctNode(input=plan)
        if query.order_by:
            plan = SortNode(input=plan, order_by=list(query.order_by))
        if query.limit is not None or query.offset is not None:
            plan = LimitNode(input=plan, limit=query.limit, offset=query.offset)
        return plan

    def _plan_from(self, node: SqlNode | None) -> PlanNode:
        if node is None:
            # SELECT without FROM: a single empty-row scan.
            return ScanNode(table_name="<dual>", binding_name="<dual>")
        if isinstance(node, TableRef):
            return ScanNode(table_name=node.name, binding_name=node.binding_name)
        if isinstance(node, SubqueryRef):
            return DerivedScanNode(alias=node.alias, input=self.plan(node.query))
        if isinstance(node, Join):
            return JoinNode(
                left=self._plan_from(node.left),
                right=self._plan_from(node.right),
                join_type=node.join_type,
                condition=node.condition,
                using=list(node.using),
            )
        raise EngineError(f"Unsupported FROM item {type(node).__name__}")
