"""Lowers SELECT ASTs to logical plans.

The logical plan is the single source of truth for execution order: the
executor lowers it to physical operators (see ``plan_nodes``) and runs those.
``Catalog.explain`` renders either representation for inspection.

The planner always emits sequential scans (``ScanNode``); the optimizer's
access-path rule may later replace a ``Filter(Scan)`` pair with an
``IndexScanNode`` when a secondary index makes that cheaper.
"""

from __future__ import annotations

from repro.errors import EngineError
from repro.engine.aggregates import is_aggregate_function
from repro.engine.functions import is_scalar_function
from repro.engine.plan_nodes import (
    AggregateNode,
    CteDefinition,
    CteNode,
    DerivedScanNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SetOpNode,
    SortNode,
    WindowNode,
)
from repro.sql.analyzer import check_window_placement
from repro.sql.ast_nodes import (
    AGGREGATE_FUNCTIONS,
    WINDOW_FUNCTIONS,
    FunctionCall,
    Join,
    Literal,
    Select,
    SetOperation,
    SqlNode,
    SubqueryRef,
    TableRef,
    WindowCall,
)
from repro.sql.printer import to_sql
from repro.sql.schema import TableSchema


def walk_same_scope(node: SqlNode):
    """Pre-order walk of an expression that does not descend into subqueries.

    Aggregates inside a nested SELECT belong to that subquery's scope and must
    not be computed by the enclosing query's GROUP BY operator.
    """
    yield node
    for child in node.children():
        if isinstance(child, Select):
            continue
        yield from walk_same_scope(child)


def collect_aggregate_calls(query: Select, include_order_by: bool = False) -> list[FunctionCall]:
    """The distinct aggregate calls the query's own scope computes.

    Scans the SELECT list and HAVING — the clauses that *decide* whether the
    query aggregates.  With ``include_order_by`` the ORDER BY expressions are
    scanned too: once a query is known to group, the aggregation operator
    must also compute aggregates that appear only in ORDER BY.  (ORDER BY
    alone must not turn a plain projection into a one-row global aggregate.)
    Deduplicated by canonical SQL text.
    """
    calls: dict[str, FunctionCall] = {}
    nodes: list[SqlNode] = [item.expr for item in query.select_items]
    if query.having is not None:
        nodes.append(query.having)
    if include_order_by:
        nodes.extend(item.expr for item in query.order_by)
    for node in nodes:
        for descendant in _walk_outside_windows(node):
            if (
                isinstance(descendant, FunctionCall)
                and is_aggregate_function(descendant.name)
                and not is_scalar_function(descendant.name)
            ):
                calls.setdefault(to_sql(descendant), descendant)
    return list(calls.values())


def _walk_outside_windows(node: SqlNode):
    """Same-scope walk that does not treat a windowed call as a group aggregate.

    ``sum(x) OVER (...)`` is computed by the window operator, not by GROUP BY,
    so the wrapped :class:`FunctionCall` is skipped — but its argument and
    specification expressions are still walked (``sum(count(*)) OVER (...)``
    legitimately feeds an inner group aggregate into the window).
    """
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, Select):
            continue
        if isinstance(current, WindowCall):
            stack.extend(current.call.args)
            stack.extend(current.spec.partition_by)
            stack.extend(item.expr for item in current.spec.order_by)
            continue
        yield current
        stack.extend(current.children())


def collect_window_calls(query: Select) -> list[WindowCall]:
    """The distinct window calls of the query's own scope, in appearance order.

    Windows may appear in the SELECT list and in ORDER BY (scope rules are
    enforced separately); duplicates — the same canonical SQL text — are
    computed once and shared.
    """
    calls: dict[str, WindowCall] = {}
    nodes: list[SqlNode] = [item.expr for item in query.select_items]
    nodes.extend(item.expr for item in query.order_by)
    for node in nodes:
        for descendant in walk_same_scope(node):
            if isinstance(descendant, WindowCall):
                calls.setdefault(to_sql(descendant), descendant)
    return list(calls.values())


def validate_window_call(window: WindowCall) -> None:
    """Reject malformed window calls with a planning-time error."""
    call = window.call
    name = call.lower_name
    if name not in WINDOW_FUNCTIONS and name not in AGGREGATE_FUNCTIONS:
        raise EngineError(f"{call.name!r} is not a window function")
    if call.distinct:
        raise EngineError(f"DISTINCT is not supported in window function {call.name}()")
    if name in ("row_number", "rank", "dense_rank") and call.args:
        raise EngineError(f"{name}() takes no arguments")
    if name in ("lag", "lead"):
        if not 1 <= len(call.args) <= 3:
            raise EngineError(f"{name}() takes between 1 and 3 arguments")
        if len(call.args) >= 2:
            offset = call.args[1]
            if not (isinstance(offset, Literal) and isinstance(offset.value, int)):
                raise EngineError(f"{name}() offset must be an integer literal")
            if offset.value < 0:
                raise EngineError(f"{name}() offset must be non-negative")
    if name in ("rank", "dense_rank") and not window.spec.order_by:
        raise EngineError(f"{name}() requires an ORDER BY in its OVER clause")


class Planner:
    """Builds a logical plan tree from a SELECT or set-operation AST."""

    def __init__(self, schemas: dict[str, TableSchema] | None = None) -> None:
        self._schemas = schemas or {}

    def plan(self, node: SqlNode) -> PlanNode:
        if isinstance(node, SetOperation):
            return SetOpNode(
                op=node.op,
                left=self.plan(node.left),
                right=self.plan(node.right),
                all=node.all,
            )
        if isinstance(node, Select):
            return self._plan_select(node)
        raise EngineError(f"Cannot plan node of type {type(node).__name__}")

    def _plan_select(self, query: Select) -> PlanNode:
        violation = check_window_placement(query)
        if violation is not None:
            raise EngineError(violation)

        plan = self._plan_from(query.from_clause)

        if query.where is not None:
            plan = FilterNode(input=plan, predicate=query.where, phase="where")

        if query.group_by or collect_aggregate_calls(query):
            aggregates = collect_aggregate_calls(query, include_order_by=True)
            plan = AggregateNode(
                input=plan, group_by=list(query.group_by), aggregates=list(aggregates)
            )

        if query.having is not None:
            plan = FilterNode(input=plan, predicate=query.having, phase="having")

        windows = collect_window_calls(query)
        if windows:
            for window in windows:
                validate_window_call(window)
            plan = WindowNode(input=plan, windows=windows)

        plan = ProjectNode(input=plan, items=list(query.select_items))

        if query.distinct:
            plan = DistinctNode(input=plan)
        if query.order_by:
            plan = SortNode(input=plan, order_by=list(query.order_by))
        if query.limit is not None or query.offset is not None:
            plan = LimitNode(input=plan, limit=query.limit, offset=query.offset)

        if query.ctes:
            definitions = [
                CteDefinition(
                    name=cte.name, columns=list(cte.columns), plan=self.plan(cte.query)
                )
                for cte in query.ctes
            ]
            plan = CteNode(definitions=definitions, input=plan)
        return plan

    def _plan_from(self, node: SqlNode | None) -> PlanNode:
        if node is None:
            # SELECT without FROM: a single empty-row scan.
            return ScanNode(table_name="<dual>", binding_name="<dual>")
        if isinstance(node, TableRef):
            return ScanNode(table_name=node.name, binding_name=node.binding_name)
        if isinstance(node, SubqueryRef):
            return DerivedScanNode(alias=node.alias, input=self.plan(node.query))
        if isinstance(node, Join):
            return JoinNode(
                left=self._plan_from(node.left),
                right=self._plan_from(node.right),
                join_type=node.join_type,
                condition=node.condition,
                using=list(node.using),
            )
        raise EngineError(f"Unsupported FROM item {type(node).__name__}")
