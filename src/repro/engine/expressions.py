"""Expression evaluation over row environments.

The executor materializes each row as an :class:`Environment` binding table
aliases to column values.  The :class:`ExpressionEvaluator` walks expression
ASTs against an environment, with hooks for

* correlated subqueries (via a parent environment chain),
* aggregate values precomputed by the GROUP BY operator,
* SELECT-list aliases referenced from ORDER BY / HAVING.
"""

from __future__ import annotations

import re
from itertools import compress
from operator import and_, or_
from typing import Any, Callable

from repro.errors import ExecutionError
from repro.engine.functions import call_scalar_function, is_scalar_function
from repro.sql.ast_nodes import (
    BetweenOp,
    BinaryOp,
    Case,
    Cast,
    ColumnRef,
    Exists,
    FunctionCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    Parameter,
    ScalarSubquery,
    Select,
    SqlNode,
    Star,
    UnaryOp,
)
from repro.sql.printer import to_sql


class Environment:
    """One row's visible bindings during evaluation.

    Attributes:
        bindings: table binding name -> {column name -> value}.
        aliases: SELECT output aliases available to ORDER BY / HAVING.
        parent: enclosing query's environment (for correlated subqueries).
    """

    def __init__(
        self,
        bindings: dict[str, dict[str, Any]] | None = None,
        parent: "Environment | None" = None,
    ) -> None:
        self.bindings: dict[str, dict[str, Any]] = bindings or {}
        self.aliases: dict[str, Any] = {}
        self.parent = parent

    def bind(self, binding_name: str, values: dict[str, Any]) -> None:
        self.bindings[binding_name] = values

    def child(self) -> "Environment":
        """A fresh environment whose unresolved names fall through to this one."""
        return Environment(parent=self)

    def merged_with(self, other: "Environment") -> "Environment":
        """A new environment containing both rows' bindings (used by joins)."""
        merged = Environment(parent=self.parent)
        merged.bindings = {**self.bindings, **other.bindings}
        return merged

    def resolve(self, column: ColumnRef) -> Any:
        """Resolve a column reference to its value.

        Raises ExecutionError when the column is unknown in this environment
        chain or is ambiguous within one level.
        """
        found: list[Any] = []
        for binding_name, values in self.bindings.items():
            if column.table and column.table != binding_name:
                continue
            if column.name in values:
                found.append(values[column.name])
        if len(found) == 1:
            return found[0]
        if len(found) > 1:
            raise ExecutionError(f"Ambiguous column reference {column.qualified_name!r}")
        if not column.table and column.name in self.aliases:
            return self.aliases[column.name]
        if self.parent is not None:
            return self.parent.resolve(column)
        raise ExecutionError(f"Unknown column {column.qualified_name!r}")

    def first_binding(self) -> dict[str, Any]:
        """Values of the first binding (used by ``SELECT *`` expansion)."""
        for values in self.bindings.values():
            return values
        return {}

    def all_values(self) -> list[tuple[str, str, Any]]:
        """Every (binding, column, value) triple — used by Star expansion."""
        triples = []
        for binding_name, values in self.bindings.items():
            for column_name, value in values.items():
                triples.append((binding_name, column_name, value))
        return triples


def like_to_regex(pattern: str) -> re.Pattern[str]:
    """Convert a SQL LIKE pattern to an anchored regular expression."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def sql_equal(left: Any, right: Any) -> bool | None:
    """SQL equality with NULL propagation."""
    if left is None or right is None:
        return None
    return left == right


def sql_cast(value: Any, target: str) -> Any:
    """Apply a SQL CAST to one value (NULL casts to NULL)."""
    if value is None:
        return None
    try:
        if target in ("int", "integer", "bigint"):
            return int(float(value))
        if target in ("float", "real", "double"):
            return float(value)
        if target in ("text", "varchar", "char", "string"):
            return str(value)
        if target in ("boolean", "bool"):
            return bool(value)
        if target == "date":
            return str(value)[:10]
    except (TypeError, ValueError) as exc:
        raise ExecutionError(f"Cannot cast {value!r} to {target}: {exc}") from exc
    raise ExecutionError(f"Unknown cast target type {target!r}")


def sql_compare(op: str, left: Any, right: Any) -> bool | None:
    """Evaluate a comparison operator with NULL propagation."""
    if left is None or right is None:
        return None
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ExecutionError(f"Unknown comparison operator {op!r}")


class ExpressionEvaluator:
    """Evaluates expression ASTs against an :class:`Environment`.

    Args:
        subquery_executor: callback ``(select, env) -> QueryResult`` used to run
            nested subqueries with the current environment as correlation
            context.  May be None for expression contexts that cannot contain
            subqueries (the evaluator then raises on encountering one).
        aggregate_values: precomputed aggregate results for the current group,
            keyed by the canonical SQL text of the aggregate call.
        parameters: values for named/positional query parameters.
    """

    def __init__(
        self,
        subquery_executor: Callable[[Select, Environment], Any] | None = None,
        aggregate_values: dict[str, Any] | None = None,
        parameters: dict[str, Any] | None = None,
    ) -> None:
        self._subquery_executor = subquery_executor
        self._aggregate_values = aggregate_values or {}
        self._parameters = parameters or {}

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #

    def evaluate(self, node: SqlNode, env: Environment) -> Any:
        if self._aggregate_values:
            key = to_sql(node)
            if key in self._aggregate_values:
                return self._aggregate_values[key]

        if isinstance(node, Literal):
            return node.value
        if isinstance(node, ColumnRef):
            return env.resolve(node)
        if isinstance(node, Parameter):
            if node.name not in self._parameters:
                raise ExecutionError(f"Missing value for parameter :{node.name}")
            return self._parameters[node.name]
        if isinstance(node, Star):
            raise ExecutionError("'*' is only valid inside count(*) or a SELECT list")
        if isinstance(node, UnaryOp):
            return self._evaluate_unary(node, env)
        if isinstance(node, BinaryOp):
            return self._evaluate_binary(node, env)
        if isinstance(node, BetweenOp):
            return self._evaluate_between(node, env)
        if isinstance(node, InList):
            return self._evaluate_in_list(node, env)
        if isinstance(node, InSubquery):
            return self._evaluate_in_subquery(node, env)
        if isinstance(node, Exists):
            return self._evaluate_exists(node, env)
        if isinstance(node, ScalarSubquery):
            return self._evaluate_scalar_subquery(node, env)
        if isinstance(node, IsNull):
            value = self.evaluate(node.expr, env)
            return (value is not None) if node.negated else (value is None)
        if isinstance(node, FunctionCall):
            return self._evaluate_function(node, env)
        if isinstance(node, Cast):
            return self._evaluate_cast(node, env)
        if isinstance(node, Case):
            return self._evaluate_case(node, env)
        raise ExecutionError(f"Cannot evaluate expression node {type(node).__name__}")

    def is_truthy(self, node: SqlNode, env: Environment) -> bool:
        """Evaluate a predicate: NULL counts as false (SQL three-valued logic)."""
        value = self.evaluate(node, env)
        return bool(value) if value is not None else False

    # ------------------------------------------------------------------ #
    # Operators
    # ------------------------------------------------------------------ #

    def _evaluate_unary(self, node: UnaryOp, env: Environment) -> Any:
        value = self.evaluate(node.operand, env)
        if node.op == "NOT":
            if value is None:
                return None
            return not bool(value)
        if value is None:
            return None
        if node.op == "-":
            return -value
        if node.op == "+":
            return +value
        raise ExecutionError(f"Unknown unary operator {node.op!r}")

    def _evaluate_binary(self, node: BinaryOp, env: Environment) -> Any:
        op = node.op
        if op == "AND":
            left = self.evaluate(node.left, env)
            if left is not None and not left:
                return False
            right = self.evaluate(node.right, env)
            if right is not None and not right:
                return False
            if left is None or right is None:
                return None
            return True
        if op == "OR":
            left = self.evaluate(node.left, env)
            if left is not None and left:
                return True
            right = self.evaluate(node.right, env)
            if right is not None and right:
                return True
            if left is None or right is None:
                return None
            return False

        left = self.evaluate(node.left, env)
        right = self.evaluate(node.right, env)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return sql_compare(op, left, right)
        if op == "LIKE":
            if left is None or right is None:
                return None
            return bool(like_to_regex(str(right)).match(str(left)))
        if op == "||":
            if left is None or right is None:
                return None
            return str(left) + str(right)
        if left is None or right is None:
            return None
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if right == 0:
                    return None
                if isinstance(left, int) and isinstance(right, int):
                    return left / right
                return left / right
            if op == "%":
                if right == 0:
                    return None
                return left % right
        except TypeError as exc:
            raise ExecutionError(
                f"Type error evaluating {left!r} {op} {right!r}: {exc}"
            ) from exc
        raise ExecutionError(f"Unknown binary operator {op!r}")

    def _evaluate_between(self, node: BetweenOp, env: Environment) -> Any:
        value = self.evaluate(node.expr, env)
        low = self.evaluate(node.low, env)
        high = self.evaluate(node.high, env)
        if value is None or low is None or high is None:
            return None
        result = low <= value <= high
        return not result if node.negated else result

    def _evaluate_in_list(self, node: InList, env: Environment) -> Any:
        value = self.evaluate(node.expr, env)
        if value is None:
            return None
        items = [self.evaluate(item, env) for item in node.items]
        found = any(item is not None and item == value for item in items)
        if not found and any(item is None for item in items):
            return None
        return not found if node.negated else found

    def _run_subquery(self, query: Select, env: Environment) -> Any:
        if self._subquery_executor is None:
            raise ExecutionError("Subqueries are not allowed in this context")
        return self._subquery_executor(query, env)

    def _evaluate_in_subquery(self, node: InSubquery, env: Environment) -> Any:
        value = self.evaluate(node.expr, env)
        if value is None:
            return None
        result = self._run_subquery(node.query, env)
        values = [row[0] for row in result.rows]
        found = any(item is not None and item == value for item in values)
        if not found and any(item is None for item in values):
            return None
        return not found if node.negated else found

    def _evaluate_exists(self, node: Exists, env: Environment) -> Any:
        result = self._run_subquery(node.query, env)
        found = result.row_count > 0
        return not found if node.negated else found

    def _evaluate_scalar_subquery(self, node: ScalarSubquery, env: Environment) -> Any:
        result = self._run_subquery(node.query, env)
        if result.row_count == 0:
            return None
        if len(result.columns) != 1:
            raise ExecutionError("Scalar subquery must return exactly one column")
        if result.row_count > 1:
            raise ExecutionError("Scalar subquery returned more than one row")
        return result.rows[0][0]

    def _evaluate_function(self, node: FunctionCall, env: Environment) -> Any:
        name = node.lower_name
        if is_scalar_function(name):
            args = [self.evaluate(arg, env) for arg in node.args]
            return call_scalar_function(name, args)
        # Aggregates must have been precomputed by the GROUP BY operator.
        key = to_sql(node)
        if key in self._aggregate_values:
            return self._aggregate_values[key]
        raise ExecutionError(
            f"Aggregate or unknown function {node.name!r} used outside of an "
            f"aggregation context"
        )

    def _evaluate_cast(self, node: Cast, env: Environment) -> Any:
        value = self.evaluate(node.expr, env)
        return sql_cast(value, node.target_type)

    def _evaluate_case(self, node: Case, env: Environment) -> Any:
        for arm in node.whens:
            if self.is_truthy(arm.condition, env):
                return self.evaluate(arm.result, env)
        if node.else_result is not None:
            return self.evaluate(node.else_result, env)
        return None


# --------------------------------------------------------------------------- #
# Vectorized evaluation over columnar batches
# --------------------------------------------------------------------------- #


class Batch:
    """A columnar batch of rows flowing between physical plan operators.

    Attributes:
        slots: ordered ``(binding, column)`` pairs, one per value column.
        columns: value lists parallel to ``slots``; all of length ``length``.
        length: number of rows in the batch.
        aliases: SELECT output aliases exposed to later items / ORDER BY,
            as ``alias -> value column``.
        aggregates: per-group aggregate results produced by the aggregation
            operator, keyed by the canonical SQL of the aggregate call.
    """

    __slots__ = ("slots", "columns", "length", "aliases", "aggregates")

    def __init__(
        self,
        slots: list[tuple[str, str]],
        columns: list[list[Any]],
        length: int,
        aliases: dict[str, list[Any]] | None = None,
        aggregates: dict[str, list[Any]] | None = None,
    ) -> None:
        self.slots = slots
        self.columns = columns
        self.length = length
        self.aliases = aliases or {}
        self.aggregates = aggregates or {}

    @classmethod
    def from_table(cls, table: "Table", binding: str) -> "Batch":
        """Zero-copy scan batch over a table's column lists (read-only)."""
        slots = [(binding, name) for name in table.column_names]
        columns = [table.column_data(name) for name in table.column_names]
        return cls(slots=slots, columns=columns, length=table.row_count)

    def take(self, indices: list[int]) -> "Batch":
        """Gather the given row positions into a new batch."""
        return Batch(
            slots=self.slots,
            columns=[[column[i] for i in indices] for column in self.columns],
            length=len(indices),
            aliases={name: [column[i] for i in indices] for name, column in self.aliases.items()},
            aggregates={
                key: [column[i] for i in indices] for key, column in self.aggregates.items()
            },
        )

    def filter(self, keep: list[bool], count: int) -> "Batch":
        """Apply a boolean selection mask (``count`` = number of True entries).

        Equivalent to ``take`` on the mask's index positions but gathers with
        ``itertools.compress``, which walks each column once at C speed.
        """
        return Batch(
            slots=self.slots,
            columns=[list(compress(column, keep)) for column in self.columns],
            length=count,
            aliases={
                name: list(compress(column, keep)) for name, column in self.aliases.items()
            },
            aggregates={
                key: list(compress(column, keep)) for key, column in self.aggregates.items()
            },
        )

    def slice(self, start: int, stop: int | None) -> "Batch":
        """Row range [start, stop) as a new batch (used by LIMIT/OFFSET)."""
        columns = [column[start:stop] for column in self.columns]
        length = len(columns[0]) if columns else max(
            0, (self.length if stop is None else min(stop, self.length)) - start
        )
        return Batch(
            slots=self.slots,
            columns=columns,
            length=length,
            aliases={name: column[start:stop] for name, column in self.aliases.items()},
            aggregates={key: column[start:stop] for key, column in self.aggregates.items()},
        )

    def slot_indices(self, ref: ColumnRef) -> list[int]:
        """Positions of the slots a column reference could resolve to."""
        return [
            index
            for index, (binding, column) in enumerate(self.slots)
            if column == ref.name and (not ref.table or ref.table == binding)
        ]

    def rows(self) -> list[tuple[Any, ...]]:
        """Materialize the batch's value columns as row tuples."""
        if not self.columns:
            return [() for _ in range(self.length)]
        return list(zip(*self.columns))


class BatchRowView(Environment):
    """One batch row exposed through the row-wise :class:`Environment` API.

    Used as the correlation context for subqueries executed per outer row, and
    as the fallback environment when a vectorized expression needs row-at-a-
    time evaluation (short-circuit semantics).
    """

    def __init__(self, batch: Batch, index: int, parent: Environment | None = None) -> None:
        super().__init__(parent=parent)
        self._batch = batch
        self._index = index

    def resolve(self, column: ColumnRef) -> Any:
        matches = self._batch.slot_indices(column)
        if len(matches) == 1:
            return self._batch.columns[matches[0]][self._index]
        if len(matches) > 1:
            raise ExecutionError(f"Ambiguous column reference {column.qualified_name!r}")
        if not column.table and column.name in self._batch.aliases:
            return self._batch.aliases[column.name][self._index]
        if not column.table and column.name in self.aliases:
            return self.aliases[column.name]
        if self.parent is not None:
            return self.parent.resolve(column)
        raise ExecutionError(f"Unknown column {column.qualified_name!r}")

    def aggregate_values(self) -> dict[str, Any]:
        """This row's precomputed aggregate values (for row-wise fallback)."""
        return {key: column[self._index] for key, column in self._batch.aggregates.items()}


class CorrelationProbe(Environment):
    """Environment proxy recording whether an outer column was ever resolved.

    The physical executor wraps the outer row context in a probe while running
    a subquery; if the probe is never consulted the subquery result is safe to
    memoize across outer rows.
    """

    def __init__(self, inner: Environment | None) -> None:
        super().__init__(parent=inner)
        self.correlated = False

    def resolve(self, column: ColumnRef) -> Any:
        self.correlated = True
        if self.parent is None:
            raise ExecutionError(f"Unknown column {column.qualified_name!r}")
        return self.parent.resolve(column)


class VectorEvaluator:
    """Evaluates expression ASTs column-at-a-time over a :class:`Batch`.

    The evaluator mirrors :class:`ExpressionEvaluator`'s SQL semantics exactly
    (three-valued logic, NULL propagation, LIKE, CASE).  Expressions whose
    semantics require per-row short-circuiting (AND/OR right operands or CASE
    arms that raise when evaluated eagerly) fall back to row-wise evaluation,
    so vectorization is never observable in results or errors.

    Args:
        context: execution context providing ``outer`` (the enclosing query's
            row environment for correlated references), ``parameters`` and
            ``run_subquery(select, row_env)``.  ``None`` means subqueries and
            outer references are unavailable (both then raise).
    """

    def __init__(self, context: "ExecutionContextProtocol | None" = None) -> None:
        self._context = context
        self._like_memo: dict[str, re.Pattern[str]] = {}

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #

    def eval(self, node: SqlNode, batch: Batch) -> list[Any]:
        """Evaluate ``node`` for every row of ``batch``."""
        if batch.aggregates:
            key = to_sql(node)
            if key in batch.aggregates:
                return batch.aggregates[key]

        if isinstance(node, Literal):
            return [node.value] * batch.length
        if isinstance(node, ColumnRef):
            return self._resolve_column(node, batch)
        if isinstance(node, Parameter):
            parameters = self._context.parameters if self._context is not None else {}
            if node.name not in parameters:
                raise ExecutionError(f"Missing value for parameter :{node.name}")
            return [parameters[node.name]] * batch.length
        if isinstance(node, Star):
            raise ExecutionError("'*' is only valid inside count(*) or a SELECT list")
        if isinstance(node, UnaryOp):
            return self._eval_unary(node, batch)
        if isinstance(node, BinaryOp):
            return self._eval_binary(node, batch)
        if isinstance(node, BetweenOp):
            return self._eval_between(node, batch)
        if isinstance(node, InList):
            return self._eval_in_list(node, batch)
        if isinstance(node, InSubquery):
            return self._eval_in_subquery(node, batch)
        if isinstance(node, Exists):
            return self._eval_exists(node, batch)
        if isinstance(node, ScalarSubquery):
            return self._eval_scalar_subquery(node, batch)
        if isinstance(node, IsNull):
            values = self.eval(node.expr, batch)
            if node.negated:
                return [value is not None for value in values]
            return [value is None for value in values]
        if isinstance(node, FunctionCall):
            return self._eval_function(node, batch)
        if isinstance(node, Cast):
            values = self.eval(node.expr, batch)
            return [sql_cast(value, node.target_type) for value in values]
        if isinstance(node, Case):
            return self._eval_case(node, batch)
        raise ExecutionError(f"Cannot evaluate expression node {type(node).__name__}")

    def eval_predicate(self, node: SqlNode, batch: Batch) -> list[bool]:
        """Evaluate a predicate per row; NULL counts as false.

        The common scan-filter shapes — comparisons and BETWEEN with literal
        bounds, LIKE with a literal pattern, IN over literal lists, IS NULL,
        and AND/OR compositions of those — are fused into a single selection
        pass producing booleans directly, instead of materializing the
        intermediate three-valued column that a generic ``eval()`` plus a
        booleanize pass would.  Fusion is skipped for aggregate batches
        (HAVING), where aggregate substitution must stay on the generic path.
        """
        if not batch.aggregates:
            fused = self._fused_predicate(node, batch)
            if fused is not None:
                return fused
        values = self.eval(node, batch)
        return [bool(value) if value is not None else False for value in values]

    def _fused_predicate(self, node: SqlNode, batch: Batch) -> list[bool] | None:
        """Selection vector for a fusable predicate, or None to fall back.

        Each fused form computes ``value IS TRUE`` per row under SQL
        three-valued logic: a NULL operand can never satisfy a fused
        comparison, so ``a is not None and a < c`` is exactly the
        NULL-propagating comparison collapsed with the NULL-counts-as-false
        rule.  Exceptions mirror the generic path: a raising left conjunct
        propagates, a raising right conjunct falls back to exact row-wise
        evaluation (short-circuit semantics).
        """
        if isinstance(node, BinaryOp):
            op = node.op
            if op in ("AND", "OR"):
                left = self._fused_predicate(node.left, batch)
                if left is None:
                    return None
                try:
                    right = self._fused_predicate(node.right, batch)
                except (ExecutionError, TypeError):
                    values = self._eval_rowwise(node, batch)
                    return [bool(value) if value is not None else False for value in values]
                if right is None:
                    return None
                # Fused sub-predicates are guaranteed bool vectors, so the
                # bitwise operators compute the logical merge at C speed.
                if op == "AND":
                    return list(map(and_, left, right))
                return list(map(or_, left, right))
            if op in ("=", "<>", "<", "<=", ">", ">="):
                return self._fused_comparison(node, batch)
            if op == "LIKE" and isinstance(node.right, Literal):
                pattern = node.right.value
                if pattern is None:
                    return [False] * batch.length
                compiled = self._like_pattern(str(pattern))
                values = self.eval(node.left, batch)
                return [
                    value is not None and compiled.match(str(value)) is not None
                    for value in values
                ]
            return None
        if isinstance(node, BetweenOp):
            return self._fused_between(node, batch)
        if isinstance(node, IsNull):
            values = self.eval(node.expr, batch)
            if node.negated:
                return [value is not None for value in values]
            return [value is None for value in values]
        if isinstance(node, InList):
            return self._fused_in_list(node, batch)
        return None

    def _fused_comparison(self, node: BinaryOp, batch: Batch) -> list[bool] | None:
        op = node.op
        if isinstance(node.right, Literal):
            constant = node.right.value
            if constant is None:
                return [False] * batch.length
            values = self.eval(node.left, batch)
        elif isinstance(node.left, Literal):
            constant = node.left.value
            if constant is None:
                return [False] * batch.length
            values = self.eval(node.right, batch)
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        else:
            left = self.eval(node.left, batch)
            right = self.eval(node.right, batch)
            pairs = zip(left, right)
            if op == "=":
                return [a is not None and b is not None and a == b for a, b in pairs]
            if op == "<>":
                return [a is not None and b is not None and a != b for a, b in pairs]
            if op == "<":
                return [a is not None and b is not None and a < b for a, b in pairs]
            if op == "<=":
                return [a is not None and b is not None and a <= b for a, b in pairs]
            if op == ">":
                return [a is not None and b is not None and a > b for a, b in pairs]
            return [a is not None and b is not None and a >= b for a, b in pairs]
        constant_value = constant
        if None not in values:
            # Null-free column (the common case for base-table scans): drop
            # the per-row NULL test entirely.  ``in`` does an identity-first
            # C-speed sweep, so the precheck costs one pass, not a listcomp.
            if op == "=":
                return [value == constant_value for value in values]
            if op == "<>":
                return [value != constant_value for value in values]
            if op == "<":
                return [value < constant_value for value in values]
            if op == "<=":
                return [value <= constant_value for value in values]
            if op == ">":
                return [value > constant_value for value in values]
            return [value >= constant_value for value in values]
        if op == "=":
            return [value is not None and value == constant_value for value in values]
        if op == "<>":
            return [value is not None and value != constant_value for value in values]
        if op == "<":
            return [value is not None and value < constant_value for value in values]
        if op == "<=":
            return [value is not None and value <= constant_value for value in values]
        if op == ">":
            return [value is not None and value > constant_value for value in values]
        return [value is not None and value >= constant_value for value in values]

    def _fused_between(self, node: BetweenOp, batch: Batch) -> list[bool] | None:
        if isinstance(node.low, Literal) and isinstance(node.high, Literal):
            low, high = node.low.value, node.high.value
            if low is None or high is None:
                return [False] * batch.length
            values = self.eval(node.expr, batch)
            if None not in values:
                if node.negated:
                    return [not low <= value <= high for value in values]
                return [low <= value <= high for value in values]
            if node.negated:
                return [
                    value is not None and not (low <= value <= high) for value in values
                ]
            return [value is not None and low <= value <= high for value in values]
        values = self.eval(node.expr, batch)
        lows = self.eval(node.low, batch)
        highs = self.eval(node.high, batch)
        out: list[bool] = []
        for value, low, high in zip(values, lows, highs):
            if value is None or low is None or high is None:
                out.append(False)
            else:
                inside = low <= value <= high
                out.append(not inside if node.negated else inside)
        return out

    def _fused_in_list(self, node: InList, batch: Batch) -> list[bool] | None:
        if not all(isinstance(item, Literal) for item in node.items):
            return None
        items = [item.value for item in node.items]
        has_null_item = any(item is None for item in items)
        if node.negated and has_null_item:
            # value NOT IN (..., NULL, ...) is never true: either the value
            # matches (false) or the NULL comparison makes the result NULL.
            return [False] * batch.length
        try:
            members = {item for item in items if item is not None}
        except TypeError:
            return None
        values = self.eval(node.expr, batch)
        try:
            if node.negated:
                return [value is not None and value not in members for value in values]
            return [value is not None and value in members for value in values]
        except TypeError:
            # An unhashable probe value: the generic equality loop handles it.
            return None

    # ------------------------------------------------------------------ #
    # Column resolution
    # ------------------------------------------------------------------ #

    def _resolve_column(self, ref: ColumnRef, batch: Batch) -> list[Any]:
        matches = batch.slot_indices(ref)
        if len(matches) == 1:
            return batch.columns[matches[0]]
        if len(matches) > 1:
            raise ExecutionError(f"Ambiguous column reference {ref.qualified_name!r}")
        if not ref.table and ref.name in batch.aliases:
            return batch.aliases[ref.name]
        outer = self._context.outer if self._context is not None else None
        if outer is not None:
            value = outer.resolve(ref)
            return [value] * batch.length
        raise ExecutionError(f"Unknown column {ref.qualified_name!r}")

    # ------------------------------------------------------------------ #
    # Operators
    # ------------------------------------------------------------------ #

    def _eval_unary(self, node: UnaryOp, batch: Batch) -> list[Any]:
        values = self.eval(node.operand, batch)
        if node.op == "NOT":
            return [None if value is None else not bool(value) for value in values]
        if node.op == "-":
            return [None if value is None else -value for value in values]
        if node.op == "+":
            return [None if value is None else +value for value in values]
        raise ExecutionError(f"Unknown unary operator {node.op!r}")

    def _eval_binary(self, node: BinaryOp, batch: Batch) -> list[Any]:
        op = node.op
        if op in ("AND", "OR"):
            return self._eval_logical(node, batch)

        left = self.eval(node.left, batch)
        right = self.eval(node.right, batch)
        pairs = zip(left, right)
        if op == "=":
            return [None if a is None or b is None else a == b for a, b in pairs]
        if op == "<>":
            return [None if a is None or b is None else a != b for a, b in pairs]
        if op == "<":
            return [None if a is None or b is None else a < b for a, b in pairs]
        if op == "<=":
            return [None if a is None or b is None else a <= b for a, b in pairs]
        if op == ">":
            return [None if a is None or b is None else a > b for a, b in pairs]
        if op == ">=":
            return [None if a is None or b is None else a >= b for a, b in pairs]
        if op == "LIKE":
            return [
                None
                if a is None or b is None
                else bool(self._like_pattern(str(b)).match(str(a)))
                for a, b in pairs
            ]
        if op == "||":
            return [None if a is None or b is None else str(a) + str(b) for a, b in pairs]
        if op in ("+", "-", "*", "/", "%"):
            return self._eval_arithmetic(op, left, right)
        raise ExecutionError(f"Unknown binary operator {op!r}")

    def _like_pattern(self, pattern: str) -> re.Pattern[str]:
        compiled = self._like_memo.get(pattern)
        if compiled is None:
            compiled = like_to_regex(pattern)
            self._like_memo[pattern] = compiled
        return compiled

    @staticmethod
    def _eval_arithmetic(op: str, left: list[Any], right: list[Any]) -> list[Any]:
        out: list[Any] = []
        append = out.append
        for a, b in zip(left, right):
            if a is None or b is None:
                append(None)
                continue
            try:
                if op == "+":
                    append(a + b)
                elif op == "-":
                    append(a - b)
                elif op == "*":
                    append(a * b)
                elif op == "/":
                    append(None if b == 0 else a / b)
                else:  # "%"
                    append(None if b == 0 else a % b)
            except TypeError as exc:
                raise ExecutionError(
                    f"Type error evaluating {a!r} {op} {b!r}: {exc}"
                ) from exc
        return out

    def _eval_logical(self, node: BinaryOp, batch: Batch) -> list[Any]:
        left = self.eval(node.left, batch)
        try:
            right = self.eval(node.right, batch)
        except (ExecutionError, TypeError):
            # The right operand raised when evaluated for every row (raw
            # TypeError covers comparisons over mixed types); the rows that
            # error may be short-circuited away row-wise, so retry with exact
            # per-row semantics.
            return self._eval_rowwise(node, batch)
        out: list[Any] = []
        if node.op == "AND":
            for a, b in zip(left, right):
                if (a is not None and not a) or (b is not None and not b):
                    out.append(False)
                elif a is None or b is None:
                    out.append(None)
                else:
                    out.append(True)
        else:  # OR
            for a, b in zip(left, right):
                if (a is not None and a) or (b is not None and b):
                    out.append(True)
                elif a is None or b is None:
                    out.append(None)
                else:
                    out.append(False)
        return out

    def _eval_between(self, node: BetweenOp, batch: Batch) -> list[Any]:
        values = self.eval(node.expr, batch)
        lows = self.eval(node.low, batch)
        highs = self.eval(node.high, batch)
        out: list[Any] = []
        for value, low, high in zip(values, lows, highs):
            if value is None or low is None or high is None:
                out.append(None)
            else:
                result = low <= value <= high
                out.append(not result if node.negated else result)
        return out

    def _eval_in_list(self, node: InList, batch: Batch) -> list[Any]:
        values = self.eval(node.expr, batch)
        item_columns = [self.eval(item, batch) for item in node.items]
        out: list[Any] = []
        for index, value in enumerate(values):
            if value is None:
                out.append(None)
                continue
            items = [column[index] for column in item_columns]
            found = any(item is not None and item == value for item in items)
            if not found and any(item is None for item in items):
                out.append(None)
            else:
                out.append(not found if node.negated else found)
        return out

    # ------------------------------------------------------------------ #
    # Subqueries (executed per row through the execution context)
    # ------------------------------------------------------------------ #

    def _run_subquery(self, query: Select, batch: Batch, index: int) -> Any:
        if self._context is None:
            raise ExecutionError("Subqueries are not allowed in this context")
        outer = self._context.outer if self._context is not None else None
        row_env = BatchRowView(batch, index, parent=outer)
        return self._context.run_subquery(query, row_env)

    def _eval_in_subquery(self, node: InSubquery, batch: Batch) -> list[Any]:
        values = self.eval(node.expr, batch)
        out: list[Any] = []
        # Uncorrelated subqueries are memoized by the executor and come back
        # as the same PlanResult object for every outer row; keep the member
        # extraction (and the hash set, when the members allow one) keyed to
        # that identity instead of rebuilding them per row.
        last_result: Any = None
        members: list[Any] = []
        member_set: set[Any] | None = None
        has_null_member = False
        for index, value in enumerate(values):
            if value is None:
                out.append(None)
                continue
            result = self._run_subquery(node.query, batch, index)
            if result is not last_result:
                last_result = result
                members = [row[0] for row in result.rows]
                has_null_member = any(item is None for item in members)
                try:
                    member_set = {item for item in members if item is not None}
                except TypeError:
                    member_set = None
            if member_set is not None:
                try:
                    found = value in member_set
                except TypeError:
                    found = any(item is not None and item == value for item in members)
            else:
                found = any(item is not None and item == value for item in members)
            if not found and has_null_member:
                out.append(None)
            else:
                out.append(not found if node.negated else found)
        return out

    def _eval_exists(self, node: Exists, batch: Batch) -> list[Any]:
        out: list[Any] = []
        for index in range(batch.length):
            result = self._run_subquery(node.query, batch, index)
            found = result.row_count > 0
            out.append(not found if node.negated else found)
        return out

    def _eval_scalar_subquery(self, node: ScalarSubquery, batch: Batch) -> list[Any]:
        out: list[Any] = []
        for index in range(batch.length):
            result = self._run_subquery(node.query, batch, index)
            if result.row_count == 0:
                out.append(None)
                continue
            if len(result.columns) != 1:
                raise ExecutionError("Scalar subquery must return exactly one column")
            if result.row_count > 1:
                raise ExecutionError("Scalar subquery returned more than one row")
            out.append(result.rows[0][0])
        return out

    # ------------------------------------------------------------------ #
    # Functions, CASE and the row-wise fallback
    # ------------------------------------------------------------------ #

    def _eval_function(self, node: FunctionCall, batch: Batch) -> list[Any]:
        name = node.lower_name
        if is_scalar_function(name):
            arg_columns = [self.eval(arg, batch) for arg in node.args]
            return [
                call_scalar_function(name, [column[index] for column in arg_columns])
                for index in range(batch.length)
            ]
        raise ExecutionError(
            f"Aggregate or unknown function {node.name!r} used outside of an "
            f"aggregation context"
        )

    def _eval_case(self, node: Case, batch: Batch) -> list[Any]:
        try:
            condition_columns = [
                self.eval_predicate(arm.condition, batch) for arm in node.whens
            ]
            result_columns = [self.eval(arm.result, batch) for arm in node.whens]
            else_column = (
                self.eval(node.else_result, batch)
                if node.else_result is not None
                else [None] * batch.length
            )
        except (ExecutionError, TypeError):
            # An arm raised when evaluated for every row; the rows that error
            # may never reach that arm row-wise, so retry with exact per-row
            # (first-matching-arm) semantics.
            return self._eval_rowwise(node, batch)
        out: list[Any] = []
        for index in range(batch.length):
            for conditions, results in zip(condition_columns, result_columns):
                if conditions[index]:
                    out.append(results[index])
                    break
            else:
                out.append(else_column[index])
        return out

    def _eval_rowwise(self, node: SqlNode, batch: Batch) -> list[Any]:
        """Exact per-row evaluation via the row-wise evaluator (fallback)."""
        outer = self._context.outer if self._context is not None else None
        subquery_executor = None
        if self._context is not None:
            subquery_executor = self._context.run_subquery
        out: list[Any] = []
        for index in range(batch.length):
            row_env = BatchRowView(batch, index, parent=outer)
            evaluator = ExpressionEvaluator(
                subquery_executor=subquery_executor,
                aggregate_values=row_env.aggregate_values(),
                parameters=self._context.parameters if self._context is not None else {},
            )
            out.append(evaluator.evaluate(node, row_env))
        return out


class ExecutionContextProtocol:
    """Structural interface the executor provides to :class:`VectorEvaluator`.

    Attributes:
        outer: the enclosing query's row environment (correlation context).
        parameters: named query parameter values.
    """

    outer: Environment | None
    parameters: dict[str, Any]

    def run_subquery(self, query: Select, row_env: Environment) -> Any:  # pragma: no cover
        raise NotImplementedError
