"""Expression evaluation over row environments.

The executor materializes each row as an :class:`Environment` binding table
aliases to column values.  The :class:`ExpressionEvaluator` walks expression
ASTs against an environment, with hooks for

* correlated subqueries (via a parent environment chain),
* aggregate values precomputed by the GROUP BY operator,
* SELECT-list aliases referenced from ORDER BY / HAVING.
"""

from __future__ import annotations

import re
from typing import Any, Callable

from repro.errors import ExecutionError
from repro.engine.functions import call_scalar_function, is_scalar_function
from repro.sql.ast_nodes import (
    BetweenOp,
    BinaryOp,
    Case,
    Cast,
    ColumnRef,
    Exists,
    FunctionCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    Parameter,
    ScalarSubquery,
    Select,
    SqlNode,
    Star,
    UnaryOp,
)
from repro.sql.printer import to_sql


class Environment:
    """One row's visible bindings during evaluation.

    Attributes:
        bindings: table binding name -> {column name -> value}.
        aliases: SELECT output aliases available to ORDER BY / HAVING.
        parent: enclosing query's environment (for correlated subqueries).
    """

    def __init__(
        self,
        bindings: dict[str, dict[str, Any]] | None = None,
        parent: "Environment | None" = None,
    ) -> None:
        self.bindings: dict[str, dict[str, Any]] = bindings or {}
        self.aliases: dict[str, Any] = {}
        self.parent = parent

    def bind(self, binding_name: str, values: dict[str, Any]) -> None:
        self.bindings[binding_name] = values

    def child(self) -> "Environment":
        """A fresh environment whose unresolved names fall through to this one."""
        return Environment(parent=self)

    def merged_with(self, other: "Environment") -> "Environment":
        """A new environment containing both rows' bindings (used by joins)."""
        merged = Environment(parent=self.parent)
        merged.bindings = {**self.bindings, **other.bindings}
        return merged

    def resolve(self, column: ColumnRef) -> Any:
        """Resolve a column reference to its value.

        Raises ExecutionError when the column is unknown in this environment
        chain or is ambiguous within one level.
        """
        found: list[Any] = []
        for binding_name, values in self.bindings.items():
            if column.table and column.table != binding_name:
                continue
            if column.name in values:
                found.append(values[column.name])
        if len(found) == 1:
            return found[0]
        if len(found) > 1:
            raise ExecutionError(f"Ambiguous column reference {column.qualified_name!r}")
        if not column.table and column.name in self.aliases:
            return self.aliases[column.name]
        if self.parent is not None:
            return self.parent.resolve(column)
        raise ExecutionError(f"Unknown column {column.qualified_name!r}")

    def first_binding(self) -> dict[str, Any]:
        """Values of the first binding (used by ``SELECT *`` expansion)."""
        for values in self.bindings.values():
            return values
        return {}

    def all_values(self) -> list[tuple[str, str, Any]]:
        """Every (binding, column, value) triple — used by Star expansion."""
        triples = []
        for binding_name, values in self.bindings.items():
            for column_name, value in values.items():
                triples.append((binding_name, column_name, value))
        return triples


def like_to_regex(pattern: str) -> re.Pattern[str]:
    """Convert a SQL LIKE pattern to an anchored regular expression."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def sql_equal(left: Any, right: Any) -> bool | None:
    """SQL equality with NULL propagation."""
    if left is None or right is None:
        return None
    return left == right


def sql_compare(op: str, left: Any, right: Any) -> bool | None:
    """Evaluate a comparison operator with NULL propagation."""
    if left is None or right is None:
        return None
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ExecutionError(f"Unknown comparison operator {op!r}")


class ExpressionEvaluator:
    """Evaluates expression ASTs against an :class:`Environment`.

    Args:
        subquery_executor: callback ``(select, env) -> QueryResult`` used to run
            nested subqueries with the current environment as correlation
            context.  May be None for expression contexts that cannot contain
            subqueries (the evaluator then raises on encountering one).
        aggregate_values: precomputed aggregate results for the current group,
            keyed by the canonical SQL text of the aggregate call.
        parameters: values for named/positional query parameters.
    """

    def __init__(
        self,
        subquery_executor: Callable[[Select, Environment], Any] | None = None,
        aggregate_values: dict[str, Any] | None = None,
        parameters: dict[str, Any] | None = None,
    ) -> None:
        self._subquery_executor = subquery_executor
        self._aggregate_values = aggregate_values or {}
        self._parameters = parameters or {}

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #

    def evaluate(self, node: SqlNode, env: Environment) -> Any:
        if self._aggregate_values:
            key = to_sql(node)
            if key in self._aggregate_values:
                return self._aggregate_values[key]

        if isinstance(node, Literal):
            return node.value
        if isinstance(node, ColumnRef):
            return env.resolve(node)
        if isinstance(node, Parameter):
            if node.name not in self._parameters:
                raise ExecutionError(f"Missing value for parameter :{node.name}")
            return self._parameters[node.name]
        if isinstance(node, Star):
            raise ExecutionError("'*' is only valid inside count(*) or a SELECT list")
        if isinstance(node, UnaryOp):
            return self._evaluate_unary(node, env)
        if isinstance(node, BinaryOp):
            return self._evaluate_binary(node, env)
        if isinstance(node, BetweenOp):
            return self._evaluate_between(node, env)
        if isinstance(node, InList):
            return self._evaluate_in_list(node, env)
        if isinstance(node, InSubquery):
            return self._evaluate_in_subquery(node, env)
        if isinstance(node, Exists):
            return self._evaluate_exists(node, env)
        if isinstance(node, ScalarSubquery):
            return self._evaluate_scalar_subquery(node, env)
        if isinstance(node, IsNull):
            value = self.evaluate(node.expr, env)
            return (value is not None) if node.negated else (value is None)
        if isinstance(node, FunctionCall):
            return self._evaluate_function(node, env)
        if isinstance(node, Cast):
            return self._evaluate_cast(node, env)
        if isinstance(node, Case):
            return self._evaluate_case(node, env)
        raise ExecutionError(f"Cannot evaluate expression node {type(node).__name__}")

    def is_truthy(self, node: SqlNode, env: Environment) -> bool:
        """Evaluate a predicate: NULL counts as false (SQL three-valued logic)."""
        value = self.evaluate(node, env)
        return bool(value) if value is not None else False

    # ------------------------------------------------------------------ #
    # Operators
    # ------------------------------------------------------------------ #

    def _evaluate_unary(self, node: UnaryOp, env: Environment) -> Any:
        value = self.evaluate(node.operand, env)
        if node.op == "NOT":
            if value is None:
                return None
            return not bool(value)
        if value is None:
            return None
        if node.op == "-":
            return -value
        if node.op == "+":
            return +value
        raise ExecutionError(f"Unknown unary operator {node.op!r}")

    def _evaluate_binary(self, node: BinaryOp, env: Environment) -> Any:
        op = node.op
        if op == "AND":
            left = self.evaluate(node.left, env)
            if left is not None and not left:
                return False
            right = self.evaluate(node.right, env)
            if right is not None and not right:
                return False
            if left is None or right is None:
                return None
            return True
        if op == "OR":
            left = self.evaluate(node.left, env)
            if left is not None and left:
                return True
            right = self.evaluate(node.right, env)
            if right is not None and right:
                return True
            if left is None or right is None:
                return None
            return False

        left = self.evaluate(node.left, env)
        right = self.evaluate(node.right, env)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return sql_compare(op, left, right)
        if op == "LIKE":
            if left is None or right is None:
                return None
            return bool(like_to_regex(str(right)).match(str(left)))
        if op == "||":
            if left is None or right is None:
                return None
            return str(left) + str(right)
        if left is None or right is None:
            return None
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if right == 0:
                    return None
                if isinstance(left, int) and isinstance(right, int):
                    return left / right
                return left / right
            if op == "%":
                if right == 0:
                    return None
                return left % right
        except TypeError as exc:
            raise ExecutionError(
                f"Type error evaluating {left!r} {op} {right!r}: {exc}"
            ) from exc
        raise ExecutionError(f"Unknown binary operator {op!r}")

    def _evaluate_between(self, node: BetweenOp, env: Environment) -> Any:
        value = self.evaluate(node.expr, env)
        low = self.evaluate(node.low, env)
        high = self.evaluate(node.high, env)
        if value is None or low is None or high is None:
            return None
        result = low <= value <= high
        return not result if node.negated else result

    def _evaluate_in_list(self, node: InList, env: Environment) -> Any:
        value = self.evaluate(node.expr, env)
        if value is None:
            return None
        items = [self.evaluate(item, env) for item in node.items]
        found = any(item is not None and item == value for item in items)
        if not found and any(item is None for item in items):
            return None
        return not found if node.negated else found

    def _run_subquery(self, query: Select, env: Environment) -> Any:
        if self._subquery_executor is None:
            raise ExecutionError("Subqueries are not allowed in this context")
        return self._subquery_executor(query, env)

    def _evaluate_in_subquery(self, node: InSubquery, env: Environment) -> Any:
        value = self.evaluate(node.expr, env)
        if value is None:
            return None
        result = self._run_subquery(node.query, env)
        values = [row[0] for row in result.rows]
        found = any(item is not None and item == value for item in values)
        if not found and any(item is None for item in values):
            return None
        return not found if node.negated else found

    def _evaluate_exists(self, node: Exists, env: Environment) -> Any:
        result = self._run_subquery(node.query, env)
        found = result.row_count > 0
        return not found if node.negated else found

    def _evaluate_scalar_subquery(self, node: ScalarSubquery, env: Environment) -> Any:
        result = self._run_subquery(node.query, env)
        if result.row_count == 0:
            return None
        if len(result.columns) != 1:
            raise ExecutionError("Scalar subquery must return exactly one column")
        if result.row_count > 1:
            raise ExecutionError("Scalar subquery returned more than one row")
        return result.rows[0][0]

    def _evaluate_function(self, node: FunctionCall, env: Environment) -> Any:
        name = node.lower_name
        if is_scalar_function(name):
            args = [self.evaluate(arg, env) for arg in node.args]
            return call_scalar_function(name, args)
        # Aggregates must have been precomputed by the GROUP BY operator.
        key = to_sql(node)
        if key in self._aggregate_values:
            return self._aggregate_values[key]
        raise ExecutionError(
            f"Aggregate or unknown function {node.name!r} used outside of an "
            f"aggregation context"
        )

    def _evaluate_cast(self, node: Cast, env: Environment) -> Any:
        value = self.evaluate(node.expr, env)
        if value is None:
            return None
        target = node.target_type
        try:
            if target in ("int", "integer", "bigint"):
                return int(float(value))
            if target in ("float", "real", "double"):
                return float(value)
            if target in ("text", "varchar", "char", "string"):
                return str(value)
            if target in ("boolean", "bool"):
                return bool(value)
            if target == "date":
                return str(value)[:10]
        except (TypeError, ValueError) as exc:
            raise ExecutionError(f"Cannot cast {value!r} to {target}: {exc}") from exc
        raise ExecutionError(f"Unknown cast target type {target!r}")

    def _evaluate_case(self, node: Case, env: Environment) -> Any:
        for arm in node.whens:
            if self.is_truthy(arm.condition, env):
                return self.evaluate(arm.result, env)
        if node.else_result is not None:
            return self.evaluate(node.else_result, env)
        return None
