"""The catalog: a named collection of in-memory tables.

The catalog is the engine's entry point — it owns the tables, exposes their
schemas to the analyzer, and provides :meth:`Catalog.execute` to run SQL text
or ASTs through the planner/executor.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.errors import CatalogError
from repro.engine.table import QueryResult, Table
from repro.sql.ast_nodes import Select, SetOperation, SqlNode
from repro.sql.parser import parse
from repro.sql.schema import TableSchema


class Catalog:
    """A named collection of tables plus query execution facilities."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    # ------------------------------------------------------------------ #
    # Table management
    # ------------------------------------------------------------------ #

    def register(self, table: Table, replace: bool = False) -> None:
        """Register a table under its own name."""
        key = table.name.lower()
        if key in self._tables and not replace:
            raise CatalogError(f"Table {table.name!r} already exists in the catalog")
        self._tables[key] = table

    def create_table(
        self,
        name: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[Any]] = (),
        replace: bool = False,
    ) -> Table:
        """Create and register a table from rows."""
        table = Table(name=name, columns=columns, rows=rows)
        self.register(table, replace=replace)
        return table

    def drop(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"Cannot drop unknown table {name!r}")
        del self._tables[key]

    def table(self, name: str) -> Table:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"Unknown table {name!r}")
        return self._tables[key]

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return sorted(table.name for table in self._tables.values())

    def schemas(self) -> dict[str, TableSchema]:
        """Schemas of every registered table, keyed by table name."""
        return {table.name: table.schema() for table in self._tables.values()}

    # ------------------------------------------------------------------ #
    # Query execution
    # ------------------------------------------------------------------ #

    def execute(self, query: str | SqlNode) -> QueryResult:
        """Execute a SQL string or parsed AST and return its result."""
        # Imported here to avoid a circular import: the executor needs the
        # catalog type for scans.
        from repro.engine.executor import Executor

        node = parse(query) if isinstance(query, str) else query
        if not isinstance(node, (Select, SetOperation)):
            raise CatalogError(f"Only SELECT queries can be executed, got {type(node).__name__}")
        return Executor(self).execute(node)

    def explain(self, query: str | SqlNode) -> str:
        """Return a textual logical plan for the query (for debugging/tests)."""
        from repro.engine.planner import Planner

        node = parse(query) if isinstance(query, str) else query
        if not isinstance(node, (Select, SetOperation)):
            raise CatalogError(f"Only SELECT queries can be planned, got {type(node).__name__}")
        plan = Planner(self.schemas()).plan(node)
        return plan.pretty()

    def __contains__(self, name: str) -> bool:
        return self.has_table(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Catalog(tables={self.table_names()})"
