"""The catalog: a named collection of in-memory tables.

The catalog is the engine's entry point — it owns the tables, exposes their
schemas to the analyzer, and provides :meth:`Catalog.execute` to run SQL text
or ASTs through the planner/executor.  It also owns the two execution caches:

* a **plan cache** of compiled physical plans keyed by SQL text (cleared when
  the set of tables changes), so repeated query shapes skip planning;
* a **result cache** (:class:`~repro.engine.query_cache.QueryCache`) keyed by
  canonical SQL plus the catalog data version, so repeated equivalent queries
  — the dominant pattern in interface instantiation and search — skip
  execution entirely.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.errors import CatalogError
from repro.engine.query_cache import QueryCache, cache_key
from repro.engine.table import QueryResult, Table
from repro.sql.ast_nodes import Select, SetOperation, SqlNode
from repro.sql.parser import parse
from repro.sql.schema import TableSchema


#: FIFO capacity of the parsed-AST cache.  Query texts repeat heavily in the
#: interface/search workloads, and parsing is a measurable slice of warm
#: execution; parsed ASTs are immutable by engine convention, so sharing one
#: node tree across executions is safe (and lets the executor's identity-keyed
#: memos hit too).
AST_CACHE_CAPACITY = 512


class Catalog:
    """A named collection of tables plus query execution facilities."""

    def __init__(self, query_cache_capacity: int = 256) -> None:
        self._tables: dict[str, Table] = {}
        self._schema_version = 0
        self._plan_cache: dict = {}
        self._ast_cache: dict[str, SqlNode] = {}
        self._query_cache = QueryCache(capacity=query_cache_capacity)

    def _parse(self, text: str) -> SqlNode:
        """Parse SQL text with a bounded FIFO memo of the resulting AST."""
        node = self._ast_cache.get(text)
        if node is None:
            node = parse(text)
            self._ast_cache[text] = node
            while len(self._ast_cache) > AST_CACHE_CAPACITY:
                self._ast_cache.pop(next(iter(self._ast_cache)))
        return node

    # ------------------------------------------------------------------ #
    # Table management
    # ------------------------------------------------------------------ #

    def _bump_schema_version(self) -> None:
        self._schema_version += 1
        # Compiled plans may have baked in join-key side analysis against the
        # old table set; recompile rather than risk a stale classification.
        self._plan_cache.clear()

    def register(self, table: Table, replace: bool = False) -> None:
        """Register a table under its own name."""
        key = table.name.lower()
        if key in self._tables and not replace:
            raise CatalogError(f"Table {table.name!r} already exists in the catalog")
        self._tables[key] = table
        self._bump_schema_version()

    def create_table(
        self,
        name: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[Any]] = (),
        replace: bool = False,
    ) -> Table:
        """Create and register a table from rows."""
        table = Table(name=name, columns=columns, rows=rows)
        self.register(table, replace=replace)
        return table

    def drop(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"Cannot drop unknown table {name!r}")
        del self._tables[key]
        self._bump_schema_version()

    def table(self, name: str) -> Table:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"Unknown table {name!r}")
        return self._tables[key]

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return sorted(table.name for table in self._tables.values())

    def schemas(self) -> dict[str, TableSchema]:
        """Schemas of every registered table, keyed by table name."""
        return {table.name: table.schema() for table in self._tables.values()}

    def data_version(self) -> tuple:
        """A hashable fingerprint of the current table set and their data.

        Changes whenever a table is registered, dropped or replaced, or any
        table's rows are mutated — used to key (and thereby invalidate)
        cached query results.
        """
        return (
            self._schema_version,
            tuple(sorted((name, table.data_version) for name, table in self._tables.items())),
        )

    # ------------------------------------------------------------------ #
    # Query execution
    # ------------------------------------------------------------------ #

    def execute(
        self,
        query: str | SqlNode,
        use_cache: bool = True,
        optimize: bool = True,
    ) -> QueryResult:
        """Execute a SQL string or parsed AST and return its result.

        Results are served from the canonical-query cache when an equivalent
        query (same canonical SQL) has already run against the current data
        version; pass ``use_cache=False`` to force execution.

        ``optimize=False`` lowers the logical plan verbatim (no rewrite
        rules) — the escape hatch the differential test harness uses to
        compare optimized against unoptimized execution.  Unoptimized runs
        never consult or populate the result cache: cached results must
        always correspond to the default compile path.
        """
        # Imported here to avoid a circular import: the executor needs the
        # catalog type for scans.
        from repro.engine.executor import Executor

        node = self._parse(query) if isinstance(query, str) else query
        if not isinstance(node, (Select, SetOperation)):
            raise CatalogError(f"Only SELECT queries can be executed, got {type(node).__name__}")

        if not optimize:
            if use_cache:
                self._query_cache.note_bypass()
            return Executor(self, plan_cache=self._plan_cache, optimize=False).execute(node)

        key = cache_key(node, self.data_version()) if use_cache else None
        if key is None:
            if use_cache:
                self._query_cache.note_bypass()
            return Executor(self, plan_cache=self._plan_cache).execute(node)
        cached = self._query_cache.lookup(key)
        if cached is not None:
            return cached
        result = Executor(self, plan_cache=self._plan_cache).execute(node)
        self._query_cache.store(key, result)
        return result

    def explain(
        self,
        query: str | SqlNode,
        physical: bool = False,
        optimize: bool = True,
    ) -> str:
        """Return a textual plan for the query (for debugging/tests).

        ``physical=False`` renders the logical plan the planner produces.
        ``physical=True`` renders the full compile pipeline: the pre-rewrite
        logical plan, the optimizer's per-rule trace, the optimized logical
        plan and the executable physical plan.  With ``optimize=False`` only
        the verbatim physical lowering is rendered (the pre-optimizer
        behaviour, still used by lowering-specific tests).
        """
        from repro.engine.executor import lower_plan
        from repro.engine.optimizer import optimize_plan
        from repro.engine.planner import Planner

        node = self._parse(query) if isinstance(query, str) else query
        if not isinstance(node, (Select, SetOperation)):
            raise CatalogError(f"Only SELECT queries can be planned, got {type(node).__name__}")
        if not physical:
            return Planner(self.schemas()).plan(node).pretty()
        logical = Planner().plan(node)
        if not optimize:
            return lower_plan(logical, self, {}).pretty()
        optimized, trace = optimize_plan(logical, self)
        physical_plan = lower_plan(optimized, self, {})
        trace_lines = trace.lines() or ["(no rewrites applied)"]
        sections = [
            "== Logical plan ==",
            logical.pretty(),
            "== Optimizer trace ==",
            *trace_lines,
            "== Optimized logical plan ==",
            optimized.pretty(),
            "== Physical plan ==",
            physical_plan.pretty(),
        ]
        return "\n".join(sections)

    # ------------------------------------------------------------------ #
    # Caches
    # ------------------------------------------------------------------ #

    @property
    def query_cache(self) -> QueryCache:
        return self._query_cache

    def cache_stats(self) -> dict[str, Any]:
        """Result- and plan-cache counters (hits, misses, hit rate, sizes)."""
        stats = self._query_cache.snapshot()
        stats["plan_cache_entries"] = len(self._plan_cache)
        return stats

    def clear_caches(self) -> None:
        """Drop all cached results, compiled plans and parsed ASTs."""
        self._query_cache.clear()
        self._plan_cache.clear()
        self._ast_cache.clear()

    def __contains__(self, name: str) -> bool:
        return self.has_table(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Catalog(tables={self.table_names()})"
