"""The catalog: a named collection of in-memory tables.

The catalog is the engine's entry point — it owns the tables, exposes their
schemas to the analyzer, and provides :meth:`Catalog.execute` to run SQL text
or ASTs through the planner/executor.  It also owns the two execution caches:

* a **plan cache** of compiled physical plans keyed by SQL text (cleared when
  the set of tables changes), so repeated query shapes skip planning;
* a **result cache** (:class:`~repro.engine.query_cache.QueryCache`) keyed by
  canonical SQL plus the catalog data version, so repeated equivalent queries
  — the dominant pattern in interface instantiation and search — skip
  execution entirely.

Concurrency model (the serving layer's contract — see ``docs/SERVING.md``):

* **Readers pin snapshots.**  Every ``execute`` atomically pins a
  :class:`CatalogSnapshot` — the table map plus its data-version fingerprint,
  captured under the catalog lock — and runs against it, so the version the
  cache key embeds, the data the executor scans and the version the result is
  stored under are always the same, even while writers swap tables.
* **Writers copy-on-write.**  Concurrent mutation goes through
  :meth:`Catalog.append_rows` / :meth:`Catalog.register` ``(replace=True)`` /
  :meth:`Catalog.drop`: the new table version is built off to the side (a
  clone carrying the incremental statistics forward) and swapped into the
  table map atomically under the catalog lock.  In-place ``Table.append`` is
  still supported for single-threaded use, but raises once the table has been
  frozen by an explicit snapshot.
* **Lock hierarchy.**  ``_write_lock`` (serializes writers, held across the
  clone+extend) → ``_lock`` (guards the table map, version reads and snapshot
  pinning, held only for pointer swaps).  Cache objects have their own
  internal locks and are never touched while holding ``_lock``.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Iterable, Sequence

from repro.errors import CatalogError
from repro.engine.explain import ExplainReport
from repro.engine.ivm import AppendDelta, VersionLog
from repro.engine.options import ExecOptions, coerce_options
from repro.engine.query_cache import QueryCache, cache_identity, versioned_key
from repro.engine.table import QueryResult, Table
from repro.sql.ast_nodes import Select, SetOperation, SqlNode
from repro.sql.parser import parse
from repro.sql.schema import TableSchema


#: FIFO capacity of the parsed-AST cache.  Query texts repeat heavily in the
#: interface/search workloads, and parsing is a measurable slice of warm
#: execution; parsed ASTs are immutable by engine convention, so sharing one
#: node tree across executions is safe (and lets the executor's identity-keyed
#: memos hit too).
AST_CACHE_CAPACITY = 512

#: Process-wide catalog identity counter.  Data-version fingerprints are only
#: comparable *within* one catalog lineage (two independent catalogs both
#: start at schema version 1), so anything that caches state across catalogs
#: — the process-pool execution tier's per-worker snapshot caches — keys by
#: ``(catalog_id, fingerprint)``, never by the fingerprint alone.
_CATALOG_IDS = itertools.count(1)


class DetachedParser:
    """A standalone bounded SQL-parse memo for snapshots detached from a catalog.

    A pickled :class:`CatalogSnapshot` cannot carry its owning catalog's bound
    ``_parse`` method across the process boundary (the catalog holds locks and
    caches that must not travel).  Workers attach one of these instead: same
    bounded-FIFO contract as ``Catalog._parse``, no locking (worker processes
    are single-threaded).
    """

    __slots__ = ("_memo", "_capacity")

    def __init__(self, capacity: int = AST_CACHE_CAPACITY) -> None:
        self._memo: dict[str, SqlNode] = {}
        self._capacity = capacity

    def __call__(self, text: str) -> SqlNode:
        node = self._memo.get(text)
        if node is None:
            node = parse(text)
            self._memo[text] = node
            while len(self._memo) > self._capacity:
                self._memo.pop(next(iter(self._memo)), None)
        return node


class Catalog:
    """A named collection of tables plus query execution facilities."""

    def __init__(self, query_cache_capacity: int = 256) -> None:
        self._tables: dict[str, Table] = {}
        #: Identity token distinguishing this catalog from every other catalog
        #: in the process (fingerprints alone are lineage-local; see
        #: ``_CATALOG_IDS``).
        self.catalog_id = next(_CATALOG_IDS)
        self._schema_version = 0
        self._plan_cache: dict = {}
        self._ast_cache: dict[str, SqlNode] = {}
        self._query_cache = QueryCache(capacity=query_cache_capacity)
        #: Guards the table map, version reads and snapshot pinning.  Held
        #: only for pointer swaps and O(tables) bookkeeping — never across
        #: execution, parsing or table cloning.
        self._lock = threading.RLock()
        #: Serializes copy-on-write writers (held across the off-to-the-side
        #: clone+extend so concurrent writers cannot lose each other's rows).
        #: Always acquired *before* ``_lock`` — see the module docstring.
        self._write_lock = threading.RLock()
        self._snapshot_memo: CatalogSnapshot | None = None
        #: Bounded log of per-table append ranges (the incremental-maintenance
        #: plane's fold input).  Leaf-locked like the caches: recorded under
        #: ``_write_lock`` but never under ``_lock``.
        self._version_log = VersionLog()

    def _parse(self, text: str) -> SqlNode:
        """Parse SQL text with a bounded FIFO memo of the resulting AST."""
        node = self._ast_cache.get(text)
        if node is None:
            node = parse(text)
            with self._lock:
                self._ast_cache[text] = node
                while len(self._ast_cache) > AST_CACHE_CAPACITY:
                    self._ast_cache.pop(next(iter(self._ast_cache)), None)
        return node

    # ------------------------------------------------------------------ #
    # Table management
    # ------------------------------------------------------------------ #

    def _bump_schema_version_locked(self) -> None:
        self._schema_version += 1
        self._snapshot_memo = None
        # Compiled plans may have baked in join-key side analysis against the
        # old table set; recompile rather than risk a stale classification.
        self._plan_cache.clear()

    def register(self, table: Table, replace: bool = False) -> None:
        """Register a table under its own name (an atomic swap when replacing)."""
        key = table.name.lower()
        with self._write_lock:
            with self._lock:
                if key in self._tables and not replace:
                    raise CatalogError(
                        f"Table {table.name!r} already exists in the catalog"
                    )
                self._tables[key] = table
                self._bump_schema_version_locked()
            # Registration/replacement breaks the append-only premise for this
            # table: truncate every fold chain (full invalidation).  Cleared
            # outside ``_lock`` per the lock hierarchy.
            self._version_log.clear()

    def create_table(
        self,
        name: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[Any]] = (),
        replace: bool = False,
    ) -> Table:
        """Create and register a table from rows."""
        table = Table(name=name, columns=columns, rows=rows)
        self.register(table, replace=replace)
        return table

    def drop(self, name: str) -> None:
        key = name.lower()
        with self._write_lock:
            with self._lock:
                if key not in self._tables:
                    raise CatalogError(f"Cannot drop unknown table {name!r}")
                del self._tables[key]
                self._bump_schema_version_locked()
            self._version_log.clear()

    def append_rows(self, name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Append rows to a table via copy-on-write (the concurrent write path).

        The current table is cloned off to the side (statistics carried
        forward), the clone is extended, and the new version is swapped into
        the table map atomically — readers that pinned a snapshot keep seeing
        the old table object untouched.  Only the pointer swap happens under
        the catalog lock; concurrent writers serialize on the write lock.

        The clone makes every call **O(existing table size)** regardless of
        batch size, so writers should batch rows rather than append one at a
        time; single-row trickle ingest into a large table is quadratic in
        total rows (see ``docs/SERVING.md``).

        Returns the number of rows appended.
        """
        with self._write_lock:
            with self._lock:
                key = name.lower()
                current = self._tables.get(key)
                if current is None:
                    raise CatalogError(f"Cannot append to unknown table {name!r}")
                before = self._fingerprint_locked()
            clone = current.clone()
            clone.extend(rows)
            appended = clone.row_count - current.row_count
            with self._lock:
                self._tables[key] = clone
                self._snapshot_memo = None
                after = self._fingerprint_locked()
            if appended:
                # Writers serialize on ``_write_lock``, so ``before`` is the
                # fingerprint this append started from and the log forms an
                # unbroken chain until the next schema change truncates it.
                self._version_log.record(
                    AppendDelta(
                        table=key,
                        start_row=current.row_count,
                        end_row=clone.row_count,
                        from_version=before,
                        to_version=after,
                    )
                )
        return appended

    def create_index(self, name: str, column: str, kind: str = "hash") -> None:
        """Build a secondary index (``"hash"`` or ``"ordered"``) on a column.

        Indexing is a *derived-state* operation: the table's rows and data
        version are untouched, so cached results stay valid.  The index is
        built off to the side and published atomically onto the live column
        (snapshot readers either see no index and scan, or a complete one),
        and every later copy-on-write clone inherits it by sharing the sealed
        segments.  Compiled plans are cleared so the optimizer re-runs
        access-path selection with the new index visible.
        """
        with self._write_lock:
            with self._lock:
                table = self._tables.get(name.lower())
            if table is None:
                raise CatalogError(f"Cannot index unknown table {name!r}")
            table.create_index(column, kind)
            with self._lock:
                self._plan_cache.clear()

    def table(self, name: str) -> Table:
        key = name.lower()
        with self._lock:
            if key not in self._tables:
                raise CatalogError(f"Unknown table {name!r}")
            return self._tables[key]

    def has_table(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self._tables

    def table_names(self) -> list[str]:
        with self._lock:
            return sorted(table.name for table in self._tables.values())

    def schemas(self) -> dict[str, TableSchema]:
        """Schemas of every registered table, keyed by table name."""
        with self._lock:
            tables = list(self._tables.values())
        return {table.name: table.schema() for table in tables}

    def data_version(self) -> tuple:
        """A hashable fingerprint of the current table set and their data.

        Changes whenever a table is registered, dropped or replaced, or any
        table's rows are mutated — used to key (and thereby invalidate)
        cached query results.
        """
        with self._lock:
            return self._fingerprint_locked()

    def _fingerprint_locked(self) -> tuple:
        return (
            self._schema_version,
            tuple(sorted((name, table.data_version) for name, table in self._tables.items())),
        )

    def schema_version(self) -> int:
        """Counter bumped by register/drop/replace (keys verbatim plan-cache entries)."""
        with self._lock:
            return self._schema_version

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #

    def snapshot(self, freeze: bool = True) -> "CatalogSnapshot":
        """Pin an immutable view of the catalog at its current data version.

        Snapshots are cheap — a copy of the table map plus the version
        fingerprint, memoized per version — and share the catalog's
        (thread-safe) result cache and plan cache; cache keys embed the
        pinned version, so entries from different versions never collide.

        ``freeze=True`` (the default, and what serving sessions use) also
        freezes the pinned tables so a stray in-place ``Table.append`` raises
        instead of tearing concurrent readers.  The internal pin every
        ``execute`` performs uses ``freeze=False`` to keep single-threaded
        callers free to mutate tables directly between queries.
        """
        with self._lock:
            fingerprint = self._fingerprint_locked()
            snapshot = self._snapshot_memo
            if snapshot is None or snapshot.data_version() != fingerprint:
                snapshot = CatalogSnapshot(
                    tables=dict(self._tables),
                    version=fingerprint,
                    plan_cache=self._plan_cache,
                    query_cache=self._query_cache,
                    parse=self._parse,
                    catalog_id=self.catalog_id,
                    version_log=self._version_log,
                )
                self._snapshot_memo = snapshot
        if freeze:
            snapshot.freeze_tables()
        return snapshot

    # ------------------------------------------------------------------ #
    # Query execution
    # ------------------------------------------------------------------ #

    def execute(
        self,
        query: str | SqlNode,
        options: ExecOptions | bool | None = None,
        *,
        use_cache: bool | None = None,
        optimize: bool | None = None,
        deadline: float | None = None,
    ) -> QueryResult:
        """Execute a SQL string or parsed AST and return its result.

        ``options`` carries every execution knob (see :class:`ExecOptions`):
        result-cache participation, the optimizer on/off escape hatch, and
        the cooperative-cancellation deadline.  The legacy ``use_cache=``/
        ``optimize=``/``deadline=`` keywords are still accepted with
        identical behaviour but emit a :class:`DeprecationWarning`.

        Results are served from the canonical-query cache when an equivalent
        query (same canonical SQL) has already run against the current data
        version.  ``ExecOptions(optimize=False)`` lowers the logical plan
        verbatim (no rewrite rules) — the escape hatch the differential test
        harness uses to compare optimized against unoptimized execution;
        unoptimized runs never consult or populate the result cache.

        Execution runs against an atomically pinned snapshot: the data
        version the cache key embeds, the tables the executor scans and the
        version the result is stored under all come from one consistent pin,
        so a concurrent writer swap can neither serve a stale hit nor poison
        the cache with a result computed from newer data.
        """
        resolved = coerce_options(
            options,
            "Catalog.execute",
            use_cache=use_cache,
            optimize=optimize,
            deadline=deadline,
        )
        return self.snapshot(freeze=False).execute(query, resolved)

    def explain(
        self,
        query: str | SqlNode,
        physical: bool = False,
        optimize: bool | None = None,
        options: ExecOptions | None = None,
    ) -> "ExplainReport":
        """Return the query's plan as an :class:`ExplainReport`.

        The report is a ``str`` subclass rendering exactly the classic text,
        with the individual sections (``logical``, ``trace``, ``optimized``,
        ``physical``) and the optimizer's ``access_paths`` decisions attached
        as data.

        ``physical=False`` renders the logical plan the planner produces.
        ``physical=True`` renders the full compile pipeline: the pre-rewrite
        logical plan, the optimizer's per-rule trace, the optimized logical
        plan and the executable physical plan.  With optimization disabled
        (``options=ExecOptions(optimize=False)``, or the deprecated
        ``optimize=False`` keyword) only the verbatim physical lowering is
        rendered (the pre-optimizer behaviour, still used by
        lowering-specific tests).
        """
        from repro.engine.executor import lower_plan
        from repro.engine.optimizer import optimize_plan
        from repro.engine.planner import Planner

        resolved = coerce_options(options, "Catalog.explain", optimize=optimize)
        node = self._parse(query) if isinstance(query, str) else query
        if not isinstance(node, (Select, SetOperation)):
            raise CatalogError(f"Only SELECT queries can be planned, got {type(node).__name__}")
        if not physical:
            text = Planner(self.schemas()).plan(node).pretty()
            return ExplainReport(text, logical=text)
        logical = Planner().plan(node)
        if not resolved.optimize:
            text = lower_plan(logical, self, {}).pretty()
            return ExplainReport(text, logical=logical.pretty(), physical=text)
        optimized, trace = optimize_plan(logical, self)
        physical_plan = lower_plan(optimized, self, {})
        trace_lines = trace.lines()
        # The ivm maintainability analysis always records one line; the "no
        # rewrites" marker keys off actual rewrite rules only.
        if not any(rule != "ivm" for rule, _ in trace.events):
            trace_lines.append("(no rewrites applied)")
        if not trace_lines:
            trace_lines = ["(no rewrites applied)"]
        sections = [
            "== Logical plan ==",
            logical.pretty(),
            "== Optimizer trace ==",
            *trace_lines,
            "== Optimized logical plan ==",
            optimized.pretty(),
            "== Physical plan ==",
            physical_plan.pretty(),
        ]
        return ExplainReport(
            "\n".join(sections),
            logical=logical.pretty(),
            trace=tuple(trace.events),
            optimized=optimized.pretty(),
            physical=physical_plan.pretty(),
            access_paths=tuple(trace.access_decisions),
        )

    # ------------------------------------------------------------------ #
    # Caches
    # ------------------------------------------------------------------ #

    @property
    def query_cache(self) -> QueryCache:
        return self._query_cache

    def cache_stats(self) -> dict[str, Any]:
        """Result- and plan-cache counters (hits, misses, hit rate, sizes)."""
        stats = self._query_cache.snapshot()
        stats["plan_cache_entries"] = len(self._plan_cache)
        return stats

    def clear_caches(self) -> None:
        """Drop all cached results, compiled plans and parsed ASTs."""
        # The result cache has its own lock and is cleared outside _lock,
        # keeping the invariant that cache-internal locks are never acquired
        # while a catalog lock is held.
        self._query_cache.clear()
        with self._lock:
            self._plan_cache.clear()
            self._ast_cache.clear()

    def __contains__(self, name: str) -> bool:
        return self.has_table(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Catalog(tables={self.table_names()})"


class CatalogSnapshot:
    """An immutable view of a catalog pinned at one data version.

    A snapshot exposes the read-side catalog interface the executor, planner
    and optimizer consume — :meth:`table`, :meth:`has_table`, :meth:`schemas`,
    :meth:`data_version`, :meth:`execute` — over a private copy of the table
    *map*.  The table objects themselves are shared (column stores are
    immutable on read; concurrent writers swap new table objects into the live
    catalog rather than mutating pinned ones), which is what makes pinning
    O(tables), not O(data).

    Snapshots share the owning catalog's thread-safe result cache and its
    compiled-plan cache: both key entries by the *pinned* data version, so
    readers at different versions populate disjoint entries and a snapshot can
    never be served a result or an optimized plan computed from data it cannot
    see.
    """

    def __init__(
        self,
        tables: dict[str, Table],
        version: tuple,
        plan_cache: dict,
        query_cache: QueryCache,
        parse,
        catalog_id: int = 0,
        version_log: VersionLog | None = None,
    ) -> None:
        self._tables = tables
        self._version = version
        self._plan_cache = plan_cache
        self._query_cache = query_cache
        self._parse = parse
        self.catalog_id = catalog_id
        self._version_log = version_log
        self._schemas_memo: dict[str, TableSchema] | None = None

    # ------------------------------------------------------------------ #
    # Pickling contract (the process-tier snapshot transport)
    # ------------------------------------------------------------------ #
    #
    # What crosses the process boundary: the pinned table map (immutable
    # data + incrementally maintained column statistics), the version
    # fingerprint and the catalog identity token.  What never crosses:
    # the caches (they hold locks, and a worker's caches must key off the
    # worker's own state) and the owning catalog's bound parse memo.  An
    # unpickled snapshot is self-sufficient — fresh empty caches, a
    # detached parser — and a worker that wants cross-fingerprint cache
    # reuse attaches shared caches afterwards via ``attach_caches``.

    def __getstate__(self) -> dict:
        # Ship *warm* tables: column statistics, null counts, and sealed
        # secondary-index segments are part of the payload (they are
        # incrementally maintained state, not caches), so a worker can
        # execute immediately instead of each worker paying an O(data)
        # statistics/index rebuild per shipped version.  warm_stats() also
        # folds index tails into immutable segments so the pickled bytes
        # carry only shared, sealed structures.
        for table in self._tables.values():
            table.warm_stats()
        return {
            "tables": self._tables,
            "version": self._version,
            "catalog_id": self.catalog_id,
        }

    def __setstate__(self, state: dict) -> None:
        self._tables = state["tables"]
        self._version = state["version"]
        self.catalog_id = state["catalog_id"]
        self._plan_cache = {}
        self._query_cache = QueryCache()
        self._parse = DetachedParser()
        # No version log across the process boundary: a worker's first read
        # at a version is a cold recompute, exactly matching what the fold
        # path must be equivalent to.
        self._version_log = None
        self._schemas_memo = None

    def attach_caches(
        self,
        plan_cache: dict | None = None,
        query_cache: QueryCache | None = None,
        parse=None,
    ) -> None:
        """Attach shared caches to a detached (unpickled) snapshot.

        The worker handshake: a worker process holding snapshots at several
        fingerprints shares one result cache (keys embed the pinned version,
        so entries never collide), one parse memo, and one compiled-plan
        cache **per schema version** (plans bake in table-set analysis, so
        they are only reusable while the schema component of the fingerprint
        is unchanged).
        """
        if plan_cache is not None:
            self._plan_cache = plan_cache
        if query_cache is not None:
            self._query_cache = query_cache
        if parse is not None:
            self._parse = parse

    def freeze_tables(self) -> None:
        """Freeze every pinned table (idempotent) — see :meth:`Table.freeze`."""
        for table in self._tables.values():
            table.freeze()

    # ------------------------------------------------------------------ #
    # Read-side catalog interface
    # ------------------------------------------------------------------ #

    def table(self, name: str) -> Table:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"Unknown table {name!r}")
        return self._tables[key]

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return sorted(table.name for table in self._tables.values())

    def schemas(self) -> dict[str, TableSchema]:
        """Schemas of every pinned table (memoized — the snapshot is immutable)."""
        if self._schemas_memo is None:
            self._schemas_memo = {table.name: table.schema() for table in self._tables.values()}
        return self._schemas_memo

    def data_version(self) -> tuple:
        """The pinned fingerprint (constant for the snapshot's lifetime)."""
        return self._version

    def schema_version(self) -> int:
        """The pinned schema-version component of the fingerprint."""
        return self._version[0]

    @property
    def query_cache(self) -> QueryCache:
        return self._query_cache

    def __contains__(self, name: str) -> bool:
        return self.has_table(name)

    def execute(
        self,
        query: str | SqlNode,
        options: ExecOptions | bool | None = None,
        *,
        use_cache: bool | None = None,
        optimize: bool | None = None,
        deadline: float | None = None,
    ) -> QueryResult:
        """Execute a query against the pinned table versions.

        Semantics match :meth:`Catalog.execute`, with every read — cache key,
        scans, optimizer statistics — anchored to the snapshot's version.  A
        timed-out execution (deadline elapsed mid-run) raises before the
        store, so partial work can never poison the result cache.
        """
        # Imported here to avoid a circular import: the executor needs the
        # catalog types for scans.
        from repro.engine.executor import Executor

        resolved = coerce_options(
            options,
            "CatalogSnapshot.execute",
            use_cache=use_cache,
            optimize=optimize,
            deadline=deadline,
        )
        run_deadline = resolved.resolved_deadline()

        node = self._parse(query) if isinstance(query, str) else query
        if not isinstance(node, (Select, SetOperation)):
            raise CatalogError(f"Only SELECT queries can be executed, got {type(node).__name__}")

        if not resolved.optimize:
            if resolved.use_cache:
                self._query_cache.note_bypass()
            return Executor(
                self, plan_cache=self._plan_cache, optimize=False, deadline=run_deadline
            ).execute(node)

        key = canonical = None
        if resolved.use_cache:
            key, canonical = cache_identity(node, self._version)
        if key is None:
            if resolved.use_cache:
                self._query_cache.note_bypass()
            return Executor(
                self, plan_cache=self._plan_cache, deadline=run_deadline
            ).execute(node)
        cached = self._query_cache.lookup(key)
        if cached is not None:
            return cached
        folded = self._fold_probe(key, canonical)
        if folded is not None:
            return folded
        result = Executor(
            self, plan_cache=self._plan_cache, deadline=run_deadline
        ).execute(node)
        self._query_cache.store(key, result)
        self._maybe_register_folder(node, canonical, result)
        return result

    # ------------------------------------------------------------------ #
    # Incremental maintenance (see engine/ivm.py)
    # ------------------------------------------------------------------ #

    def _fold_probe(self, key: str, canonical: str) -> QueryResult | None:
        """Answer a cache miss by folding appended deltas, when possible.

        A successful fold stores the result under this version's key, so
        every later probe at the same version is a plain cache hit.  A failed
        fold counts a fallback; when the folder is off the append chain
        entirely (truncated log, table replaced, in-place mutation) it is
        also dropped, and the cold recompute that follows registers a fresh
        one at the current version.
        """
        if self._version_log is None:
            return None
        folder = self._query_cache.folder(canonical)
        if folder is None:
            return None

        def store_intermediate(version: tuple, result: QueryResult) -> None:
            # Pre-populate entries for the versions a multi-append walk skips
            # over: sessions pinned behind the write frontier then hit these
            # instead of recomputing (folds cannot run backward).
            self._query_cache.store(versioned_key(canonical, version), result)

        result = folder.fold_to(self, self._version_log, store_intermediate)
        if result is None:
            self._query_cache.note_fallback()
            # A probe from *behind* the folder (a session pinned at an older
            # version whose entry was evicted) cannot fold backward, but the
            # folder's advanced state is still the one serving live sessions
            # — only drop it when it is off the chain entirely.
            if not folder.connected(self._version, self._version_log):
                self._query_cache.drop_folder(canonical, folder)
            return None
        self._query_cache.note_fold()
        self._query_cache.store(key, result)
        return result

    def _maybe_register_folder(
        self, node: SqlNode, canonical: str, result: QueryResult
    ) -> None:
        """Register a delta folder for a freshly computed maintainable result.

        An existing folder on a live chain to (or from) this version is kept
        — it already carries state that can fold forward; replacing it with a
        colder one would only discard work.
        """
        if self._version_log is None:
            return
        from repro.engine import ivm

        shape = ivm.analyze(node, canonical)
        if shape is None:
            return
        existing = self._query_cache.folder(canonical)
        if existing is not None and existing.connected(self._version, self._version_log):
            return
        try:
            folder = ivm.make_folder(shape, node, self, result)
        except Exception:  # noqa: BLE001 - registration must never break reads
            return
        self._query_cache.store_folder(canonical, folder)

    # ------------------------------------------------------------------ #
    # Result-cache probe (the process tier's read fast path)
    # ------------------------------------------------------------------ #

    def cached_result(self, query: str | SqlNode) -> QueryResult | None:
        """Probe the result cache without executing — ``None`` on miss.

        The process execution tier calls this in the frontend before paying
        a worker round-trip: a hot read costs exactly what the thread tier's
        cache-hit path costs (parse memo + cache key), keeping the two tiers
        at parity on cached reads.
        """
        node = self._parse(query) if isinstance(query, str) else query
        if not isinstance(node, (Select, SetOperation)):
            return None
        key, canonical = cache_identity(node, self._version)
        if key is None:
            return None
        cached = self._query_cache.lookup(key)
        if cached is not None:
            return cached
        return self._fold_probe(key, canonical)

    def store_result(self, query: str | SqlNode, result: QueryResult) -> None:
        """Insert an externally computed result for ``query`` at this version.

        Used by the process tier to publish a worker's answer into the
        frontend's shared cache so every session pinned at the same version
        gets it for free.  Uncacheable queries are a silent no-op.
        """
        node = self._parse(query) if isinstance(query, str) else query
        if not isinstance(node, (Select, SetOperation)):
            return
        key, canonical = cache_identity(node, self._version)
        if key is not None:
            self._query_cache.store(key, result)
            self._maybe_register_folder(node, canonical, result)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CatalogSnapshot(tables={self.table_names()})"
