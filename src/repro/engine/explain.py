"""Structured EXPLAIN output.

:class:`ExplainReport` is what :meth:`Catalog.explain` returns: a ``str``
subclass whose text is byte-for-byte the classic rendering (so every existing
``in``/``==`` assertion and log line keeps working), carrying the individual
sections and the optimizer's access-path decisions as data for programmatic
consumers — dashboards, the serving layer's plan introspection, tests that
should assert on decisions instead of regexp-scraping the prose.
"""

from __future__ import annotations

from typing import Any


class ExplainReport(str):
    """The text of an EXPLAIN plus its sections as attributes.

    Attributes:
        logical: Pre-rewrite logical plan rendering (always present).
        trace: Optimizer trace events as ``(rule, detail)`` pairs (empty when
            the optimizer did not run or applied nothing).
        optimized: Post-rewrite logical plan rendering, or None when the
            report covers only the logical (or unoptimized-physical) view.
        physical: Physical operator tree rendering, or None for logical-only
            reports.
        access_paths: Access-path decisions as dicts — index choices, refused
            indexes, window sort elisions — exactly what the ``access_path``
            trace lines describe, machine-readable.
    """

    logical: str
    trace: tuple[tuple[str, str], ...]
    optimized: str | None
    physical: str | None
    access_paths: tuple[dict[str, Any], ...]

    def __new__(
        cls,
        text: str,
        *,
        logical: str,
        trace: tuple[tuple[str, str], ...] = (),
        optimized: str | None = None,
        physical: str | None = None,
        access_paths: tuple[dict[str, Any], ...] = (),
    ) -> "ExplainReport":
        self = super().__new__(cls, text)
        self.logical = logical
        self.trace = tuple(trace)
        self.optimized = optimized
        self.physical = physical
        self.access_paths = tuple(access_paths)
        return self

    def as_dict(self) -> dict[str, Any]:
        """The report as plain data (JSON-serializable)."""
        return {
            "logical": self.logical,
            "trace": [list(event) for event in self.trace],
            "optimized": self.optimized,
            "physical": self.physical,
            "access_paths": [dict(decision) for decision in self.access_paths],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExplainReport({str.__repr__(self)})"
