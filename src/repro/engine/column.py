"""Typed per-column storage: value vector, null mask and incremental statistics.

A :class:`Column` is the engine's primary storage unit.  It owns

* ``values`` — the raw value vector (a plain Python list, which is the zero-copy
  currency of the vectorized executor: scan batches alias these lists directly);
* a **null mask** (parallel ``bool`` list) and a null count, both built lazily
  and maintained incrementally once built;
* a :class:`ColumnStats` block caching the column's **dtype tag** (the unified
  :class:`~repro.sql.schema.DataType`), the comparison-safe value type used by
  the optimizer's predicate-motion proofs, the min/max range, and the distinct
  value set.

Statistics follow a *lazy-then-incremental* protocol: nothing is computed until
a stat is first requested (so bulk loads pay no per-value overhead), after
which every :meth:`Column.append` folds the new value into the cached block in
O(1) instead of invalidating it.  This is what keeps optimizer statistics hot
under the append-heavy interface workloads — the old implementation rebuilt
every stat from scratch after each mutation.

Values that break a stat's invariant (unhashable values poison the distinct
set, pairwise-incomparable mixtures poison the range) degrade that single stat
to the slow recomputed path while leaving the others incremental.  The
distinct set additionally *caps itself* at :data:`DISTINCT_TRACK_LIMIT`
values: past the cap it degrades to a count estimate (high-cardinality
columns would otherwise make every copy-on-write clone pay O(distinct) in
time and memory), and below the cap clones share one frozen set until the
next mutation copies it (copy-on-write at the stats level, mirroring the
table-level contract).

A column may also carry :mod:`secondary indexes <repro.engine.indexes>`
(hash and ordered), which follow the same lazy-then-incremental protocol:
appends fold into them in O(1) amortized, and clones share the sealed
immutable segments instead of rebuilding.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.sql.schema import DataType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.indexes import ColumnIndex

#: Maximum distinct values tracked exactly before the set degrades to a count
#: estimate.  Far above the thresholds that drive schema role inference
#: (ORDINAL cuts off at 12 distinct values) and selectivity estimation cares
#: only about order of magnitude past this point, so capping never changes a
#: plan's shape — it only bounds clone cost on high-cardinality columns.
DISTINCT_TRACK_LIMIT = 4096

#: Comparison groups for the optimizer's value-type proof: numbers/booleans
#: unify among themselves (to FLOAT when mixed), text and dates unify to TEXT,
#: and any cross-group mixture makes the column unsafe for predicate motion.
_NUMERIC_GROUP = {DataType.INTEGER, DataType.FLOAT, DataType.BOOLEAN}
_TEXTUAL_GROUP = {DataType.TEXT, DataType.DATE}


class ColumnStats:
    """Incrementally maintained statistics of one column.

    Attributes:
        dtype: least-upper-bound storage type of all values seen (NULL when
            the column is empty or all-null).
        value_type: comparison-safe type (see :meth:`merge_value_type`), or
            None when the column mixes comparison groups; ``value_type_valid``
            distinguishes "mixed" from "not yet computed".
        minimum / maximum: extremes of the non-null values; ``range_poisoned``
            is set when a pairwise-incomparable mixture was observed, in which
            case the owner recomputes (and re-raises) on demand.
        distinct: set of distinct non-null values, or None once an unhashable
            value poisoned it **or** the set outgrew
            :data:`DISTINCT_TRACK_LIMIT`; ``distinct_capped`` distinguishes
            the capped case (recomputing is possible and exact) from the
            poisoned one (recomputing raises), and ``distinct_estimate``
            remembers the size at cap time as a lower-bound count estimate.
        distinct_shared: the set is shared with another stats block (a clone);
            the next ``observe`` copies before mutating.
    """

    __slots__ = (
        "dtype",
        "value_type",
        "minimum",
        "maximum",
        "has_range",
        "range_poisoned",
        "distinct",
        "distinct_capped",
        "distinct_estimate",
        "distinct_shared",
    )

    def __init__(self) -> None:
        self.dtype = DataType.NULL
        self.value_type: DataType | None = DataType.NULL
        self.minimum: Any = None
        self.maximum: Any = None
        self.has_range = False
        self.range_poisoned = False
        self.distinct: set[Any] | None = set()
        self.distinct_capped = False
        self.distinct_estimate = 0
        self.distinct_shared = False

    @classmethod
    def from_values(cls, values: Iterable[Any]) -> "ColumnStats":
        """Compute a full statistics block with one pass over ``values``."""
        stats = cls()
        for value in values:
            stats.observe(value)
        return stats

    def observe(self, value: Any) -> None:
        """Fold one appended value into the cached statistics (O(1))."""
        if value is None:
            return
        candidate = DataType.of_value(value)
        self.dtype = DataType.unify(self.dtype, candidate)
        if self.value_type is not None:
            self.value_type = self._merge_value_type(self.value_type, candidate)
        if not self.range_poisoned:
            if not self.has_range:
                self.minimum = value
                self.maximum = value
                self.has_range = True
            else:
                try:
                    if value < self.minimum:
                        self.minimum = value
                    elif value > self.maximum:
                        self.maximum = value
                except TypeError:
                    self.range_poisoned = True
                    self.minimum = None
                    self.maximum = None
        if self.distinct is not None:
            if self.distinct_shared:
                # Copy-on-write: the set is shared with a clone's stats block.
                self.distinct = set(self.distinct)
                self.distinct_shared = False
            try:
                self.distinct.add(value)
            except TypeError:
                self.distinct = None
            else:
                if len(self.distinct) > DISTINCT_TRACK_LIMIT:
                    # Degrade to a count estimate: further appends are O(1)
                    # and clones stop paying O(distinct) for this column.
                    self.distinct_estimate = len(self.distinct)
                    self.distinct_capped = True
                    self.distinct = None

    @staticmethod
    def _merge_value_type(current: DataType, candidate: DataType) -> DataType | None:
        """Unify within comparison groups; None when the groups mix."""
        if current is DataType.NULL or candidate is current:
            return candidate
        if {candidate, current} <= _NUMERIC_GROUP:
            return DataType.FLOAT if DataType.FLOAT in (candidate, current) else DataType.INTEGER
        if {candidate, current} <= _TEXTUAL_GROUP:
            return DataType.TEXT
        return None

    def copy(self) -> "ColumnStats":
        """An O(1) copy *sharing* the frozen distinct set with the original.

        Both sides are marked ``distinct_shared`` so whichever mutates first
        copies the set then (copy-on-write).  In the serving layer's
        clone-then-extend write path only the clone ever mutates, so the
        common case pays the copy once per write instead of once per clone —
        and capped/poisoned blocks never pay it at all.
        """
        copied = ColumnStats()
        copied.dtype = self.dtype
        copied.value_type = self.value_type
        copied.minimum = self.minimum
        copied.maximum = self.maximum
        copied.has_range = self.has_range
        copied.range_poisoned = self.range_poisoned
        copied.distinct = self.distinct
        if self.distinct is not None:
            self.distinct_shared = True
            copied.distinct_shared = True
        copied.distinct_capped = self.distinct_capped
        copied.distinct_estimate = self.distinct_estimate
        return copied


class Column:
    """One table column: value vector, null accounting and cached statistics.

    Args:
        values: initial values.  With ``adopt=True`` the provided list becomes
            the column's backing storage without a copy — callers hand over
            ownership and must not mutate the list afterwards (the engine uses
            this for CSV ingest, dataset generation and CTE materialization,
            where the source list is freshly built and then discarded).
    """

    __slots__ = ("values", "_null_count", "_mask", "_stats", "_indexes")

    def __init__(self, values: Sequence[Any] | None = None, adopt: bool = False) -> None:
        if values is None:
            self.values: list[Any] = []
        elif adopt and type(values) is list:
            self.values = values
        else:
            self.values = list(values)
        self._null_count: int | None = None
        self._mask: list[bool] | None = None
        self._stats: ColumnStats | None = None
        self._indexes: dict[str, "ColumnIndex"] = {}

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def append(self, value: Any) -> None:
        """Append one value, folding it into whatever caches exist.

        Cache folds are exception-safe: a value a cache cannot absorb drops
        that cache back to its lazy-rebuild (stats) or poisoned-fallback
        (index) state instead of leaving it half-folded, so derived state can
        never silently disagree with ``values`` after a raise.
        """
        self.values.append(value)
        if self._null_count is not None and value is None:
            self._null_count += 1
        if self._mask is not None:
            self._mask.append(value is None)
        if self._stats is not None:
            try:
                self._stats.observe(value)
            except Exception:
                self._stats = None  # lazy rebuild on next access stays exact
        if self._indexes:
            position = len(self.values) - 1
            for index in self._indexes.values():
                try:
                    index.add(value, position)  # poisons itself, never raises
                except Exception:  # pragma: no cover - defensive
                    index.poison()

    def extend(self, values: Iterable[Any]) -> None:
        for value in values:
            self.append(value)

    def clone(self) -> "Column":
        """An independent copy carrying the incremental caches forward.

        The copy-on-write table swap of the serving layer clones every column
        before extending the clone; copying the null accounting and the
        statistics block (instead of letting the clone rebuild them lazily)
        preserves the never-rebuilt-after-mutation property across swaps.
        """
        clone = Column(self.values)
        clone._null_count = self._null_count
        clone._mask = list(self._mask) if self._mask is not None else None
        clone._stats = self._stats.copy() if self._stats is not None else None
        clone._indexes = {kind: index.clone() for kind, index in self._indexes.items()}
        return clone

    # ------------------------------------------------------------------ #
    # Null accounting
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.values)

    @property
    def null_count(self) -> int:
        """Number of NULLs (computed on first access, then kept in step)."""
        if self._null_count is None:
            self._null_count = sum(1 for value in self.values if value is None)
        return self._null_count

    @property
    def has_nulls(self) -> bool:
        return self.null_count > 0

    def null_mask(self) -> list[bool]:
        """Parallel True-where-NULL mask (built once, then kept in step)."""
        if self._mask is None or len(self._mask) != len(self.values):
            self._mask = [value is None for value in self.values]
        return self._mask

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    def stats(self) -> ColumnStats:
        """The statistics block, computing it on first access."""
        if self._stats is None:
            self._stats = ColumnStats.from_values(self.values)
        return self._stats

    def dtype(self) -> DataType:
        """Cached least-upper-bound storage type of the column's values."""
        return self.stats().dtype

    def value_type(self) -> DataType | None:
        """Comparison-safe type, or None when comparison groups mix."""
        return self.stats().value_type

    def value_range(self) -> tuple[Any, Any] | None:
        """(min, max) of the non-null values, or None when all-null/empty.

        A column whose values stopped being pairwise comparable recomputes
        from scratch, which re-raises the same TypeError a direct
        ``min()``/``max()`` over the values would.
        """
        stats = self.stats()
        if stats.range_poisoned:
            values = [value for value in self.values if value is not None]
            return (min(values), max(values)) if values else None
        if not stats.has_range:
            return None
        return (stats.minimum, stats.maximum)

    def distinct_set(self) -> set[Any]:
        """The maintained distinct non-null value set (treat as read-only).

        Unhashable values poison the incremental set; recomputing then raises
        the same TypeError building a set directly would.  A *capped* set
        (see :data:`DISTINCT_TRACK_LIMIT`) recomputes exactly — callers that
        need the full domain (widget inference, distinct-value memoization)
        still get precise answers; only the incremental cache is bounded.
        """
        stats = self.stats()
        if stats.distinct is None:
            return {value for value in self.values if value is not None}
        return stats.distinct

    def distinct_count(self) -> int:
        """Distinct non-null value count; an estimate once tracking capped.

        The capped estimate is the set size at cap time — a lower bound that
        is already far past every exactness-sensitive threshold (role
        inference, ordinal detection), so selectivity estimation keeps the
        right order of magnitude without an O(n) recount per call.
        """
        stats = self.stats()
        if stats.distinct is None and stats.distinct_capped:
            return stats.distinct_estimate
        return len(self.distinct_set())

    # ------------------------------------------------------------------ #
    # Secondary indexes
    # ------------------------------------------------------------------ #

    def create_index(self, kind: str) -> "ColumnIndex":
        """Build (or rebuild) a secondary index of ``kind`` over this column.

        The index is built fully before being published with one atomic dict
        assignment, so concurrent readers either see no index (and scan) or
        a complete one — never a partial build.
        """
        from repro.engine.indexes import build_index

        index = build_index(kind, self.values)
        self._indexes[kind] = index
        return index

    def index(self, kind: str) -> "ColumnIndex | None":
        """The index of ``kind`` if one was created, else None."""
        return self._indexes.get(kind)

    def index_kinds(self) -> tuple[str, ...]:
        return tuple(self._indexes)

    def drop_index(self, kind: str) -> None:
        self._indexes.pop(kind, None)

    def seal_indexes(self) -> None:
        """Seal every index tail into shared immutable segments.

        Called from :meth:`Table.warm_stats` before snapshot pickling so the
        bytes shipped to process workers carry sealed segments (which clones
        then share) instead of per-snapshot mutable tails.
        """
        for index in self._indexes.values():
            index.seal()
