"""Typed per-column storage: value vector, null mask and incremental statistics.

A :class:`Column` is the engine's primary storage unit.  It owns

* ``values`` — the raw value vector (a plain Python list, which is the zero-copy
  currency of the vectorized executor: scan batches alias these lists directly);
* a **null mask** (parallel ``bool`` list) and a null count, both built lazily
  and maintained incrementally once built;
* a :class:`ColumnStats` block caching the column's **dtype tag** (the unified
  :class:`~repro.sql.schema.DataType`), the comparison-safe value type used by
  the optimizer's predicate-motion proofs, the min/max range, and the distinct
  value set.

Statistics follow a *lazy-then-incremental* protocol: nothing is computed until
a stat is first requested (so bulk loads pay no per-value overhead), after
which every :meth:`Column.append` folds the new value into the cached block in
O(1) instead of invalidating it.  This is what keeps optimizer statistics hot
under the append-heavy interface workloads — the old implementation rebuilt
every stat from scratch after each mutation.

Values that break a stat's invariant (unhashable values poison the distinct
set, pairwise-incomparable mixtures poison the range) degrade that single stat
to the slow recomputed path while leaving the others incremental.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.sql.schema import DataType

#: Comparison groups for the optimizer's value-type proof: numbers/booleans
#: unify among themselves (to FLOAT when mixed), text and dates unify to TEXT,
#: and any cross-group mixture makes the column unsafe for predicate motion.
_NUMERIC_GROUP = {DataType.INTEGER, DataType.FLOAT, DataType.BOOLEAN}
_TEXTUAL_GROUP = {DataType.TEXT, DataType.DATE}


class ColumnStats:
    """Incrementally maintained statistics of one column.

    Attributes:
        dtype: least-upper-bound storage type of all values seen (NULL when
            the column is empty or all-null).
        value_type: comparison-safe type (see :meth:`merge_value_type`), or
            None when the column mixes comparison groups; ``value_type_valid``
            distinguishes "mixed" from "not yet computed".
        minimum / maximum: extremes of the non-null values; ``range_poisoned``
            is set when a pairwise-incomparable mixture was observed, in which
            case the owner recomputes (and re-raises) on demand.
        distinct: set of distinct non-null values, or None once an unhashable
            value poisoned it.
    """

    __slots__ = (
        "dtype",
        "value_type",
        "minimum",
        "maximum",
        "has_range",
        "range_poisoned",
        "distinct",
    )

    def __init__(self) -> None:
        self.dtype = DataType.NULL
        self.value_type: DataType | None = DataType.NULL
        self.minimum: Any = None
        self.maximum: Any = None
        self.has_range = False
        self.range_poisoned = False
        self.distinct: set[Any] | None = set()

    @classmethod
    def from_values(cls, values: Iterable[Any]) -> "ColumnStats":
        """Compute a full statistics block with one pass over ``values``."""
        stats = cls()
        for value in values:
            stats.observe(value)
        return stats

    def observe(self, value: Any) -> None:
        """Fold one appended value into the cached statistics (O(1))."""
        if value is None:
            return
        candidate = DataType.of_value(value)
        self.dtype = DataType.unify(self.dtype, candidate)
        if self.value_type is not None:
            self.value_type = self._merge_value_type(self.value_type, candidate)
        if not self.range_poisoned:
            if not self.has_range:
                self.minimum = value
                self.maximum = value
                self.has_range = True
            else:
                try:
                    if value < self.minimum:
                        self.minimum = value
                    elif value > self.maximum:
                        self.maximum = value
                except TypeError:
                    self.range_poisoned = True
                    self.minimum = None
                    self.maximum = None
        if self.distinct is not None:
            try:
                self.distinct.add(value)
            except TypeError:
                self.distinct = None

    @staticmethod
    def _merge_value_type(current: DataType, candidate: DataType) -> DataType | None:
        """Unify within comparison groups; None when the groups mix."""
        if current is DataType.NULL or candidate is current:
            return candidate
        if {candidate, current} <= _NUMERIC_GROUP:
            return DataType.FLOAT if DataType.FLOAT in (candidate, current) else DataType.INTEGER
        if {candidate, current} <= _TEXTUAL_GROUP:
            return DataType.TEXT
        return None

    def copy(self) -> "ColumnStats":
        """An independent copy (own distinct set) sharing immutable values."""
        copied = ColumnStats()
        copied.dtype = self.dtype
        copied.value_type = self.value_type
        copied.minimum = self.minimum
        copied.maximum = self.maximum
        copied.has_range = self.has_range
        copied.range_poisoned = self.range_poisoned
        copied.distinct = set(self.distinct) if self.distinct is not None else None
        return copied


class Column:
    """One table column: value vector, null accounting and cached statistics.

    Args:
        values: initial values.  With ``adopt=True`` the provided list becomes
            the column's backing storage without a copy — callers hand over
            ownership and must not mutate the list afterwards (the engine uses
            this for CSV ingest, dataset generation and CTE materialization,
            where the source list is freshly built and then discarded).
    """

    __slots__ = ("values", "_null_count", "_mask", "_stats")

    def __init__(self, values: Sequence[Any] | None = None, adopt: bool = False) -> None:
        if values is None:
            self.values: list[Any] = []
        elif adopt and type(values) is list:
            self.values = values
        else:
            self.values = list(values)
        self._null_count: int | None = None
        self._mask: list[bool] | None = None
        self._stats: ColumnStats | None = None

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def append(self, value: Any) -> None:
        """Append one value, folding it into whatever caches exist."""
        self.values.append(value)
        if self._null_count is not None and value is None:
            self._null_count += 1
        if self._mask is not None:
            self._mask.append(value is None)
        if self._stats is not None:
            self._stats.observe(value)

    def extend(self, values: Iterable[Any]) -> None:
        for value in values:
            self.append(value)

    def clone(self) -> "Column":
        """An independent copy carrying the incremental caches forward.

        The copy-on-write table swap of the serving layer clones every column
        before extending the clone; copying the null accounting and the
        statistics block (instead of letting the clone rebuild them lazily)
        preserves the never-rebuilt-after-mutation property across swaps.
        """
        clone = Column(self.values)
        clone._null_count = self._null_count
        clone._mask = list(self._mask) if self._mask is not None else None
        clone._stats = self._stats.copy() if self._stats is not None else None
        return clone

    # ------------------------------------------------------------------ #
    # Null accounting
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.values)

    @property
    def null_count(self) -> int:
        """Number of NULLs (computed on first access, then kept in step)."""
        if self._null_count is None:
            self._null_count = sum(1 for value in self.values if value is None)
        return self._null_count

    @property
    def has_nulls(self) -> bool:
        return self.null_count > 0

    def null_mask(self) -> list[bool]:
        """Parallel True-where-NULL mask (built once, then kept in step)."""
        if self._mask is None or len(self._mask) != len(self.values):
            self._mask = [value is None for value in self.values]
        return self._mask

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    def stats(self) -> ColumnStats:
        """The statistics block, computing it on first access."""
        if self._stats is None:
            self._stats = ColumnStats.from_values(self.values)
        return self._stats

    def dtype(self) -> DataType:
        """Cached least-upper-bound storage type of the column's values."""
        return self.stats().dtype

    def value_type(self) -> DataType | None:
        """Comparison-safe type, or None when comparison groups mix."""
        return self.stats().value_type

    def value_range(self) -> tuple[Any, Any] | None:
        """(min, max) of the non-null values, or None when all-null/empty.

        A column whose values stopped being pairwise comparable recomputes
        from scratch, which re-raises the same TypeError a direct
        ``min()``/``max()`` over the values would.
        """
        stats = self.stats()
        if stats.range_poisoned:
            values = [value for value in self.values if value is not None]
            return (min(values), max(values)) if values else None
        if not stats.has_range:
            return None
        return (stats.minimum, stats.maximum)

    def distinct_set(self) -> set[Any]:
        """The maintained distinct non-null value set.

        Unhashable values poison the incremental set; recomputing then raises
        the same TypeError building a set directly would.
        """
        stats = self.stats()
        if stats.distinct is None:
            return {value for value in self.values if value is not None}
        return stats.distinct

    def distinct_count(self) -> int:
        return len(self.distinct_set())
