"""CSV import/export for in-memory tables.

The demo datasets can be persisted to disk and reloaded, which the examples
use to show a realistic load-analyze-visualize loop.  Values are round-tripped
through a light type sniffing pass (int → float → ISO date → text).

Ingest is column-major: cells are sniffed straight into per-column value
vectors which are then **adopted** by the table (no row staging, no copy), so
loading a CSV is a single pass that ends in zero-copy column hand-off.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any

from repro.errors import CatalogError, DatasetError
from repro.engine.table import Table


def _parse_value(text: str) -> Any:
    """Sniff a CSV cell into int/float/bool/None/str."""
    if text == "":
        return None
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _format_value(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def table_to_csv(table: Table) -> str:
    """Serialize a table to CSV text (header row + data rows)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(table.column_names)
    for row in table.rows():
        writer.writerow([_format_value(value) for value in row])
    return buffer.getvalue()


def table_from_csv(name: str, text: str) -> Table:
    """Parse CSV text into a table; the first row is the header.

    Raises :class:`DatasetError` for inputs that cannot form a rectangular
    table: a missing header row (empty input) or a data row whose cell count
    differs from the header width (ragged row, reported with its line number).
    Blank rows are skipped.
    """
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration as exc:
        raise DatasetError("CSV input is empty; expected a header row") from exc
    if len(set(header)) != len(header):
        raise CatalogError(f"Duplicate column names in table {name!r}")
    width = len(header)
    columns: list[list[Any]] = [[] for _ in range(width)]
    for line_number, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) != width:
            raise DatasetError(
                f"CSV line {line_number} has {len(row)} cells; expected {width} "
                f"(ragged rows cannot form table {name!r})"
            )
        for target, cell in zip(columns, row):
            target.append(_parse_value(cell))
    return Table.from_columns(name, dict(zip(header, columns)), adopt=True)


def save_table(table: Table, path: str | Path) -> Path:
    """Write a table to a CSV file and return the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(table_to_csv(table), encoding="utf-8")
    return target


def load_table(name: str, path: str | Path) -> Table:
    """Load a table from a CSV file."""
    source = Path(path)
    if not source.exists():
        raise DatasetError(f"CSV file {source} does not exist")
    return table_from_csv(name, source.read_text(encoding="utf-8"))
