"""Unified execution options for every query entry point.

:class:`ExecOptions` is the single knob bag accepted by
:meth:`Catalog.execute`, :meth:`CatalogSnapshot.execute`,
:meth:`Session.execute`, :meth:`InterfaceService.submit_execute` and the
process tier's dispatch — one frozen, picklable value that crosses every
layer (including the worker-process pipe) unchanged, so a new execution knob
is added here once instead of being threaded through five signatures.

The legacy per-call keywords (``use_cache=``, ``optimize=``, ``deadline=``,
``deadline_ms=``) remain accepted everywhere through :func:`coerce_options`,
which emits a :class:`DeprecationWarning` and folds them into an equivalent
``ExecOptions`` — identical behaviour, one release of grace.
"""

from __future__ import annotations

import dataclasses
import time
import warnings
from dataclasses import dataclass


@dataclass(frozen=True)
class ExecOptions:
    """How one query executes (never *what* it reads — that is the snapshot).

    Attributes:
        use_cache: Serve and populate the canonical-query result cache.
        optimize: Run the logical-plan rewrite rules.  ``False`` lowers the
            planner's output verbatim (the differential harness's escape
            hatch); unoptimized runs never touch the result cache.
        deadline: Absolute ``time.monotonic()`` instant arming cooperative
            cancellation.  Comparable across processes (CLOCK_MONOTONIC is
            system-wide), so it survives the worker-pipe crossing.
        deadline_ms: Relative budget in milliseconds, resolved to an
            absolute ``deadline`` at submission time by the layer that
            accepts the request (see :meth:`resolved_deadline`).  When both
            are set, the absolute ``deadline`` wins.
    """

    use_cache: bool = True
    optimize: bool = True
    deadline: float | None = None
    deadline_ms: float | None = None

    def resolved_deadline(self) -> float | None:
        """The absolute deadline, resolving a relative budget now if needed."""
        if self.deadline is not None:
            return self.deadline
        if self.deadline_ms is not None:
            return time.monotonic() + self.deadline_ms / 1000.0
        return None

    def pinned(self) -> "ExecOptions":
        """A copy with any relative budget resolved to an absolute deadline.

        Submission layers call this once so queue-drop checks, worker-side
        cancellation and future-wait timeouts all measure the same instant.
        """
        if self.deadline_ms is None:
            return self
        return dataclasses.replace(
            self, deadline=self.resolved_deadline(), deadline_ms=None
        )

    def replace(self, **changes) -> "ExecOptions":
        return dataclasses.replace(self, **changes)


#: Shared default — equivalent to ``ExecOptions()``; callers must not mutate
#: (the dataclass is frozen, so they cannot).
DEFAULT_OPTIONS = ExecOptions()


def coerce_options(
    options: "ExecOptions | bool | None",
    where: str,
    **legacy,
) -> ExecOptions:
    """Resolve the ``options`` argument plus legacy keywords to ExecOptions.

    ``options`` may be an :class:`ExecOptions`, ``None`` (defaults), or — for
    compatibility with the old positional signatures — a bare bool, which is
    interpreted as the legacy leading ``use_cache`` flag.  ``legacy`` holds
    the deprecated per-call keywords with ``None`` meaning "not given".
    Passing both an ``ExecOptions`` and legacy keywords is a programming
    error and raises ``TypeError`` rather than silently preferring one.
    """
    if isinstance(options, ExecOptions):
        # Hot path: a real ExecOptions with no legacy keywords — avoid
        # building the filtered-kwargs dict per query.
        for key, value in legacy.items():
            if value is not None:
                raise TypeError(
                    f"{where}: pass execution knobs via ExecOptions, not mixed "
                    f"with legacy keyword(s) [{key!r}]"
                )
        return options
    given = {key: value for key, value in legacy.items() if value is not None}
    if isinstance(options, bool):
        given.setdefault("use_cache", options)
        options = None
    if options is not None:
        raise TypeError(
            f"{where}: options must be an ExecOptions, got {type(options).__name__}"
        )
    if not given:
        return DEFAULT_OPTIONS
    warnings.warn(
        f"{where}: the {', '.join(sorted(given))} keyword(s) are deprecated; "
        f"pass ExecOptions(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return ExecOptions(**given)
